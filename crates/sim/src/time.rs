//! Discrete time base shared by all Argus components.
//!
//! The paper simulates the car-following scenario at a 1 s sample period for
//! 300 s with attack onset at k = 182; every component (controller, radar,
//! attacker, detector, estimator) advances on the same [`Step`] counter.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::Seconds;

/// A discrete simulation step index `k`.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Step(pub u64);

impl Step {
    /// First step of a simulation.
    pub const ZERO: Self = Self(0);

    /// The index as `usize` for slice addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The next step.
    #[inline]
    pub fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k={}", self.0)
    }
}

impl From<u64> for Step {
    fn from(k: u64) -> Self {
        Self(k)
    }
}

/// A fixed-rate discrete time base: sample period `dt` plus conversions
/// between step indices and wall-clock seconds.
///
/// ```
/// use argus_sim::{time::TimeBase, units::Seconds};
/// let tb = TimeBase::new(Seconds(0.5));
/// assert_eq!(tb.time_of(4.into()).value(), 2.0);
/// assert_eq!(tb.step_of(Seconds(2.0)).0, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBase {
    dt: Seconds,
}

impl TimeBase {
    /// Creates a time base with the given sample period.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive and finite.
    pub fn new(dt: Seconds) -> Self {
        assert!(
            dt.value() > 0.0 && dt.is_finite(),
            "sample period must be positive and finite, got {dt}"
        );
        Self { dt }
    }

    /// The paper's car-following time base: one-second samples.
    pub fn per_second() -> Self {
        Self::new(Seconds(1.0))
    }

    /// Sample period.
    #[inline]
    pub fn dt(self) -> Seconds {
        self.dt
    }

    /// Wall-clock time of step `k`.
    #[inline]
    pub fn time_of(self, k: Step) -> Seconds {
        Seconds(self.dt.value() * k.0 as f64)
    }

    /// The step whose start time is closest to (and not after) `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative.
    #[inline]
    pub fn step_of(self, t: Seconds) -> Step {
        assert!(t.value() >= 0.0, "negative time {t} has no step index");
        // A time produced as dt·k can land one ulp below the exact multiple;
        // nudge by a relative epsilon so exact boundaries floor to k, not
        // k − 1.
        let ratio = t.value() / self.dt.value();
        Step((ratio + ratio.abs() * 1e-12 + 1e-12).floor() as u64)
    }

    /// Number of steps needed to cover a duration (rounded up).
    pub fn steps_in(self, duration: Seconds) -> usize {
        (duration.value() / self.dt.value()).ceil() as usize
    }

    /// Iterator over the first `n` steps.
    pub fn steps(self, n: usize) -> Steps {
        Steps {
            next: 0,
            end: n as u64,
        }
    }
}

impl Default for TimeBase {
    fn default() -> Self {
        Self::per_second()
    }
}

/// Iterator over consecutive [`Step`]s produced by [`TimeBase::steps`].
#[derive(Debug, Clone)]
pub struct Steps {
    next: u64,
    end: u64,
}

impl Iterator for Steps {
    type Item = Step;

    fn next(&mut self) -> Option<Step> {
        if self.next < self.end {
            let s = Step(self.next);
            self.next += 1;
            Some(s)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.end - self.next) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Steps {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_time_round_trip() {
        let tb = TimeBase::new(Seconds(0.25));
        for k in 0..100u64 {
            let t = tb.time_of(Step(k));
            assert_eq!(tb.step_of(t), Step(k));
        }
    }

    #[test]
    fn steps_iterator_is_exact() {
        let tb = TimeBase::per_second();
        let steps: Vec<_> = tb.steps(5).collect();
        assert_eq!(steps.len(), 5);
        assert_eq!(steps[0], Step::ZERO);
        assert_eq!(steps[4], Step(4));
        assert_eq!(tb.steps(5).len(), 5);
    }

    #[test]
    fn steps_in_rounds_up() {
        let tb = TimeBase::new(Seconds(2.0));
        assert_eq!(tb.steps_in(Seconds(5.0)), 3);
        assert_eq!(tb.steps_in(Seconds(4.0)), 2);
    }

    #[test]
    fn step_next_and_display() {
        let k = Step(181);
        assert_eq!(k.next(), Step(182));
        assert_eq!(format!("{}", k.next()), "k=182");
        assert_eq!(Step::from(7u64).index(), 7);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dt_rejected() {
        let _ = TimeBase::new(Seconds(0.0));
    }

    #[test]
    #[should_panic(expected = "negative time")]
    fn negative_time_rejected() {
        let _ = TimeBase::per_second().step_of(Seconds(-1.0));
    }
}
