//! A minimal, dependency-free JSON document model with a **canonical**
//! serializer and a strict parser.
//!
//! The campaign runner uses this as its trace/golden-file format, so the
//! encoder must be *deterministic*: the same document always serializes to
//! the same bytes, regardless of thread schedule, platform, or hash-map
//! iteration order. To that end:
//!
//! * objects are ordered sequences of `(key, value)` pairs — insertion
//!   order is preserved and **is** the canonical order (writers emit keys
//!   in a fixed order by construction);
//! * numbers are formatted with Rust's shortest round-trip `f64` display,
//!   with integral values printed without a fractional part;
//! * non-finite numbers serialize as `null` (JSON has no NaN/∞).
//!
//! This is intentionally *not* a serde replacement: it models exactly the
//! documents Argus writes and reads back (golden traces, campaign
//! summaries) and nothing more.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as `f64`; JSON has a single number type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number from anything convertible to `f64`.
    pub fn num(x: impl Into<f64>) -> Json {
        Json::Num(x.into())
    }

    /// An object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Canonical compact encoding (no whitespace).
    pub fn to_canonical(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Canonical pretty encoding (two-space indent, one member per line).
    ///
    /// Pretty output is just as deterministic as the compact form; golden
    /// files use it so that regressions produce readable line diffs.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => out.push_str(&format_number(*x)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Canonical number formatting: integral values without a fractional part,
/// everything else via Rust's shortest round-trip display, non-finite as
/// `null`.
fn format_number(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == 0.0 {
        // Normalize -0.0 so canonical output has a single zero.
        return "0".to_string();
    }
    if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs are not produced by our own
                            // encoder; accept lone BMP code points only.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8 by
                    // construction: we were handed a &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(chunk, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_number_formatting() {
        assert_eq!(Json::Num(1.0).to_canonical(), "1");
        assert_eq!(Json::Num(-0.0).to_canonical(), "0");
        assert_eq!(Json::Num(0.5).to_canonical(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_canonical(), "null");
        let huge = Json::Num(1e300).to_canonical();
        assert_eq!(parse(&huge).unwrap().as_f64(), Some(1e300));
    }

    #[test]
    fn round_trip_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("fig2a")),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "xs".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)]),
            ),
            ("esc\"aped\n".into(), Json::str("tab\there")),
        ]);
        let compact = doc.to_canonical();
        assert_eq!(parse(&compact).unwrap(), doc);
        let pretty = doc.to_pretty();
        assert_eq!(parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = parse(r#"{"b": 1, "a": 2}"#).unwrap();
        let members = doc.as_obj().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(doc.to_canonical(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"n": 3, "s": "x", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn shortest_round_trip_floats_survive() {
        for &x in &[0.1, 1.0 / 3.0, 29.0576, -0.1082, 2.2250738585072014e-308] {
            let text = Json::Num(x).to_canonical();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }
}
