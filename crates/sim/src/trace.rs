//! Time-series recording for figure regeneration and metrics.
//!
//! Every experiment records its signals (relative velocity, distance,
//! attacked measurements, RLS estimates, …) into [`Trace`]s grouped in a
//! [`TraceSet`]; the figure harnesses in `argus-bench` print or export these
//! as the series shown in the paper's Figures 2 and 3.

use std::fmt;
use std::io::{self, Write};

use serde::{Deserialize, Serialize};

use crate::stats::{RunningStats, Summary};
use crate::time::{Step, TimeBase};
use crate::units::Seconds;

/// A named, uniformly-sampled time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    time_base: TimeBase,
    values: Vec<f64>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>, time_base: TimeBase) -> Self {
        Self {
            name: name.into(),
            time_base,
            values: Vec::new(),
        }
    }

    /// Creates a trace from pre-recorded samples.
    pub fn from_values(name: impl Into<String>, time_base: TimeBase, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            time_base,
            values,
        }
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sampling time base.
    pub fn time_base(&self) -> TimeBase {
        self.time_base
    }

    /// Appends a sample at the next step.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Recorded samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sample at a step, if recorded.
    pub fn get(&self, k: Step) -> Option<f64> {
        self.values.get(k.index()).copied()
    }

    /// Time axis (seconds) matching [`Trace::values`].
    pub fn times(&self) -> Vec<f64> {
        (0..self.values.len())
            .map(|k| self.time_base.time_of(Step(k as u64)).value())
            .collect()
    }

    /// Iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Seconds, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(k, &v)| (self.time_base.time_of(Step(k as u64)), v))
    }

    /// Sample mean.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.values.is_empty(), "mean of empty trace");
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Minimum sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Full summary statistics.
    pub fn summary(&self) -> Summary {
        let mut s = RunningStats::new();
        for &v in &self.values {
            s.push(v);
        }
        s.summary()
    }

    /// RMSE against another trace over their common prefix.
    ///
    /// # Panics
    ///
    /// Panics if either trace is empty.
    pub fn rmse(&self, other: &Trace) -> f64 {
        let n = self.len().min(other.len());
        assert!(n > 0, "rmse of empty traces");
        crate::stats::rmse(&self.values[..n], &other.values[..n])
    }

    /// Sub-trace over the step range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end` exceeds the recorded length.
    pub fn slice(&self, start: Step, end: Step) -> Trace {
        assert!(start <= end, "inverted slice range");
        assert!(end.index() <= self.values.len(), "slice beyond trace end");
        Trace {
            name: self.name.clone(),
            time_base: self.time_base,
            values: self.values[start.index()..end.index()].to_vec(),
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} samples)", self.name, self.values.len())
    }
}

/// A group of traces sharing one time base; what an experiment returns.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSet {
    traces: Vec<Trace>,
}

impl TraceSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a trace; replaces any existing trace with the same name.
    pub fn insert(&mut self, trace: Trace) {
        if let Some(existing) = self.traces.iter_mut().find(|t| t.name() == trace.name()) {
            *existing = trace;
        } else {
            self.traces.push(trace);
        }
    }

    /// Looks up a trace by name.
    pub fn get(&self, name: &str) -> Option<&Trace> {
        self.traces.iter().find(|t| t.name() == name)
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` when no traces are stored.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Iterator over the traces in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Trace> {
        self.traces.iter()
    }

    /// Writes all traces as CSV: a `time` column followed by one column per
    /// trace (rows truncated to the shortest trace).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        if self.traces.is_empty() {
            return Ok(());
        }
        write!(w, "time")?;
        for t in &self.traces {
            write!(w, ",{}", t.name())?;
        }
        writeln!(w)?;
        let rows = self.traces.iter().map(Trace::len).min().unwrap_or(0);
        let tb = self.traces[0].time_base();
        for k in 0..rows {
            write!(w, "{}", tb.time_of(Step(k as u64)).value())?;
            for t in &self.traces {
                write!(w, ",{}", t.values()[k])?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Renders the set as a CSV string.
    pub fn to_csv(&self) -> String {
        let mut buf = Vec::new();
        self.write_csv(&mut buf)
            .expect("writing to Vec cannot fail");
        String::from_utf8(buf).expect("CSV output is valid UTF-8")
    }
}

impl<'a> IntoIterator for &'a TraceSet {
    type Item = &'a Trace;
    type IntoIter = std::slice::Iter<'a, Trace>;

    fn into_iter(self) -> Self::IntoIter {
        self.traces.iter()
    }
}

impl FromIterator<Trace> for TraceSet {
    fn from_iter<I: IntoIterator<Item = Trace>>(iter: I) -> Self {
        let mut set = TraceSet::new();
        for t in iter {
            set.insert(t);
        }
        set
    }
}

impl Extend<Trace> for TraceSet {
    fn extend<I: IntoIterator<Item = Trace>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let tb = TimeBase::per_second();
        Trace::from_values("d", tb, vec![100.0, 99.0, 97.5, 95.0])
    }

    #[test]
    fn push_and_get() {
        let mut t = Trace::new("v", TimeBase::per_second());
        assert!(t.is_empty());
        t.push(1.0);
        t.push(2.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(Step(1)), Some(2.0));
        assert_eq!(t.get(Step(2)), None);
    }

    #[test]
    fn times_match_time_base() {
        let tb = TimeBase::new(Seconds(0.5));
        let t = Trace::from_values("x", tb, vec![0.0; 4]);
        assert_eq!(t.times(), vec![0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn iter_yields_pairs() {
        let t = sample_trace();
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs[2], (Seconds(2.0), 97.5));
    }

    #[test]
    fn statistics() {
        let t = sample_trace();
        assert!((t.mean() - 97.875).abs() < 1e-12);
        assert_eq!(t.min(), Some(95.0));
        assert_eq!(t.max(), Some(100.0));
        let s = t.summary();
        assert_eq!(s.count, 4);
    }

    #[test]
    fn rmse_of_identical_traces_is_zero() {
        let t = sample_trace();
        assert_eq!(t.rmse(&t), 0.0);
    }

    #[test]
    fn slice_extracts_window() {
        let t = sample_trace();
        let w = t.slice(Step(1), Step(3));
        assert_eq!(w.values(), &[99.0, 97.5]);
    }

    #[test]
    #[should_panic(expected = "slice beyond trace end")]
    fn slice_out_of_range_panics() {
        let _ = sample_trace().slice(Step(0), Step(10));
    }

    #[test]
    fn trace_set_insert_replace_and_lookup() {
        let tb = TimeBase::per_second();
        let mut set = TraceSet::new();
        set.insert(Trace::from_values("a", tb, vec![1.0]));
        set.insert(Trace::from_values("b", tb, vec![2.0]));
        set.insert(Trace::from_values("a", tb, vec![3.0]));
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("a").unwrap().values(), &[3.0]);
        assert!(set.get("missing").is_none());
    }

    #[test]
    fn csv_export_shape() {
        let tb = TimeBase::per_second();
        let set: TraceSet = [
            Trace::from_values("x", tb, vec![1.0, 2.0]),
            Trace::from_values("y", tb, vec![10.0, 20.0, 30.0]),
        ]
        .into_iter()
        .collect();
        let csv = set.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "time,x,y");
        assert_eq!(lines.len(), 3); // header + 2 rows (shortest trace)
        assert_eq!(lines[1], "0,1,10");
    }

    #[test]
    fn empty_set_csv_is_empty() {
        assert_eq!(TraceSet::new().to_csv(), "");
    }

    #[test]
    fn extend_and_into_iterator() {
        let tb = TimeBase::per_second();
        let mut set = TraceSet::new();
        set.extend([Trace::from_values("x", tb, vec![1.0])]);
        let names: Vec<_> = (&set).into_iter().map(|t| t.name().to_string()).collect();
        assert_eq!(names, vec!["x"]);
    }
}
