//! SI unit newtypes and decibel conversions.
//!
//! The radar link budget (paper Eqns 9–11) mixes milliwatts, dBi antenna
//! gains, dB losses and metre-scale geometry; the vehicle model mixes
//! miles-per-hour initial conditions with m/s dynamics. Each quantity gets a
//! newtype so the compiler rejects unit confusion (`C-NEWTYPE`).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Implements arithmetic, `Display` and accessors shared by all scalar units.
macro_rules! scalar_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize,
        )]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this unit.
            pub const ZERO: Self = Self(0.0);

            /// Raw `f64` value in base SI units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds inverted");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` if the underlying value is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(v: f64) -> Self {
                Self(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }
    };
}

scalar_unit!(
    /// Distance in metres.
    Meters,
    "m"
);
scalar_unit!(
    /// Speed in metres per second.
    MetersPerSecond,
    "m/s"
);
scalar_unit!(
    /// Acceleration in metres per second squared.
    MetersPerSecondSquared,
    "m/s^2"
);
scalar_unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
scalar_unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
scalar_unit!(
    /// Power in watts.
    Watts,
    "W"
);
scalar_unit!(
    /// Angle in radians.
    Radians,
    "rad"
);
scalar_unit!(
    /// Logarithmic power ratio in decibels.
    Decibels,
    "dB"
);

/// Speed of light in vacuum, m/s. Used by the FMCW beat-frequency equations.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Metres per mile; used to convert the paper's mph initial conditions.
pub const METERS_PER_MILE: f64 = 1_609.344;

impl MetersPerSecond {
    /// Converts from miles per hour (the paper quotes 65 mph / 67 mph).
    ///
    /// ```
    /// use argus_sim::units::MetersPerSecond;
    /// let v = MetersPerSecond::from_mph(65.0);
    /// assert!((v.value() - 29.0574).abs() < 1e-3);
    /// ```
    #[inline]
    pub fn from_mph(mph: f64) -> Self {
        Self(mph * METERS_PER_MILE / 3600.0)
    }

    /// Converts to miles per hour.
    #[inline]
    pub fn to_mph(self) -> f64 {
        self.0 * 3600.0 / METERS_PER_MILE
    }

    /// Converts from kilometres per hour.
    #[inline]
    pub fn from_kmh(kmh: f64) -> Self {
        Self(kmh / 3.6)
    }
}

// Cross-unit products that arise in kinematics.

impl Mul<Seconds> for MetersPerSecond {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: Seconds) -> Meters {
        Meters(self.0 * rhs.0)
    }
}

impl Mul<MetersPerSecond> for Seconds {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: MetersPerSecond) -> Meters {
        Meters(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for MetersPerSecondSquared {
    type Output = MetersPerSecond;
    #[inline]
    fn mul(self, rhs: Seconds) -> MetersPerSecond {
        MetersPerSecond(self.0 * rhs.0)
    }
}

impl Mul<MetersPerSecondSquared> for Seconds {
    type Output = MetersPerSecond;
    #[inline]
    fn mul(self, rhs: MetersPerSecondSquared) -> MetersPerSecond {
        MetersPerSecond(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Meters {
    type Output = MetersPerSecond;
    #[inline]
    fn div(self, rhs: Seconds) -> MetersPerSecond {
        MetersPerSecond(self.0 / rhs.0)
    }
}

impl Div<Seconds> for MetersPerSecond {
    type Output = MetersPerSecondSquared;
    #[inline]
    fn div(self, rhs: Seconds) -> MetersPerSecondSquared {
        MetersPerSecondSquared(self.0 / rhs.0)
    }
}

impl Div<Hertz> for f64 {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Hertz) -> Seconds {
        Seconds(self / rhs.0)
    }
}

impl Seconds {
    /// Reciprocal: period → frequency.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    #[inline]
    pub fn recip(self) -> Hertz {
        assert!(self.0 != 0.0, "cannot invert a zero period");
        Hertz(1.0 / self.0)
    }

    /// Converts from milliseconds (the radar sweep time is quoted in ms).
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self(ms * 1e-3)
    }
}

impl Hertz {
    /// Converts from megahertz (sweep bandwidths are quoted in MHz).
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Converts from gigahertz (carrier frequencies are quoted in GHz).
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }

    /// Free-space wavelength of a carrier at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[inline]
    pub fn wavelength(self) -> Meters {
        assert!(self.0 != 0.0, "zero frequency has no wavelength");
        Meters(SPEED_OF_LIGHT / self.0)
    }
}

impl Watts {
    /// Converts from milliwatts (transmit powers are quoted in mW).
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self(mw * 1e-3)
    }

    /// Converts to dBm (decibels referenced to one milliwatt).
    ///
    /// # Panics
    ///
    /// Panics if the power is not strictly positive.
    #[inline]
    pub fn to_dbm(self) -> Decibels {
        assert!(self.0 > 0.0, "dBm of non-positive power is undefined");
        Decibels(10.0 * (self.0 / 1e-3).log10())
    }

    /// Constructs from dBm.
    #[inline]
    pub fn from_dbm(dbm: Decibels) -> Self {
        Self(1e-3 * 10f64.powf(dbm.0 / 10.0))
    }
}

impl Decibels {
    /// Linear power ratio represented by this decibel value.
    ///
    /// ```
    /// use argus_sim::units::Decibels;
    /// assert!((Decibels(3.0).to_linear() - 1.9953).abs() < 1e-3);
    /// assert!((Decibels(0.0).to_linear() - 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Converts a linear power ratio to decibels.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not strictly positive.
    #[inline]
    pub fn from_linear(ratio: f64) -> Self {
        assert!(ratio > 0.0, "decibels of non-positive ratio is undefined");
        Self(10.0 * ratio.log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Meters(3.0);
        let b = Meters(4.5);
        assert_eq!((a + b).value(), 7.5);
        assert_eq!((b - a).value(), 1.5);
        assert_eq!((-a).value(), -3.0);
        assert_eq!((a * 2.0).value(), 6.0);
        assert_eq!((2.0 * a).value(), 6.0);
        assert_eq!((b / 1.5).value(), 3.0);
        assert_eq!(b / a, 1.5);
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut v = MetersPerSecond(10.0);
        v += MetersPerSecond(2.0);
        v -= MetersPerSecond(1.0);
        assert_eq!(v.value(), 11.0);
    }

    #[test]
    fn kinematic_products() {
        let v = MetersPerSecond(10.0);
        let t = Seconds(3.0);
        assert_eq!((v * t).value(), 30.0);
        assert_eq!((t * v).value(), 30.0);
        let a = MetersPerSecondSquared(2.0);
        assert_eq!((a * t).value(), 6.0);
        assert_eq!((Meters(30.0) / t).value(), 10.0);
        assert_eq!((v / Seconds(5.0)).value(), 2.0);
    }

    #[test]
    fn mph_round_trip() {
        let v = MetersPerSecond::from_mph(65.0);
        assert!((v.to_mph() - 65.0).abs() < 1e-12);
        // Paper: 65 mph ≈ 29.06 m/s
        assert!((v.value() - 29.057).abs() < 1e-2);
    }

    #[test]
    fn wavelength_of_77ghz_carrier() {
        // Paper §4.1: λ = 3.89 mm at 77 GHz.
        let lambda = Hertz::from_ghz(77.0).wavelength();
        assert!((lambda.value() - 3.893e-3).abs() < 1e-5);
    }

    #[test]
    fn decibel_round_trip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0, 28.0] {
            let lin = Decibels(db).to_linear();
            assert!((Decibels::from_linear(lin).value() - db).abs() < 1e-9);
        }
    }

    #[test]
    fn dbm_round_trip() {
        let p = Watts::from_milliwatts(10.0); // paper's Pt
        let dbm = p.to_dbm();
        assert!((dbm.value() - 10.0).abs() < 1e-9);
        assert!((Watts::from_dbm(dbm).value() - p.value()).abs() < 1e-15);
    }

    #[test]
    fn clamp_and_minmax() {
        let v = MetersPerSecondSquared(5.0);
        assert_eq!(
            v.clamp(MetersPerSecondSquared(-2.0), MetersPerSecondSquared(2.0))
                .value(),
            2.0
        );
        assert_eq!(v.max(MetersPerSecondSquared(7.0)).value(), 7.0);
        assert_eq!(v.min(MetersPerSecondSquared(1.0)).value(), 1.0);
        assert_eq!(MetersPerSecondSquared(-5.0).abs().value(), 5.0);
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_rejects_inverted_bounds() {
        let _ = Meters(1.0).clamp(Meters(2.0), Meters(0.0));
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn decibels_of_zero_ratio_panics() {
        let _ = Decibels::from_linear(0.0);
    }

    #[test]
    fn display_includes_suffix() {
        assert_eq!(format!("{}", Meters(2.5)), "2.5 m");
        assert_eq!(format!("{}", Hertz(60.0)), "60 Hz");
    }

    #[test]
    fn seconds_frequency_inverse() {
        let period = Seconds::from_millis(2.0); // paper's sweep time
        let f = period.recip();
        assert!((f.value() - 500.0).abs() < 1e-9);
        let back = 1.0 / f;
        assert!((back.value() - 2e-3).abs() < 1e-15);
    }
}
