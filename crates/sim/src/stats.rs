//! Streaming and batch statistics used by metrics and trace summaries.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Welford's online mean/variance accumulator with min/max tracking.
///
/// ```
/// use argus_sim::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot of the accumulated statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min,
            max: self.max,
        }
    }
}

/// Immutable statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// Root-mean-square error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse requires equal-length slices");
    assert!(!a.is_empty(), "rmse of empty slices is undefined");
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
    (sum / a.len() as f64).sqrt()
}

/// Mean absolute error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mae requires equal-length slices");
    assert!(!a.is_empty(), "mae of empty slices is undefined");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Linear-interpolated percentile of a sample (p in `[0, 100]`).
///
/// # Panics
///
/// Panics if the sample is empty or `p` is out of range.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Streaming quantile estimator (the P² algorithm of Jain & Chlamtac).
///
/// Tracks one quantile with five markers in O(1) memory — no sample is
/// retained. The first five observations are stored exactly (and the
/// estimate below five samples falls back to the exact interpolated
/// [`percentile`]); from the sixth observation on, the markers move by the
/// piecewise-parabolic update. The estimate is a deterministic pure function
/// of the insertion sequence, so campaign aggregation that folds trials in
/// index order reproduces byte-identical output at any worker count.
///
/// ```
/// use argus_sim::stats::P2Quantile;
/// let mut q = P2Quantile::new(50.0);
/// for x in 1..=1001 {
///     q.push(x as f64);
/// }
/// let med = q.estimate().unwrap();
/// assert!((med - 501.0).abs() < 5.0, "{med}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    /// Target quantile as a fraction in `[0, 1]`.
    p: f64,
    count: u64,
    /// Marker heights (the first five observations, sorted, until warm).
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Per-observation increments of the desired positions.
    dn: [f64; 5],
}

impl P2Quantile {
    /// Creates an estimator for percentile `p` (in `[0, 100]`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        let f = p / 100.0;
        Self {
            p: f,
            count: 0,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * f, 1.0 + 4.0 * f, 3.0 + 2.0 * f, 5.0],
            dn: [0.0, f / 2.0, f, (1.0 + f) / 2.0, 1.0],
        }
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        if self.count < 5 {
            self.q[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.q
                    .sort_by(|a, b| a.partial_cmp(b).expect("NaN pushed into P2Quantile"));
            }
            return;
        }
        self.count += 1;

        // Locate the cell and clamp the extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = self.q[4].max(x);
            3
        } else {
            let mut cell = 0;
            while cell < 3 && x >= self.q[cell + 1] {
                cell += 1;
            }
            cell
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Move the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < candidate && candidate < self.q[i + 1] {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    /// Piecewise-parabolic marker prediction (P² formula 1).
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabola would reorder the markers.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current quantile estimate, `None` when no observation has arrived.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            c if c < 5 => Some(percentile(&self.q[..c as usize], self.p * 100.0)),
            _ => Some(self.q[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut whole = RunningStats::new();
        for &x in &a_data {
            a.push(x);
            whole.push(x);
        }
        for &x in &b_data {
            b.push(x);
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(2.0);
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn rmse_and_mae() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 3.0];
        assert!((rmse(&a, &b) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rmse(&a, &a), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 100.0), 4.0);
        assert!((percentile(&data, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_display_has_fields() {
        let mut s = RunningStats::new();
        s.push(1.0);
        let text = format!("{}", s.summary());
        assert!(text.contains("n=1"));
        assert!(text.contains("mean="));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rmse_length_mismatch_panics() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }

    /// Deterministic pseudo-random stream for P² accuracy tests (no rand
    /// dependency in unit tests: splitmix64 → uniform [0,1)).
    fn uniform_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn p2_matches_exact_percentile_on_uniform_data() {
        let data = uniform_stream(7, 20_000);
        for &p in &[5.0, 50.0, 95.0] {
            let mut est = P2Quantile::new(p);
            for &x in &data {
                est.push(x);
            }
            let exact = percentile(&data, p);
            let approx = est.estimate().unwrap();
            assert!(
                (approx - exact).abs() < 0.01,
                "p{p}: P² {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn p2_is_exact_below_five_samples() {
        let mut est = P2Quantile::new(50.0);
        assert_eq!(est.estimate(), None);
        for &x in &[3.0, 1.0, 2.0] {
            est.push(x);
        }
        assert_eq!(est.estimate(), Some(2.0));
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn p2_is_deterministic_in_insertion_order() {
        let data = uniform_stream(11, 5_000);
        let run = || {
            let mut est = P2Quantile::new(95.0);
            for &x in &data {
                est.push(x);
            }
            est.estimate().unwrap()
        };
        // Same sequence → bit-identical estimate (the serial-vs-parallel
        // campaign identity rests on this).
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn p2_extremes_track_min_and_max() {
        let data = uniform_stream(3, 2_000);
        let mut lo = P2Quantile::new(0.0);
        let mut hi = P2Quantile::new(100.0);
        for &x in &data {
            lo.push(x);
            hi.push(x);
        }
        let exact_min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let exact_max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // The extreme markers clamp to the running min/max exactly.
        assert!((lo.estimate().unwrap() - exact_min).abs() < 0.01);
        assert!((hi.estimate().unwrap() - exact_max).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn p2_rejects_out_of_range_percentile() {
        let _ = P2Quantile::new(101.0);
    }
}
