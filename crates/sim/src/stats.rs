//! Streaming and batch statistics used by metrics and trace summaries.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Welford's online mean/variance accumulator with min/max tracking.
///
/// ```
/// use argus_sim::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot of the accumulated statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min,
            max: self.max,
        }
    }
}

/// Immutable statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// Root-mean-square error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse requires equal-length slices");
    assert!(!a.is_empty(), "rmse of empty slices is undefined");
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
    (sum / a.len() as f64).sqrt()
}

/// Mean absolute error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mae requires equal-length slices");
    assert!(!a.is_empty(), "mae of empty slices is undefined");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Linear-interpolated percentile of a sample (p in `[0, 100]`).
///
/// # Panics
///
/// Panics if the sample is empty or `p` is out of range.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut whole = RunningStats::new();
        for &x in &a_data {
            a.push(x);
            whole.push(x);
        }
        for &x in &b_data {
            b.push(x);
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(2.0);
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn rmse_and_mae() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 3.0];
        assert!((rmse(&a, &b) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rmse(&a, &a), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 100.0), 4.0);
        assert!((percentile(&data, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_display_has_fields() {
        let mut s = RunningStats::new();
        s.push(1.0);
        let text = format!("{}", s.summary());
        assert!(text.contains("n=1"));
        assert!(text.contains("mean="));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rmse_length_mismatch_panics() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }
}
