//! # argus-sim — simulation substrate for the Argus workspace
//!
//! This crate provides the foundation every other Argus crate builds on:
//!
//! * [`units`] — zero-cost SI unit newtypes ([`Meters`], [`MetersPerSecond`],
//!   [`Seconds`], [`Hertz`], [`Watts`], …) and decibel conversions, so that
//!   radar link budgets and vehicle kinematics cannot silently mix units.
//! * [`time`] — a discrete [`TimeBase`] (sample period `dt`) and [`Step`]
//!   counter shared by the controller, radar, attacker and detector.
//! * [`rng`] — a deterministic, seedable [`SimRng`] so every experiment in
//!   the paper reproduction is replayable bit-for-bit.
//! * [`noise`] — Gaussian measurement noise (Box–Muller, implemented from
//!   first principles) and SNR helpers used by the radar receiver model.
//! * [`trace`] — time-series recording ([`Trace`], [`TraceSet`]) with summary
//!   statistics and CSV export, used to regenerate the paper's figures.
//! * [`json`] — a dependency-free canonical JSON encoder/parser used by the
//!   Monte-Carlo campaign traces and the golden-file regression suite.
//!
//! # Example
//!
//! ```
//! use argus_sim::prelude::*;
//!
//! let tb = TimeBase::new(Seconds(1.0));
//! let mut rng = SimRng::seed_from(42);
//! let noise = Gaussian::new(0.0, 0.1);
//! let mut trace = Trace::new("speed", tb);
//! for _step in tb.steps(10) {
//!     trace.push(29.0 + noise.sample(&mut rng));
//! }
//! assert_eq!(trace.len(), 10);
//! assert!((trace.mean() - 29.0).abs() < 0.2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
pub mod noise;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod units;

pub use json::Json;
pub use noise::{Gaussian, Uniform};
pub use rng::SimRng;
pub use stats::{RunningStats, Summary};
pub use time::{Step, TimeBase};
pub use trace::{Trace, TraceSet};
pub use units::{
    Decibels, Hertz, Meters, MetersPerSecond, MetersPerSecondSquared, Radians, Seconds, Watts,
};

/// Convenient glob import of the most common simulation types.
pub mod prelude {
    pub use crate::noise::{Gaussian, Uniform};
    pub use crate::rng::SimRng;
    pub use crate::stats::{RunningStats, Summary};
    pub use crate::time::{Step, TimeBase};
    pub use crate::trace::{Trace, TraceSet};
    pub use crate::units::{
        Decibels, Hertz, Meters, MetersPerSecond, MetersPerSecondSquared, Radians, Seconds, Watts,
    };
}
