//! Noise sources for sensor and channel models.
//!
//! The paper's measurement model (Eqn 2) adds zero-mean Gaussian noise
//! `v_k ~ N(0, R)` to every sensor sample; the radar receiver model needs
//! complex white noise at a power set by the link budget. The Gaussian
//! sampler is implemented from first principles (Box–Muller) so the substrate
//! has no hidden distribution dependencies.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// Zero-mean-capable Gaussian (normal) noise source using the Box–Muller
/// transform.
///
/// ```
/// use argus_sim::{noise::Gaussian, rng::SimRng};
/// let mut rng = SimRng::seed_from(1);
/// let n = Gaussian::new(0.0, 2.0);
/// let mean: f64 = (0..4000).map(|_| n.sample(&mut rng)).sum::<f64>() / 4000.0;
/// assert!(mean.abs() < 0.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    mean: f64,
    std_dev: f64,
}

impl Gaussian {
    /// Creates a Gaussian source with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite(),
            "invalid gaussian parameters mean={mean} std={std_dev}"
        );
        Self { mean, std_dev }
    }

    /// A standard normal `N(0, 1)` source.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Creates a zero-mean source from a variance.
    ///
    /// # Panics
    ///
    /// Panics if `variance` is negative or non-finite.
    pub fn from_variance(variance: f64) -> Self {
        assert!(
            variance >= 0.0 && variance.is_finite(),
            "invalid variance {variance}"
        );
        Self::new(0.0, variance.sqrt())
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }

    /// Draws a pair of independent samples (one Box–Muller invocation yields
    /// two independent normals; this exposes both).
    pub fn sample_pair(&self, rng: &mut SimRng) -> (f64, f64) {
        let (z0, z1) = standard_normal_pair(rng);
        (self.mean + self.std_dev * z0, self.mean + self.std_dev * z1)
    }

    /// Fills a buffer with independent samples.
    pub fn fill(&self, rng: &mut SimRng, out: &mut [f64]) {
        for x in out {
            *x = self.sample(rng);
        }
    }
}

/// One standard-normal draw via Box–Muller.
fn standard_normal(rng: &mut SimRng) -> f64 {
    standard_normal_pair(rng).0
}

/// Two independent standard-normal draws via the Box–Muller transform.
fn standard_normal_pair(rng: &mut SimRng) -> (f64, f64) {
    // u1 in (0, 1] so that ln(u1) is finite.
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Uniform noise on `[lo, hi)`; used for the jammer's corrupted measurement
/// model ("very high value of corrupted distance and velocity").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform source on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "invalid uniform bounds [{lo}, {hi})"
        );
        Self { lo, hi }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound (exclusive).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.uniform(self.lo, self.hi)
    }
}

/// Converts a signal power and an SNR (linear) into the implied noise
/// variance: `var = signal_power / snr`.
///
/// # Panics
///
/// Panics if `snr_linear` is not strictly positive or `signal_power` is
/// negative.
pub fn noise_variance_for_snr(signal_power: f64, snr_linear: f64) -> f64 {
    assert!(snr_linear > 0.0, "SNR must be positive, got {snr_linear}");
    assert!(
        signal_power >= 0.0,
        "signal power must be non-negative, got {signal_power}"
    );
    signal_power / snr_linear
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments_match() {
        let mut rng = SimRng::seed_from(42);
        let g = Gaussian::new(3.0, 2.0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 3.0).abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn sample_pair_components_uncorrelated() {
        let mut rng = SimRng::seed_from(9);
        let g = Gaussian::standard();
        let n = 20_000;
        let mut sum_xy = 0.0;
        for _ in 0..n {
            let (x, y) = g.sample_pair(&mut rng);
            sum_xy += x * y;
        }
        let corr = sum_xy / n as f64;
        assert!(corr.abs() < 0.03, "correlation {corr}");
    }

    #[test]
    fn zero_std_is_constant() {
        let mut rng = SimRng::seed_from(1);
        let g = Gaussian::new(5.0, 0.0);
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn from_variance_squares() {
        let g = Gaussian::from_variance(9.0);
        assert_eq!(g.std_dev(), 3.0);
        assert_eq!(g.mean(), 0.0);
    }

    #[test]
    fn fill_fills_everything() {
        let mut rng = SimRng::seed_from(3);
        let g = Gaussian::standard();
        let mut buf = [0.0; 64];
        g.fill(&mut rng, &mut buf);
        assert!(buf.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn uniform_bounds_hold() {
        let mut rng = SimRng::seed_from(8);
        let u = Uniform::new(100.0, 250.0);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((100.0..250.0).contains(&x));
        }
        assert_eq!(u.lo(), 100.0);
        assert_eq!(u.hi(), 250.0);
    }

    #[test]
    fn snr_variance_helper() {
        let var = noise_variance_for_snr(2.0, 4.0);
        assert_eq!(var, 0.5);
    }

    #[test]
    #[should_panic(expected = "SNR must be positive")]
    fn snr_zero_rejected() {
        let _ = noise_variance_for_snr(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid gaussian parameters")]
    fn negative_std_rejected() {
        let _ = Gaussian::new(0.0, -1.0);
    }
}
