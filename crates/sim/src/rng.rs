//! Deterministic random-number generation for replayable experiments.
//!
//! Every Argus experiment is seeded so that figures and tests regenerate
//! identically. [`SimRng`] wraps the standard library RNG behind a stable,
//! explicitly-seeded facade and supports deriving independent substreams for
//! each component (radar noise, attacker, challenge schedule, …) so that
//! adding a consumer never perturbs another component's stream.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable, splittable random number generator.
///
/// ```
/// use argus_sim::rng::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_f64(), b.next_f64()); // replayable
///
/// let mut radar = a.substream("radar");
/// let mut attacker = a.substream("attacker");
/// assert_ne!(radar.next_f64(), attacker.next_f64()); // independent
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent substream keyed by a label.
    ///
    /// The substream seed is a hash of the parent seed and the label, so two
    /// distinct labels give (with overwhelming probability) uncorrelated
    /// streams and the same label always gives the same stream.
    pub fn substream(&self, label: &str) -> SimRng {
        // FNV-1a over the label, folded with the parent seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // splitmix64 finalizer to decorrelate nearby seeds.
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from(z)
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "invalid uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        self.next_f64() < p
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        self.inner.random_range(0..n)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_f64(), b.next_f64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_f64() == b.next_f64()).count();
        assert!(same < 2);
    }

    #[test]
    fn substreams_are_stable_and_distinct() {
        let parent = SimRng::seed_from(99);
        let mut r1 = parent.substream("radar");
        let mut r2 = parent.substream("radar");
        assert_eq!(r1.next_f64(), r2.next_f64());

        let mut a = parent.substream("alpha");
        let mut b = parent.substream("beta");
        let same = (0..32).filter(|_| a.next_f64() == b.next_f64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let x = rng.uniform(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_rate_is_sane() {
        let mut rng = SimRng::seed_from(11);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SimRng::seed_from(17);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_rejects_inverted_range() {
        let _ = SimRng::seed_from(0).uniform(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bernoulli_rejects_bad_probability() {
        let _ = SimRng::seed_from(0).bernoulli(1.5);
    }
}
