//! Property-based tests for the simulation substrate.

use argus_sim::prelude::*;
use argus_sim::stats::{mae, percentile, rmse};
use argus_sim::units::Decibels;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// dB ↔ linear round trip.
    #[test]
    fn decibel_round_trip(db in -80.0f64..80.0) {
        let lin = Decibels(db).to_linear();
        prop_assert!((Decibels::from_linear(lin).value() - db).abs() < 1e-9);
    }

    /// mph ↔ m/s round trip.
    #[test]
    fn mph_round_trip(mph in 0.0f64..200.0) {
        let v = MetersPerSecond::from_mph(mph);
        prop_assert!((v.to_mph() - mph).abs() < 1e-9);
    }

    /// Welford merge equals concatenation for arbitrary splits.
    #[test]
    fn stats_merge_associative(
        a in proptest::collection::vec(-100.0f64..100.0, 1..40),
        b in proptest::collection::vec(-100.0f64..100.0, 1..40),
    ) {
        let mut sa = RunningStats::new();
        let mut sb = RunningStats::new();
        let mut whole = RunningStats::new();
        for &x in &a {
            sa.push(x);
            whole.push(x);
        }
        for &x in &b {
            sb.push(x);
            whole.push(x);
        }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), whole.count());
        prop_assert!((sa.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((sa.variance() - whole.variance()).abs() < 1e-7 * (1.0 + whole.variance()));
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentile_monotone(
        data in proptest::collection::vec(-50.0f64..50.0, 2..60),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let v_lo = percentile(&data, lo);
        let v_hi = percentile(&data, hi);
        prop_assert!(v_lo <= v_hi + 1e-12);
        let min = data.iter().cloned().fold(f64::MAX, f64::min);
        let max = data.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v_lo >= min - 1e-12 && v_hi <= max + 1e-12);
    }

    /// RMSE dominates MAE and both are zero only for identical data.
    #[test]
    fn rmse_dominates_mae(data in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..50)) {
        let a: Vec<f64> = data.iter().map(|&(x, _)| x).collect();
        let b: Vec<f64> = data.iter().map(|&(_, y)| y).collect();
        prop_assert!(rmse(&a, &b) + 1e-12 >= mae(&a, &b));
        prop_assert!((rmse(&a, &a)).abs() < 1e-12);
    }

    /// Substreams with the same label are identical; the parent stream is
    /// unaffected by deriving them.
    #[test]
    fn substreams_stable(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let parent = SimRng::seed_from(seed);
        let mut s1 = parent.substream(&label);
        let mut s2 = parent.substream(&label);
        for _ in 0..16 {
            prop_assert_eq!(s1.next_f64(), s2.next_f64());
        }
    }

    /// Gaussian sampling respects the configured moments loosely even for
    /// arbitrary parameters (sanity against unit/scale bugs).
    #[test]
    fn gaussian_scaling(mean in -100.0f64..100.0, std in 0.01f64..50.0, seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let g = Gaussian::new(mean, std);
        let n = 2000;
        let m: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        prop_assert!((m - mean).abs() < 6.0 * std / (n as f64).sqrt() + 1e-9);
    }

    /// Time base: step/time round trip for arbitrary dt.
    #[test]
    fn timebase_round_trip(dt in 1e-3f64..10.0, k in 0u64..10_000) {
        let tb = TimeBase::new(Seconds(dt));
        let t = tb.time_of(Step(k));
        prop_assert_eq!(tb.step_of(t), Step(k));
    }

    /// Trace summary min/max bound every recorded value.
    #[test]
    fn trace_summary_bounds(values in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let trace = Trace::from_values("x", TimeBase::per_second(), values.clone());
        let s = trace.summary();
        for v in values {
            prop_assert!(v >= s.min - 1e-12 && v <= s.max + 1e-12);
        }
        prop_assert!(s.mean >= s.min - 1e-12 && s.mean <= s.max + 1e-12);
    }
}
