//! Property-based tests for the simulation substrate.

use argus_sim::prelude::*;
use argus_sim::stats::{mae, percentile, rmse};
use argus_sim::units::Decibels;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// dB ↔ linear round trip.
    #[test]
    fn decibel_round_trip(db in -80.0f64..80.0) {
        let lin = Decibels(db).to_linear();
        prop_assert!((Decibels::from_linear(lin).value() - db).abs() < 1e-9);
    }

    /// mph ↔ m/s round trip.
    #[test]
    fn mph_round_trip(mph in 0.0f64..200.0) {
        let v = MetersPerSecond::from_mph(mph);
        prop_assert!((v.to_mph() - mph).abs() < 1e-9);
    }

    /// Welford merge equals concatenation for arbitrary splits.
    #[test]
    fn stats_merge_associative(
        a in proptest::collection::vec(-100.0f64..100.0, 1..40),
        b in proptest::collection::vec(-100.0f64..100.0, 1..40),
    ) {
        let mut sa = RunningStats::new();
        let mut sb = RunningStats::new();
        let mut whole = RunningStats::new();
        for &x in &a {
            sa.push(x);
            whole.push(x);
        }
        for &x in &b {
            sb.push(x);
            whole.push(x);
        }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), whole.count());
        prop_assert!((sa.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((sa.variance() - whole.variance()).abs() < 1e-7 * (1.0 + whole.variance()));
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentile_monotone(
        data in proptest::collection::vec(-50.0f64..50.0, 2..60),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let v_lo = percentile(&data, lo);
        let v_hi = percentile(&data, hi);
        prop_assert!(v_lo <= v_hi + 1e-12);
        let min = data.iter().cloned().fold(f64::MAX, f64::min);
        let max = data.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v_lo >= min - 1e-12 && v_hi <= max + 1e-12);
    }

    /// RMSE dominates MAE and both are zero only for identical data.
    #[test]
    fn rmse_dominates_mae(data in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..50)) {
        let a: Vec<f64> = data.iter().map(|&(x, _)| x).collect();
        let b: Vec<f64> = data.iter().map(|&(_, y)| y).collect();
        prop_assert!(rmse(&a, &b) + 1e-12 >= mae(&a, &b));
        prop_assert!((rmse(&a, &a)).abs() < 1e-12);
    }

    /// Substreams with the same label are identical; the parent stream is
    /// unaffected by deriving them.
    #[test]
    fn substreams_stable(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let parent = SimRng::seed_from(seed);
        let mut s1 = parent.substream(&label);
        let mut s2 = parent.substream(&label);
        for _ in 0..16 {
            prop_assert_eq!(s1.next_f64(), s2.next_f64());
        }
    }

    /// Gaussian sampling respects the configured moments loosely even for
    /// arbitrary parameters (sanity against unit/scale bugs).
    #[test]
    fn gaussian_scaling(mean in -100.0f64..100.0, std in 0.01f64..50.0, seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let g = Gaussian::new(mean, std);
        let n = 2000;
        let m: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        prop_assert!((m - mean).abs() < 6.0 * std / (n as f64).sqrt() + 1e-9);
    }

    /// Time base: step/time round trip for arbitrary dt.
    #[test]
    fn timebase_round_trip(dt in 1e-3f64..10.0, k in 0u64..10_000) {
        let tb = TimeBase::new(Seconds(dt));
        let t = tb.time_of(Step(k));
        prop_assert_eq!(tb.step_of(t), Step(k));
    }

    /// Trace summary min/max bound every recorded value.
    #[test]
    fn trace_summary_bounds(values in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let trace = Trace::from_values("x", TimeBase::per_second(), values.clone());
        let s = trace.summary();
        for v in values {
            prop_assert!(v >= s.min - 1e-12 && v <= s.max + 1e-12);
        }
        prop_assert!(s.mean >= s.min - 1e-12 && s.mean <= s.max + 1e-12);
    }

    /// Substream derivation depends only on the parent *seed*, never on how
    /// much the parent has already been drawn from — the property the
    /// campaign runner's trial seeding rests on.
    #[test]
    fn substreams_ignore_parent_draw_position(
        seed in any::<u64>(),
        label in "[a-z]{1,12}",
        draws in 0usize..32,
    ) {
        let fresh = SimRng::seed_from(seed);
        let mut drained = SimRng::seed_from(seed);
        for _ in 0..draws {
            let _ = drained.next_f64();
        }
        let mut a = fresh.substream(&label);
        let mut b = drained.substream(&label);
        for _ in 0..8 {
            prop_assert_eq!(a.next_f64(), b.next_f64());
        }
    }

    /// Distinct labels derive distinct streams (seed collision would make
    /// two campaign trials share noise).
    #[test]
    fn substreams_distinct_labels_distinct_seeds(
        seed in any::<u64>(),
        l1 in "[a-z0-9/@+]{1,16}",
        l2 in "[a-z0-9/@+]{1,16}",
    ) {
        prop_assume!(l1 != l2);
        let parent = SimRng::seed_from(seed);
        prop_assert_ne!(parent.substream(&l1).seed(), parent.substream(&l2).seed());
    }

    /// Chained substream derivation is stable: the same label path always
    /// reaches the same stream.
    #[test]
    fn substream_chains_stable(seed in any::<u64>(), l1 in "[a-z]{1,8}", l2 in "[a-z]{1,8}") {
        let p = SimRng::seed_from(seed);
        let a = p.substream(&l1).substream(&l2).seed();
        let b = SimRng::seed_from(seed).substream(&l1).substream(&l2).seed();
        prop_assert_eq!(a, b);
    }

    /// Campaign-shaped label families never collide: the FNV-1a + splitmix64
    /// derivation must keep every `attack/gap/v/seed` label on its own
    /// stream. A single collision would silently duplicate a trial.
    #[test]
    fn substream_campaign_labels_collision_free(
        seed in any::<u64>(),
        attacks in proptest::collection::vec("[a-z]{3,8}(@[0-9]{1,3}\\+[0-9]{1,3})?", 1..4),
        gaps in proptest::collection::vec(10u32..500, 1..4),
    ) {
        use std::collections::HashSet;
        let parent = SimRng::seed_from(seed);
        let mut seen = HashSet::new();
        let mut labels = 0usize;
        for attack in &attacks {
            for &gap in &gaps {
                for trial in 0..8u32 {
                    let label = format!("{attack}/gap{gap}/v65/seed{trial}");
                    labels += 1;
                    seen.insert(parent.substream(&label).seed());
                }
            }
        }
        // `labels` counts formatted label strings, which are unique by
        // construction *except* when the attack list or gap list repeats an
        // entry — so compare against the distinct label count.
        let distinct: HashSet<String> = attacks
            .iter()
            .flat_map(|a| gaps.iter().flat_map(move |g| {
                (0..8u32).map(move |t| format!("{a}/gap{g}/v65/seed{t}"))
            }))
            .collect();
        prop_assert_eq!(seen.len(), distinct.len());
        prop_assert!(seen.len() <= labels);
    }

    /// Distinct labels derive *statistically independent* streams: across
    /// many label pairs, the draw-wise correlation of the two streams stays
    /// near zero, and no pair shares even a single aligned draw.
    #[test]
    fn substreams_independent_across_labels(seed in any::<u64>()) {
        let parent = SimRng::seed_from(seed);
        let n_draws = 64;
        let mut worst_corr = 0.0f64;
        for pair in 0..16 {
            let mut a = parent.substream(&format!("label-a{pair}"));
            let mut b = parent.substream(&format!("label-b{pair}"));
            let xs: Vec<f64> = (0..n_draws).map(|_| a.next_f64()).collect();
            let ys: Vec<f64> = (0..n_draws).map(|_| b.next_f64()).collect();
            // No aligned draw may coincide (a shared draw means the hash
            // funneled both labels into one underlying stream).
            prop_assert!(xs.iter().zip(&ys).all(|(x, y)| x != y));
            // Pearson correlation of uniform draws: |r| ≲ 4/√n for
            // independent streams; use a loose 0.5 to keep the test robust
            // while still catching stream reuse (which gives |r| = 1).
            let mx = xs.iter().sum::<f64>() / n_draws as f64;
            let my = ys.iter().sum::<f64>() / n_draws as f64;
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
            let r = cov / (vx * vy).sqrt();
            worst_corr = worst_corr.max(r.abs());
        }
        prop_assert!(worst_corr < 0.5, "worst |r| = {worst_corr}");
    }

    /// Canonical JSON round-trips finite numbers bit-exactly — the property
    /// golden traces rely on.
    #[test]
    fn json_numbers_round_trip(values in proptest::collection::vec(-1e9f64..1e9, 0..64)) {
        use argus_sim::json::{parse, Json};
        let doc = Json::Arr(values.iter().map(|&v| Json::num(v)).collect());
        let parsed = parse(&doc.to_canonical()).unwrap();
        let back = parsed.as_arr().unwrap();
        prop_assert_eq!(back.len(), values.len());
        for (x, v) in back.iter().zip(&values) {
            prop_assert_eq!(x.as_f64().unwrap().to_bits(), v.to_bits());
        }
    }

    /// Canonical JSON string escaping round-trips arbitrary text, and the
    /// pretty and compact encodings parse to the same document.
    #[test]
    fn json_strings_round_trip(
        chars in proptest::collection::vec(
            proptest::sample::select(vec![
                'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0007}', 'é', '→',
            ]),
            0..40,
        )
    ) {
        use argus_sim::json::{parse, Json};
        let text: String = chars.into_iter().collect();
        let doc = Json::Obj(vec![("k".to_string(), Json::str(text.clone()))]);
        let compact = parse(&doc.to_canonical()).unwrap();
        let pretty = parse(&doc.to_pretty()).unwrap();
        prop_assert_eq!(compact.get("k").unwrap().as_str(), Some(text.as_str()));
        prop_assert_eq!(compact, pretty);
    }
}
