//! Equivalence contracts of the zero-allocation fast path.
//!
//! The scratch/planned variants of every DSP kernel must agree with the
//! retained allocating APIs: **bit-exactly** where the arithmetic is
//! unchanged (planned FFT, cold scratch kernels), and to tight analytic
//! tolerances where it legitimately differs (warm-started eigensolver,
//! incremental covariance).

use argus_dsp::covariance::SampleCovariance;
use argus_dsp::eigen::{EigenWorkspace, HermitianEigen};
use argus_dsp::fft::{
    fft_in_place, fft_in_place_naive, ifft_in_place, ifft_in_place_naive, FftPlan,
};
use argus_dsp::rootmusic::RootMusic;
use argus_dsp::scratch::{KernelScratch, ScratchOptions};
use nalgebra::{Complex, DMatrix};

fn test_signal(n: usize) -> Vec<Complex<f64>> {
    (0..n)
        .map(|t| {
            let t = t as f64;
            Complex::from_polar(1.0, 0.31 * t)
                + Complex::from_polar(0.6, 1.27 * t + 0.5)
                + Complex::new((0.037 * t).sin() * 0.01, (0.051 * t).cos() * 0.01)
        })
        .collect()
}

fn random_hermitian(n: usize, seed: u64) -> DMatrix<Complex<f64>> {
    // Simple splitmix-style generator: deterministic, no external deps.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let g = DMatrix::from_fn(n, n, |_, _| Complex::new(next(), next()));
    &g * g.adjoint() + DMatrix::identity(n, n) * Complex::new(0.5, 0.0)
}

/// Planned forward and inverse FFTs are bit-exact with the naive per-call
/// transforms at every power-of-two size up to the periodogram's 4096.
#[test]
fn planned_fft_bit_exact_across_sizes() {
    for log2 in 0..=12u32 {
        let n = 1usize << log2;
        let signal = test_signal(n);

        let mut planned = signal.clone();
        let mut naive = signal.clone();
        fft_in_place(&mut planned).unwrap();
        fft_in_place_naive(&mut naive).unwrap();
        assert_eq!(planned, naive, "forward FFT diverged at n={n}");

        ifft_in_place(&mut planned).unwrap();
        ifft_in_place_naive(&mut naive).unwrap();
        assert_eq!(planned, naive, "inverse FFT diverged at n={n}");
    }
}

/// A directly constructed plan agrees with the registry path.
#[test]
fn explicit_plan_matches_registry_path() {
    let signal = test_signal(512);
    let plan = FftPlan::new(512).unwrap();
    let mut direct = signal.clone();
    let mut registry = signal.clone();
    plan.forward(&mut direct).unwrap();
    fft_in_place(&mut registry).unwrap();
    assert_eq!(direct, registry);
}

/// Warm-started Jacobi agrees with the cold decomposition to 1e-12 on the
/// eigenvalues and reconstructs the matrix equally well.
#[test]
fn warm_eigen_matches_cold_to_1e12() {
    let base = random_hermitian(8, 11);
    let mut ws = EigenWorkspace::new();
    ws.decompose(&base, 1e-8, false).unwrap();

    // Drift the matrix slightly, as consecutive radar frames do.
    let drift = random_hermitian(8, 12) * Complex::new(1e-6, 0.0);
    let perturbed = &base + &drift;

    let cold = HermitianEigen::new(&perturbed, 1e-8).unwrap();
    ws.decompose(&perturbed, 1e-8, true).unwrap();

    let scale = cold
        .eigenvalues()
        .iter()
        .fold(1.0f64, |m, &l| m.max(l.abs()));
    for (w, c) in ws.eigenvalues().iter().zip(cold.eigenvalues()) {
        assert!(
            (w - c).abs() <= 1e-12 * scale,
            "eigenvalue mismatch: warm {w} vs cold {c}"
        );
    }
    // The warm eigenvectors still diagonalize the matrix.
    let v = ws.eigenvectors();
    let mut reconstructed = DMatrix::zeros(8, 8);
    for k in 0..8 {
        let lambda = ws.eigenvalues()[k];
        for i in 0..8 {
            for j in 0..8 {
                reconstructed[(i, j)] += v[(i, k)] * v[(j, k)].conj() * Complex::new(lambda, 0.0);
            }
        }
    }
    assert!(
        (&reconstructed - &perturbed).norm() < 1e-10 * (1.0 + perturbed.norm()),
        "warm eigenvectors do not reconstruct the input"
    );
}

/// The scratch covariance builder reproduces the allocating builder
/// bit-for-bit, and the incremental variant agrees to rounding.
#[test]
fn covariance_paths_agree() {
    let signal = test_signal(128);
    let builder = SampleCovariance::builder(8);
    let reference = builder.build(&signal).unwrap();

    let mut out = SampleCovariance::zeros(3); // deliberately wrong size
    builder.build_into(&signal, &mut out).unwrap();
    assert_eq!(
        out.matrix(),
        reference.matrix(),
        "direct path not bit-exact"
    );

    let mut incr = SampleCovariance::zeros(8);
    SampleCovariance::builder(8)
        .incremental(true)
        .build_into(&signal, &mut incr)
        .unwrap();
    let scale = reference.matrix().norm();
    assert!(
        (incr.matrix() - reference.matrix()).norm() <= 1e-12 * scale,
        "incremental covariance drifted"
    );
}

/// A cold bit-exact scratch drives root-MUSIC to the identical estimates of
/// the allocating API, frame after frame on the same dirty arena.
#[test]
fn rootmusic_scratch_equivalence_across_frames() {
    let rm = RootMusic::new(2);
    let mut scratch = KernelScratch::new(ScratchOptions::bit_exact());
    let mut out = Vec::new();
    for frame in 0..4 {
        let signal: Vec<Complex<f64>> = (0..96)
            .map(|t| {
                let t = t as f64;
                Complex::from_polar(1.0 + 0.01 * frame as f64, 0.7 * t)
                    + Complex::from_polar(0.5, 1.9 * t + 0.2)
            })
            .collect();
        let cov = SampleCovariance::builder(8).build(&signal).unwrap();
        let reference = rm.estimate(&cov).unwrap();
        rm.estimate_into(&cov, &mut scratch, &mut out).unwrap();
        assert_eq!(out, reference, "frame {frame} diverged");
    }
}
