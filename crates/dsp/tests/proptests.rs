//! Property-based tests for the DSP substrate.

use argus_dsp::covariance::SampleCovariance;
use argus_dsp::eigen::HermitianEigen;
use argus_dsp::fft::{dft, fft, fft_in_place, fft_in_place_naive, ifft};
use argus_dsp::polynomial::Polynomial;
use argus_dsp::rootmusic::RootMusic;
use argus_dsp::scratch::{KernelScratch, ScratchOptions};
use nalgebra::{Complex, DMatrix};
use proptest::prelude::*;

fn complex_signal(len: usize) -> impl Strategy<Value = Vec<Complex<f64>>> {
    proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT → IFFT is the identity.
    #[test]
    fn fft_round_trip(signal in complex_signal(64)) {
        let spectrum = fft(&signal).unwrap();
        let back = ifft(&spectrum).unwrap();
        for (a, b) in signal.iter().zip(&back) {
            prop_assert!((a - b).norm() < 1e-9);
        }
    }

    /// Parseval: time-domain and frequency-domain energies agree.
    #[test]
    fn fft_parseval(signal in complex_signal(128)) {
        let spectrum = fft(&signal).unwrap();
        let e_time: f64 = signal.iter().map(|x| x.norm_sqr()).sum();
        let e_freq: f64 =
            spectrum.iter().map(|x| x.norm_sqr()).sum::<f64>() / spectrum.len() as f64;
        prop_assert!((e_time - e_freq).abs() <= 1e-6 * (1.0 + e_time));
    }

    /// FFT matches the O(n²) DFT oracle on arbitrary data.
    #[test]
    fn fft_matches_dft(signal in complex_signal(32)) {
        let fast = fft(&signal).unwrap();
        let slow = dft(&signal).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).norm() < 1e-7);
        }
    }

    /// Durand–Kerner recovers well-separated random roots.
    #[test]
    fn polynomial_roots_recovered(
        seeds in proptest::collection::vec((0.3f64..2.0, 0.0f64..std::f64::consts::TAU), 3..7)
    ) {
        // Separate roots on distinct rings/angles to avoid near-multiples.
        let roots: Vec<Complex<f64>> = seeds
            .iter()
            .enumerate()
            .map(|(i, &(r, th))| Complex::from_polar(r + 0.7 * i as f64, th + i as f64))
            .collect();
        let poly = Polynomial::from_roots(&roots);
        let found = poly.roots().unwrap();
        for r in &roots {
            let best = found.iter().map(|f| (f - r).norm()).fold(f64::MAX, f64::min);
            prop_assert!(best < 1e-5, "missing root {r}, best {best:e}");
        }
    }

    /// Polynomial evaluation at found roots gives (near-)zero residuals.
    #[test]
    fn polynomial_root_residuals(coeffs in proptest::collection::vec(-3.0f64..3.0, 3..9)) {
        prop_assume!(coeffs.last().map(|c| c.abs() > 0.1).unwrap_or(false));
        let poly = Polynomial::from_real(&coeffs);
        if let Ok(roots) = poly.roots() {
            let scale: f64 = coeffs.iter().map(|c| c.abs()).fold(1.0, f64::max);
            for r in roots {
                let residual = poly.eval(r).norm();
                let headroom = 1.0 + r.norm().powi(poly.degree() as i32);
                prop_assert!(residual < 1e-6 * scale * headroom);
            }
        }
    }

    /// Hermitian eigendecomposition reconstructs the input and keeps the
    /// eigenvector matrix unitary.
    #[test]
    fn eigen_reconstruction(entries in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 16)) {
        let g = DMatrix::from_fn(4, 4, |i, j| {
            let (re, im) = entries[4 * i + j];
            Complex::new(re, im)
        });
        let a = &g * g.adjoint() + DMatrix::identity(4, 4) * Complex::new(0.1, 0.0);
        let e = HermitianEigen::new(&a, 1e-8).unwrap();
        let err = (&a - e.reconstruct()).norm();
        prop_assert!(err < 1e-9 * (1.0 + a.norm()));
        let v = e.eigenvectors();
        let unitary_err = (v.adjoint() * v - DMatrix::<Complex<f64>>::identity(4, 4)).norm();
        prop_assert!(unitary_err < 1e-10);
        // Eigenvalues of a PSD + 0.1 I matrix are ≥ 0.1 (up to numerics).
        for &l in e.eigenvalues() {
            prop_assert!(l > 0.099);
        }
    }

    /// Sample covariance is always Hermitian PSD.
    #[test]
    fn covariance_hermitian_psd(signal in complex_signal(48)) {
        let cov = SampleCovariance::builder(6).build(&signal).unwrap();
        let r = cov.matrix();
        for i in 0..6 {
            for j in 0..6 {
                prop_assert!((r[(i, j)] - r[(j, i)].conj()).norm() < 1e-10);
            }
        }
        let e = HermitianEigen::new(r, 1e-8).unwrap();
        for &l in e.eigenvalues() {
            prop_assert!(l > -1e-8, "negative eigenvalue {l}");
        }
    }

    /// The cached-plan FFT is **bit-exact** with the naive per-call
    /// transform on arbitrary data and every power-of-two length: the plan
    /// tables are built with the identical twiddle recurrence the naive
    /// loop uses, so not a single ulp may differ.
    #[test]
    fn planned_fft_is_bit_exact_with_naive(
        signal in complex_signal(256),
        log2 in 0u32..9,
    ) {
        let n = 1usize << log2;
        let mut planned = signal[..n].to_vec();
        let mut naive = signal[..n].to_vec();
        fft_in_place(&mut planned).unwrap();
        fft_in_place_naive(&mut naive).unwrap();
        prop_assert_eq!(planned, naive);
    }

    /// Scratch reuse is pure: running a kernel through a **dirty** arena
    /// (previously used on unrelated data) gives exactly the same answer as
    /// the allocating API, on every input.
    #[test]
    fn scratch_reuse_is_pure(
        sig_a in complex_signal(64),
        sig_b in complex_signal(64),
    ) {
        let rm = RootMusic::new(1);
        let cov_a = SampleCovariance::builder(6).build(&sig_a).unwrap();
        let cov_b = SampleCovariance::builder(6).build(&sig_b).unwrap();
        let reference = rm.estimate(&cov_a).ok();

        let mut scratch = KernelScratch::new(ScratchOptions::bit_exact());
        let mut out = Vec::new();
        // Dirty every buffer in the arena with unrelated data …
        let _ = rm.estimate_into(&cov_b, &mut scratch, &mut out);
        // … then compute twice; both calls must match the allocating path
        // bit for bit (including the error/ok outcome).
        for _ in 0..2 {
            let via_scratch = rm
                .estimate_into(&cov_a, &mut scratch, &mut out)
                .ok()
                .map(|()| out.clone());
            prop_assert_eq!(via_scratch.clone(), reference.clone());
        }
    }

    /// root-MUSIC recovers a random single tone. Noiseless data places the
    /// conjugate-reciprocal root pairs exactly on the unit circle (double
    /// roots), where any iterative root finder is limited to roughly
    /// √machine-ε accuracy — hence the modest tolerance; with noise the
    /// roots separate and accuracy improves (covered by the noisy unit
    /// tests in the crate).
    #[test]
    fn rootmusic_single_tone(omega in 0.05f64..3.0, amp in 0.2f64..4.0) {
        let signal: Vec<Complex<f64>> = (0..96)
            .map(|t| Complex::from_polar(amp, omega * t as f64))
            .collect();
        let est = RootMusic::new(1).estimate_from_signal(&signal, 6).unwrap();
        prop_assert!(
            (est[0].frequency - omega).abs() < 1e-3,
            "estimate {} vs {omega}",
            est[0].frequency
        );
    }
}
