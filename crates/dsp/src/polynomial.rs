//! Complex polynomials and root finding.
//!
//! root-MUSIC turns the noise-subspace projector into a degree `2(M−1)`
//! polynomial whose roots near the unit circle encode the tone frequencies.
//! Roots are found with the Durand–Kerner (Weierstrass) simultaneous
//! iteration, which needs no derivative bookkeeping and finds all roots at
//! once.

use nalgebra::Complex;

use crate::DspError;

/// Maximum Durand–Kerner iterations.
pub(crate) const MAX_ITERS: usize = 500;

/// A polynomial with complex coefficients, stored lowest degree first:
/// `p(z) = c[0] + c[1] z + … + c[n] zⁿ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<Complex<f64>>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients (lowest degree first).
    /// Trailing (highest-degree) zero coefficients are trimmed.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty or contains non-finite values.
    pub fn new(coeffs: Vec<Complex<f64>>) -> Self {
        let mut poly = Self { coeffs };
        poly.validate_and_trim();
        poly
    }

    /// Replaces the coefficients in place, reusing the existing allocation
    /// (lowest degree first; trailing zeros trimmed as in
    /// [`Polynomial::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty or contains non-finite values.
    pub fn set_coefficients(&mut self, coeffs: &[Complex<f64>]) {
        self.coeffs.clear();
        self.coeffs.extend_from_slice(coeffs);
        self.validate_and_trim();
    }

    fn validate_and_trim(&mut self) {
        assert!(
            !self.coeffs.is_empty(),
            "polynomial needs at least one coefficient"
        );
        assert!(
            self.coeffs
                .iter()
                .all(|c| c.re.is_finite() && c.im.is_finite()),
            "polynomial coefficients must be finite"
        );
        while self.coeffs.len() > 1 && self.coeffs.last().map(|c| c.norm()) == Some(0.0) {
            self.coeffs.pop();
        }
    }

    /// Creates a polynomial from real coefficients (lowest degree first).
    pub fn from_real(coeffs: &[f64]) -> Self {
        Self::new(coeffs.iter().map(|&c| Complex::new(c, 0.0)).collect())
    }

    /// Builds the monic polynomial `(z - r_0)(z - r_1)…` with given roots.
    pub fn from_roots(roots: &[Complex<f64>]) -> Self {
        let mut coeffs = vec![Complex::new(1.0, 0.0)];
        for &r in roots {
            // Multiply by (z - r).
            let mut next = vec![Complex::new(0.0, 0.0); coeffs.len() + 1];
            for (i, &c) in coeffs.iter().enumerate() {
                next[i + 1] += c;
                next[i] -= c * r;
            }
            coeffs = next;
        }
        Self::new(coeffs)
    }

    /// Coefficients, lowest degree first.
    pub fn coefficients(&self) -> &[Complex<f64>] {
        &self.coeffs
    }

    /// Degree of the polynomial (0 for constants).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates the polynomial at `z` (Horner's rule).
    pub fn eval(&self, z: Complex<f64>) -> Complex<f64> {
        let mut acc = Complex::new(0.0, 0.0);
        for &c in self.coeffs.iter().rev() {
            acc = acc * z + c;
        }
        acc
    }

    /// The formal derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() == 1 {
            return Polynomial::new(vec![Complex::new(0.0, 0.0)]);
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| c * i as f64)
            .collect();
        Polynomial::new(coeffs)
    }

    /// Finds all roots with the Durand–Kerner simultaneous iteration
    /// (allocating wrapper around [`Polynomial::roots_into`], cold start).
    ///
    /// # Errors
    ///
    /// * [`DspError::BadParameter`] — degree 0, or the leading coefficient
    ///   is (numerically) zero.
    /// * [`DspError::NoConvergence`] — iteration stalled; extremely rare for
    ///   the well-scaled polynomials root-MUSIC produces.
    pub fn roots(&self) -> Result<Vec<Complex<f64>>, DspError> {
        let mut out = Vec::new();
        self.roots_into(None, &mut out)?;
        Ok(out)
    }

    /// Finds all roots into a caller-owned buffer, optionally warm-starting
    /// the iteration from a previous frame's roots.
    ///
    /// Warm guesses are used only when exactly `degree` finite values are
    /// supplied; if the warm iteration fails to converge, the standard cold
    /// initial guesses are retried before reporting failure, so a bad warm
    /// start can cost iterations but never an answer.
    ///
    /// # Errors
    ///
    /// Same as [`Polynomial::roots`].
    pub fn roots_into(
        &self,
        warm_start: Option<&[Complex<f64>]>,
        out: &mut Vec<Complex<f64>>,
    ) -> Result<(), DspError> {
        let n = self.degree();
        if n == 0 {
            return Err(DspError::BadParameter {
                name: "polynomial",
                message: "constant polynomial has no roots".to_string(),
            });
        }
        let lead = self.coeffs[n];
        if lead.norm() < 1e-300 {
            return Err(DspError::BadParameter {
                name: "polynomial",
                message: "leading coefficient is zero".to_string(),
            });
        }
        // Monic normalization (the one allocation on this path; degree ≤ 31
        // for every covariance window Argus uses).
        let monic: Vec<Complex<f64>> = self.coeffs.iter().map(|&c| c / lead).collect();
        let poly = Polynomial { coeffs: monic };

        let usable_warm = warm_start
            .filter(|w| w.len() == n && w.iter().all(|c| c.re.is_finite() && c.im.is_finite()));
        if let Some(w) = usable_warm {
            out.clear();
            out.extend_from_slice(w);
            if durand_kerner(&poly, out).is_ok() {
                return Ok(());
            }
        }

        // Initial guesses on a circle of radius related to the coefficient
        // magnitudes (Cauchy-like bound), with irrational angular spacing so
        // no guess starts symmetric with another.
        let radius = 1.0
            + poly.coeffs[..n]
                .iter()
                .map(|c| c.norm())
                .fold(0.0f64, f64::max);
        out.clear();
        out.extend((0..n).map(|k| Complex::from_polar(radius.min(2.0), 0.4 + 2.4 * k as f64)));
        durand_kerner(&poly, out)
    }
}

/// Runs the Durand–Kerner iteration on a **monic** polynomial, refining the
/// root estimates in `roots` in place.
fn durand_kerner(poly: &Polynomial, roots: &mut [Complex<f64>]) -> Result<(), DspError> {
    let n = roots.len();
    let tol = 1e-13;
    let scale = poly.coeffs.iter().map(|c| c.norm()).fold(1.0f64, f64::max);
    for iter in 0..MAX_ITERS {
        let mut max_step = 0.0f64;
        // Near-multiple roots (root-MUSIC's conjugate-reciprocal pairs hug
        // the unit circle) make the update oscillate at the √ε floor and the
        // step criterion alone never fires; once every residual sits at the
        // evaluation noise floor the roots cannot improve, so stop. The
        // `p(zᵢ)` values are already computed for the update — the check is
        // free, and it is what lets a warm start exit after one sweep.
        let mut residuals_converged = true;
        for i in 0..n {
            let zi = roots[i];
            let mut denom = Complex::new(1.0, 0.0);
            for (j, &zj) in roots.iter().enumerate() {
                if j != i {
                    denom *= zi - zj;
                }
            }
            if denom.norm() < 1e-280 {
                // Perturb colliding estimates apart.
                roots[i] += Complex::new(1e-6 * (i as f64 + 1.0), 1e-6);
                max_step = f64::MAX;
                residuals_converged = false;
                continue;
            }
            let p_zi = poly.eval(zi);
            if p_zi.norm() > 1e-13 * scale * (1.0 + zi.norm().powi(n as i32)) {
                residuals_converged = false;
            }
            let delta = p_zi / denom;
            roots[i] = zi - delta;
            max_step = max_step.max(delta.norm());
        }
        if max_step < tol || residuals_converged {
            return Ok(());
        }
        // Occasional shake if wildly stalled (keeps determinism).
        if iter == MAX_ITERS / 2 && max_step > 1.0 {
            for (k, r) in roots.iter_mut().enumerate() {
                *r += Complex::from_polar(0.01, 1.7 * k as f64);
            }
        }
    }
    // Accept if residuals are already small relative to coefficient scale.
    if roots
        .iter()
        .all(|&r| poly.eval(r).norm() <= 1e-8 * scale * (1.0 + r.norm().powi(n as i32)))
    {
        return Ok(());
    }
    Err(DspError::NoConvergence {
        routine: "Durand-Kerner",
        iterations: MAX_ITERS,
    })
}

impl std::fmt::Display for Polynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "poly(degree={})", self.degree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort_roots(mut r: Vec<Complex<f64>>) -> Vec<Complex<f64>> {
        r.sort_by(|a, b| {
            (a.re, a.im)
                .partial_cmp(&(b.re, b.im))
                .expect("finite roots")
        });
        r
    }

    #[test]
    fn eval_horner() {
        // p(z) = 1 + 2z + 3z²
        let p = Polynomial::from_real(&[1.0, 2.0, 3.0]);
        let v = p.eval(Complex::new(2.0, 0.0));
        assert!((v.re - 17.0).abs() < 1e-12);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Polynomial::from_real(&[1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
    }

    #[test]
    fn derivative_rule() {
        let p = Polynomial::from_real(&[5.0, 3.0, 2.0, 1.0]); // 5+3z+2z²+z³
        let d = p.derivative();
        assert_eq!(
            d.coefficients(),
            &[
                Complex::new(3.0, 0.0),
                Complex::new(4.0, 0.0),
                Complex::new(3.0, 0.0)
            ]
        );
        let c = Polynomial::from_real(&[7.0]);
        assert_eq!(c.derivative().coefficients(), &[Complex::new(0.0, 0.0)]);
    }

    #[test]
    fn quadratic_roots() {
        // z² - 3z + 2 = (z-1)(z-2)
        let p = Polynomial::from_real(&[2.0, -3.0, 1.0]);
        let r = sort_roots(p.roots().unwrap());
        assert!((r[0] - Complex::new(1.0, 0.0)).norm() < 1e-9);
        assert!((r[1] - Complex::new(2.0, 0.0)).norm() < 1e-9);
    }

    #[test]
    fn complex_conjugate_roots() {
        // z² + 1 = (z-i)(z+i)
        let p = Polynomial::from_real(&[1.0, 0.0, 1.0]);
        let r = sort_roots(p.roots().unwrap());
        assert!((r[0] - Complex::new(0.0, -1.0)).norm() < 1e-9);
        assert!((r[1] - Complex::new(0.0, 1.0)).norm() < 1e-9);
    }

    #[test]
    fn from_roots_round_trip() {
        let wanted = vec![
            Complex::new(0.5, 0.3),
            Complex::new(-1.2, 0.0),
            Complex::new(0.0, -0.8),
            Complex::new(2.0, 1.0),
        ];
        let p = Polynomial::from_roots(&wanted);
        assert_eq!(p.degree(), 4);
        let got = p.roots().unwrap();
        for w in &wanted {
            let best = got.iter().map(|g| (g - w).norm()).fold(f64::MAX, f64::min);
            assert!(best < 1e-8, "missing root {w}, best distance {best:e}");
        }
    }

    #[test]
    fn unit_circle_roots_like_rootmusic() {
        // Roots in conjugate-reciprocal pairs exactly as root-MUSIC produces.
        let inside: Vec<Complex<f64>> = [0.5f64, 1.4, 2.4]
            .iter()
            .map(|&w| Complex::from_polar(0.95, w))
            .collect();
        let outside: Vec<Complex<f64>> = inside
            .iter()
            .map(|z| Complex::from_polar(1.0 / z.norm(), z.arg()))
            .collect();
        let all: Vec<Complex<f64>> = inside.iter().chain(&outside).copied().collect();
        let p = Polynomial::from_roots(&all);
        let got = p.roots().unwrap();
        for w in &all {
            let best = got.iter().map(|g| (g - w).norm()).fold(f64::MAX, f64::min);
            assert!(best < 1e-7, "missing root {w}");
        }
    }

    #[test]
    fn residuals_are_small_for_high_degree() {
        // Degree 30, the size root-MUSIC with M = 16 would produce.
        let roots: Vec<Complex<f64>> = (0..30)
            .map(|k| Complex::from_polar(0.5 + 0.02 * k as f64, 0.21 * k as f64))
            .collect();
        let p = Polynomial::from_roots(&roots);
        let found = p.roots().unwrap();
        for r in &found {
            assert!(p.eval(*r).norm() < 1e-6, "residual {:e}", p.eval(*r).norm());
        }
        assert_eq!(found.len(), 30);
    }

    #[test]
    fn constant_rejected() {
        let p = Polynomial::from_real(&[3.0]);
        assert!(matches!(p.roots(), Err(DspError::BadParameter { .. })));
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn empty_coefficients_panic() {
        let _ = Polynomial::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_coefficients_panic() {
        let _ = Polynomial::from_real(&[1.0, f64::NAN]);
    }

    #[test]
    fn set_coefficients_reuses_buffer_and_trims() {
        let mut p = Polynomial::from_real(&[1.0, 2.0, 3.0]);
        p.set_coefficients(&[
            Complex::new(4.0, 0.0),
            Complex::new(5.0, 0.0),
            Complex::new(0.0, 0.0),
        ]);
        assert_eq!(p.degree(), 1);
        assert_eq!(
            p.coefficients(),
            &[Complex::new(4.0, 0.0), Complex::new(5.0, 0.0)]
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn set_coefficients_rejects_non_finite() {
        let mut p = Polynomial::from_real(&[1.0]);
        p.set_coefficients(&[Complex::new(f64::INFINITY, 0.0)]);
    }

    #[test]
    fn roots_into_cold_matches_roots_exactly() {
        let p = Polynomial::from_roots(&[
            Complex::new(0.5, 0.3),
            Complex::new(-1.2, 0.0),
            Complex::new(0.0, -0.8),
        ]);
        let direct = p.roots().unwrap();
        let mut buf = vec![Complex::new(9.0, 9.0); 17]; // dirty, wrong size
        p.roots_into(None, &mut buf).unwrap();
        assert_eq!(buf, direct);
    }

    #[test]
    fn warm_start_converges_to_same_roots() {
        let wanted = [
            Complex::new(0.5, 0.3),
            Complex::new(-1.2, 0.0),
            Complex::new(0.0, -0.8),
            Complex::new(2.0, 1.0),
        ];
        let p = Polynomial::from_roots(&wanted);
        let cold = p.roots().unwrap();
        // Guesses near (but not at) the true roots — the previous-frame case.
        let guesses: Vec<Complex<f64>> =
            cold.iter().map(|r| r + Complex::new(1e-3, -1e-3)).collect();
        let mut warm = Vec::new();
        p.roots_into(Some(&guesses), &mut warm).unwrap();
        for w in &wanted {
            let best = warm.iter().map(|g| (g - w).norm()).fold(f64::MAX, f64::min);
            assert!(best < 1e-8, "missing root {w}, best {best:e}");
        }
    }

    #[test]
    fn mismatched_warm_start_falls_back_to_cold() {
        let p = Polynomial::from_real(&[2.0, -3.0, 1.0]);
        let cold = p.roots().unwrap();
        let mut out = Vec::new();
        // Wrong length: must be ignored, yielding the exact cold result.
        p.roots_into(Some(&[Complex::new(1.0, 0.0)]), &mut out)
            .unwrap();
        assert_eq!(out, cold);
        // Non-finite warm guesses likewise.
        let bad = vec![Complex::new(f64::NAN, 0.0); 2];
        p.roots_into(Some(&bad), &mut out).unwrap();
        assert_eq!(out, cold);
    }

    #[test]
    fn display_shows_degree() {
        let p = Polynomial::from_real(&[1.0, 0.0, 2.0]);
        assert_eq!(p.to_string(), "poly(degree=2)");
    }
}
