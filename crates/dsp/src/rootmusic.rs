//! root-MUSIC frequency estimation — the paper's beat-frequency extractor.
//!
//! Instead of scanning a grid like MUSIC, root-MUSIC forms the polynomial
//!
//! ```text
//! D(z) = aᵀ(1/z) · EₙEₙᴴ · a(z) ,  a(z) = [1, z, …, z^{M−1}]ᵀ
//! ```
//!
//! whose `2(M−1)` roots come in conjugate-reciprocal pairs; the `K` roots
//! inside (and closest to) the unit circle give the tone frequencies
//! `ω = arg(z)`. This matches MATLAB's `rootmusic`, which the paper uses via
//! the Phased Array System Toolbox.

use nalgebra::Complex;

use crate::covariance::SampleCovariance;
use crate::eigen::HermitianEigen;
use crate::music::noise_projector;
use crate::polynomial::Polynomial;
use crate::DspError;

/// One estimated complex exponential.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyEstimate {
    /// Normalized angular frequency in `[0, 2π)` rad/sample.
    pub frequency: f64,
    /// Magnitude of the corresponding root; 1.0 means "exactly on the unit
    /// circle" (noise pushes it inward). A quality indicator.
    pub root_magnitude: f64,
}

/// root-MUSIC estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootMusic {
    signal_count: usize,
}

impl RootMusic {
    /// Creates an estimator that assumes `signal_count` complex exponentials.
    ///
    /// # Panics
    ///
    /// Panics if `signal_count == 0`.
    pub fn new(signal_count: usize) -> Self {
        assert!(signal_count > 0, "signal count must be positive");
        Self { signal_count }
    }

    /// Assumed number of signals.
    pub fn signal_count(&self) -> usize {
        self.signal_count
    }

    /// Estimates the tone frequencies from a sample covariance, strongest
    /// (closest-to-unit-circle) first.
    ///
    /// # Errors
    ///
    /// * [`DspError::BadParameter`] — `signal_count >= window`.
    /// * Eigendecomposition or root-finding failures are propagated.
    pub fn estimate(&self, cov: &SampleCovariance) -> Result<Vec<FrequencyEstimate>, DspError> {
        let m = cov.window();
        if self.signal_count >= m {
            return Err(DspError::BadParameter {
                name: "signal_count",
                message: format!(
                    "signal count {} must be below covariance window {m}",
                    self.signal_count
                ),
            });
        }
        let eigen = HermitianEigen::new(cov.matrix(), 1e-6)?;
        let noise = eigen.noise_subspace(self.signal_count)?;
        let c = noise_projector(&noise);

        // With z = e^{jω}, aᴴ(ω)·C·a(ω) = Σ_{i,j} C[i][j] z^{j−i}; the
        // coefficient of z^l is therefore the sum of the l-th superdiagonal.
        // Multiplying by z^{M−1} gives an ordinary polynomial of degree
        // 2(M−1).
        let mut coeffs = vec![Complex::new(0.0, 0.0); 2 * m - 1];
        for l in 0..m {
            // d_l = Σ_n C[n][n+l]  (sum of l-th superdiagonal)
            let mut d = Complex::new(0.0, 0.0);
            for n in 0..(m - l) {
                d += c[(n, n + l)];
            }
            coeffs[m - 1 + l] = d;
            coeffs[m - 1 - l] = d.conj();
        }
        let poly = Polynomial::new(coeffs);
        let roots = poly.roots()?;

        // Rank all roots by distance from the unit circle. (Noiseless data
        // puts the signal roots *exactly* on the circle, where rounding can
        // push them a hair outside — filtering to |z| ≤ 1 would then drop
        // them entirely, so no inside-filter is applied; the angle dedup
        // below collapses each conjugate-reciprocal pair instead.)
        let mut candidates = roots;
        candidates.sort_by(|a, b| {
            (1.0 - a.norm())
                .abs()
                .partial_cmp(&(1.0 - b.norm()).abs())
                .expect("finite root magnitudes")
        });
        let mut picked: Vec<Complex<f64>> = Vec::with_capacity(self.signal_count);
        for z in candidates {
            let duplicate = picked.iter().any(|p| {
                let mut d = (p.arg() - z.arg()).abs();
                d = d.min(2.0 * std::f64::consts::PI - d);
                d < 1e-6
            });
            if !duplicate {
                picked.push(z);
                if picked.len() == self.signal_count {
                    break;
                }
            }
        }
        if picked.len() < self.signal_count {
            return Err(DspError::BadParameter {
                name: "covariance",
                message: format!(
                    "only {} of {} roots found near the unit circle",
                    picked.len(),
                    self.signal_count
                ),
            });
        }
        Ok(picked
            .into_iter()
            .map(|z| FrequencyEstimate {
                frequency: z.arg().rem_euclid(2.0 * std::f64::consts::PI),
                root_magnitude: z.norm(),
            })
            .collect())
    }

    /// Convenience: estimate directly from a signal with window length `m`.
    ///
    /// # Errors
    ///
    /// Propagates covariance and estimation errors.
    pub fn estimate_from_signal(
        &self,
        signal: &[Complex<f64>],
        window: usize,
    ) -> Result<Vec<FrequencyEstimate>, DspError> {
        let cov = SampleCovariance::builder(window).build(signal)?;
        self.estimate(&cov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tones(n: usize, specs: &[(f64, f64)]) -> Vec<Complex<f64>> {
        (0..n)
            .map(|t| {
                specs
                    .iter()
                    .map(|&(amp, w)| Complex::from_polar(amp, w * t as f64))
                    .sum()
            })
            .collect()
    }

    fn sorted_freqs(estimates: &[FrequencyEstimate]) -> Vec<f64> {
        let mut f: Vec<f64> = estimates.iter().map(|e| e.frequency).collect();
        f.sort_by(|a, b| a.partial_cmp(b).unwrap());
        f
    }

    #[test]
    fn single_noiseless_tone_is_exact() {
        let w = 1.234;
        let sig = tones(64, &[(1.0, w)]);
        let est = RootMusic::new(1).estimate_from_signal(&sig, 6).unwrap();
        assert_eq!(est.len(), 1);
        // Noiseless data puts conjugate-reciprocal root pairs exactly on the
        // unit circle (double roots), where iterative root finders are
        // limited to ~sqrt(machine-eps) accuracy.
        assert!((est[0].frequency - w).abs() < 1e-6, "{}", est[0].frequency);
        assert!((est[0].root_magnitude - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_noiseless_tones_exact() {
        let (w1, w2) = (0.5, 1.4);
        let sig = tones(128, &[(1.0, w1), (0.8, w2)]);
        let est = RootMusic::new(2).estimate_from_signal(&sig, 8).unwrap();
        let f = sorted_freqs(&est);
        assert!((f[0] - w1).abs() < 1e-6);
        assert!((f[1] - w2).abs() < 1e-6);
    }

    #[test]
    fn three_tones_recovered() {
        let sig = tones(256, &[(1.0, 0.4), (0.9, 1.2), (0.7, 2.5)]);
        let est = RootMusic::new(3).estimate_from_signal(&sig, 10).unwrap();
        let f = sorted_freqs(&est);
        assert!((f[0] - 0.4).abs() < 1e-5);
        assert!((f[1] - 1.2).abs() < 1e-5);
        assert!((f[2] - 2.5).abs() < 1e-5);
    }

    #[test]
    fn noisy_tone_recovered_to_good_accuracy() {
        // Deterministic pseudo-noise (LCG), SNR ≈ 20 dB.
        let w = 0.9;
        let mut state: u64 = 12345;
        let mut noise = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.28
        };
        let sig: Vec<Complex<f64>> = (0..256)
            .map(|t| Complex::from_polar(1.0, w * t as f64) + Complex::new(noise(), noise()))
            .collect();
        let est = RootMusic::new(1).estimate_from_signal(&sig, 8).unwrap();
        assert!(
            (est[0].frequency - w).abs() < 5e-3,
            "estimate {}",
            est[0].frequency
        );
    }

    #[test]
    fn close_tones_separated_beyond_fft_resolution() {
        // Δω = 0.04 rad/sample over 128 samples is below the FFT's natural
        // resolution (2π/128 ≈ 0.049) — the subspace method still splits them.
        let (w1, w2) = (1.00, 1.04);
        let sig = tones(128, &[(1.0, w1), (1.0, w2)]);
        let est = RootMusic::new(2).estimate_from_signal(&sig, 16).unwrap();
        let f = sorted_freqs(&est);
        assert!((f[0] - w1).abs() < 5e-3, "{f:?}");
        assert!((f[1] - w2).abs() < 5e-3, "{f:?}");
    }

    #[test]
    fn agrees_with_music_grid_search() {
        let sig = tones(200, &[(1.0, 0.7), (0.6, 2.1)]);
        let cov = SampleCovariance::builder(8).build(&sig).unwrap();
        let rm = RootMusic::new(2).estimate(&cov).unwrap();
        let music = crate::music::MusicSpectrum::compute(&cov, 2, 8192).unwrap();
        let mut grid_peaks = music.peaks();
        grid_peaks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rm_freqs = sorted_freqs(&rm);
        let resolution = 2.0 * std::f64::consts::PI / 8192.0;
        for (a, b) in rm_freqs.iter().zip(&grid_peaks) {
            assert!((a - b).abs() < 2.0 * resolution, "{a} vs {b}");
        }
    }

    #[test]
    fn signal_count_must_fit_window() {
        let sig = tones(64, &[(1.0, 0.5)]);
        let cov = SampleCovariance::builder(4).build(&sig).unwrap();
        assert!(matches!(
            RootMusic::new(4).estimate(&cov),
            Err(DspError::BadParameter { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_signals_panics() {
        let _ = RootMusic::new(0);
    }

    #[test]
    fn accessor_returns_count() {
        assert_eq!(RootMusic::new(3).signal_count(), 3);
    }
}
