//! root-MUSIC frequency estimation — the paper's beat-frequency extractor.
//!
//! Instead of scanning a grid like MUSIC, root-MUSIC forms the polynomial
//!
//! ```text
//! D(z) = aᵀ(1/z) · EₙEₙᴴ · a(z) ,  a(z) = [1, z, …, z^{M−1}]ᵀ
//! ```
//!
//! whose `2(M−1)` roots come in conjugate-reciprocal pairs; the `K` roots
//! inside (and closest to) the unit circle give the tone frequencies
//! `ω = arg(z)`. This matches MATLAB's `rootmusic`, which the paper uses via
//! the Phased Array System Toolbox.

use nalgebra::{Complex, DMatrix};

use crate::covariance::SampleCovariance;
use crate::scratch::{KernelScratch, ScratchOptions};
use crate::DspError;

/// Iteration cap for the warm subspace refresh. Consecutive radar frames
/// certify within a couple of iterations; hitting the cap means the spectrum
/// moved too far, and the caller falls back to the full Jacobi path.
const MAX_SUBSPACE_ITERS: usize = 32;

/// Tries to refresh the noise projector `I − V Vᴴ` by orthogonal iteration
/// of the previous frame's `p`-column signal basis on `a`, certifying the
/// iterate with a per-column invariance residual `‖A vₖ − V(VᴴA vₖ)‖ ≤
/// 1e-13·‖A‖_F` — the same accuracy the Jacobi path delivers. Warm starting
/// from the previous frame keeps the iterate locked onto the *dominant*
/// subspace. Returns `false` (projector untouched) when no usable basis
/// exists or certification fails within [`MAX_SUBSPACE_ITERS`].
fn warm_noise_projector(a: &DMatrix<Complex<f64>>, p: usize, scratch: &mut KernelScratch) -> bool {
    let m = a.nrows();
    if !scratch.has_basis || scratch.signal_basis.nrows() != m || scratch.signal_basis.ncols() != p
    {
        return false;
    }
    let frob = a.norm();
    if !frob.is_finite() || frob <= 0.0 {
        return false;
    }
    let tol_sq = (1e-13 * frob).powi(2);
    let zero = Complex::new(0.0, 0.0);
    let KernelScratch {
        signal_basis: v,
        basis_tmp: w,
        proj,
        picked: s,
        ..
    } = scratch;
    w.resize_mut(m, p, zero);
    s.clear();
    s.resize(p, zero);
    for _ in 0..MAX_SUBSPACE_ITERS {
        // w = A · V — needed both for the residual check and the update.
        for k in 0..p {
            for i in 0..m {
                let mut acc = zero;
                for j in 0..m {
                    acc += a[(i, j)] * v[(j, k)];
                }
                w[(i, k)] = acc;
            }
        }
        // Invariance residual of the *current* basis: rₖ = wₖ − V(Vᴴwₖ).
        let mut certified = true;
        for k in 0..p {
            for (l, sl) in s.iter_mut().enumerate() {
                let mut acc = zero;
                for j in 0..m {
                    acc += v[(j, l)].conj() * w[(j, k)];
                }
                *sl = acc;
            }
            let mut res_sq = 0.0;
            for i in 0..m {
                let mut vs = zero;
                for (l, sl) in s.iter().enumerate() {
                    vs += v[(i, l)] * *sl;
                }
                res_sq += (w[(i, k)] - vs).norm_sqr();
            }
            // NaN residuals must fail certification too.
            if res_sq.is_nan() || res_sq > tol_sq {
                certified = false;
                break;
            }
        }
        if certified {
            // proj = I − V Vᴴ (Hermitian; fill the upper triangle, mirror).
            if proj.nrows() != m || proj.ncols() != m {
                proj.resize_mut(m, m, zero);
            }
            for i in 0..m {
                for j in i..m {
                    let mut acc = if i == j { Complex::new(1.0, 0.0) } else { zero };
                    for k in 0..p {
                        acc -= v[(i, k)] * v[(j, k)].conj();
                    }
                    proj[(i, j)] = acc;
                    if i != j {
                        proj[(j, i)] = acc.conj();
                    }
                }
            }
            return true;
        }
        // Power step: orthonormalize w in place (modified Gram–Schmidt) and
        // make it the new basis.
        for k in 0..p {
            for l in 0..k {
                let mut dot = zero;
                for i in 0..m {
                    dot += w[(i, l)].conj() * w[(i, k)];
                }
                for i in 0..m {
                    let correction = w[(i, l)] * dot;
                    w[(i, k)] -= correction;
                }
            }
            let norm = (0..m).map(|i| w[(i, k)].norm_sqr()).sum::<f64>().sqrt();
            if norm.is_nan() || norm <= frob * 1e-15 {
                // Collapsed column — basis lost rank; let Jacobi rebuild it.
                return false;
            }
            let inv = Complex::new(1.0 / norm, 0.0);
            for i in 0..m {
                w[(i, k)] *= inv;
            }
        }
        for k in 0..p {
            for i in 0..m {
                v[(i, k)] = w[(i, k)];
            }
        }
    }
    false
}

/// One estimated complex exponential.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyEstimate {
    /// Normalized angular frequency in `[0, 2π)` rad/sample.
    pub frequency: f64,
    /// Magnitude of the corresponding root; 1.0 means "exactly on the unit
    /// circle" (noise pushes it inward). A quality indicator.
    pub root_magnitude: f64,
}

/// root-MUSIC estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootMusic {
    signal_count: usize,
}

impl RootMusic {
    /// Creates an estimator that assumes `signal_count` complex exponentials.
    ///
    /// # Panics
    ///
    /// Panics if `signal_count == 0`.
    pub fn new(signal_count: usize) -> Self {
        assert!(signal_count > 0, "signal count must be positive");
        Self { signal_count }
    }

    /// Assumed number of signals.
    pub fn signal_count(&self) -> usize {
        self.signal_count
    }

    /// Estimates the tone frequencies from a sample covariance, strongest
    /// (closest-to-unit-circle) first. Thin allocating wrapper around
    /// [`RootMusic::estimate_into`] with a cold, bit-exact scratch.
    ///
    /// # Errors
    ///
    /// * [`DspError::BadParameter`] — `signal_count >= window`.
    /// * Eigendecomposition or root-finding failures are propagated.
    pub fn estimate(&self, cov: &SampleCovariance) -> Result<Vec<FrequencyEstimate>, DspError> {
        let mut scratch = KernelScratch::new(ScratchOptions::bit_exact());
        let mut out = Vec::new();
        self.estimate_into(cov, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Estimates the tone frequencies into a caller-owned buffer, reusing
    /// every intermediate (eigensolver workspace, noise projector,
    /// polynomial, root buffers) from `scratch`.
    ///
    /// Depending on [`ScratchOptions`], the eigensolver and the root finder
    /// warm-start from the previous call on this scratch — consecutive radar
    /// frames are nearly identical, so both converge in a fraction of their
    /// cold iteration counts.
    ///
    /// # Errors
    ///
    /// Same as [`RootMusic::estimate`].
    pub fn estimate_into(
        &self,
        cov: &SampleCovariance,
        scratch: &mut KernelScratch,
        out: &mut Vec<FrequencyEstimate>,
    ) -> Result<(), DspError> {
        self.prepare_into(cov, scratch)?;
        self.solve_prepared(scratch)?;
        self.select_into(scratch, out)
    }

    /// Stage 1 of [`RootMusic::estimate_into`]: builds the noise projector
    /// and loads the root-MUSIC polynomial into `scratch.poly`.
    ///
    /// The three stages (`prepare_into` → [`RootMusic::solve_prepared`] →
    /// [`RootMusic::select_into`]) are exactly the body of `estimate_into`;
    /// they are public so a batch engine can interleave the solve stage of
    /// several prepared kernels through one vectorized pass.
    ///
    /// # Errors
    ///
    /// Same as [`RootMusic::estimate`].
    pub fn prepare_into(
        &self,
        cov: &SampleCovariance,
        scratch: &mut KernelScratch,
    ) -> Result<(), DspError> {
        let m = cov.window();
        if self.signal_count >= m {
            return Err(DspError::BadParameter {
                name: "signal_count",
                message: format!(
                    "signal count {} must be below covariance window {m}",
                    self.signal_count
                ),
            });
        }
        // Warm path: root-MUSIC only needs the noise projector, and the
        // projector only needs the dominant signal subspace — orthogonal
        // iteration from the previous frame's basis certifies it in a few
        // m²-cost matvecs, skipping the full Jacobi decomposition. Any
        // failure (no basis yet, spectrum moved, lost rank) falls back to
        // Jacobi, which also reseeds the basis for the next frame.
        scratch.eigen.set_simd(scratch.options.simd_active());
        let warm_projector = scratch.options.warm_eigen
            && warm_noise_projector(cov.matrix(), self.signal_count, scratch);
        if !warm_projector {
            scratch
                .eigen
                .decompose(cov.matrix(), 1e-6, scratch.options.warm_eigen)?;
            scratch
                .eigen
                .noise_projector_into(self.signal_count, &mut scratch.proj)?;
            if scratch.options.warm_eigen {
                let ev = scratch.eigen.eigenvectors();
                scratch
                    .signal_basis
                    .resize_mut(m, self.signal_count, Complex::new(0.0, 0.0));
                for k in 0..self.signal_count {
                    for i in 0..m {
                        scratch.signal_basis[(i, k)] = ev[(i, k)];
                    }
                }
                scratch.has_basis = true;
            }
        }
        let c = &scratch.proj;

        // With z = e^{jω}, aᴴ(ω)·C·a(ω) = Σ_{i,j} C[i][j] z^{j−i}; the
        // coefficient of z^l is therefore the sum of the l-th superdiagonal.
        // Multiplying by z^{M−1} gives an ordinary polynomial of degree
        // 2(M−1).
        scratch.coeffs.clear();
        scratch.coeffs.resize(2 * m - 1, Complex::new(0.0, 0.0));
        for l in 0..m {
            // d_l = Σ_n C[n][n+l]  (sum of l-th superdiagonal)
            let mut d = Complex::new(0.0, 0.0);
            for n in 0..(m - l) {
                d += c[(n, n + l)];
            }
            scratch.coeffs[m - 1 + l] = d;
            scratch.coeffs[m - 1 - l] = d.conj();
        }
        scratch.poly.set_coefficients(&scratch.coeffs);
        Ok(())
    }

    /// Stage 2 of [`RootMusic::estimate_into`]: roots the prepared
    /// polynomial (warm-started per the scratch options) into
    /// `scratch.roots` and refreshes the warm-root history.
    ///
    /// # Errors
    ///
    /// Propagates root-finding failures.
    pub fn solve_prepared(&self, scratch: &mut KernelScratch) -> Result<(), DspError> {
        solve_kernel(scratch)
    }

    /// Stage 3 of [`RootMusic::estimate_into`]: ranks the solved roots by
    /// distance from the unit circle, dedups conjugate-reciprocal pairs by
    /// angle, and writes the strongest `signal_count` estimates into `out`.
    ///
    /// # Errors
    ///
    /// [`DspError::BadParameter`] when fewer than `signal_count` distinct
    /// roots are found near the unit circle.
    pub fn select_into(
        &self,
        scratch: &mut KernelScratch,
        out: &mut Vec<FrequencyEstimate>,
    ) -> Result<(), DspError> {
        // Rank all roots by distance from the unit circle. (Noiseless data
        // puts the signal roots *exactly* on the circle, where rounding can
        // push them a hair outside — filtering to |z| ≤ 1 would then drop
        // them entirely, so no inside-filter is applied; the angle dedup
        // below collapses each conjugate-reciprocal pair instead.)
        scratch.roots.sort_by(|a, b| {
            (1.0 - a.norm())
                .abs()
                .partial_cmp(&(1.0 - b.norm()).abs())
                .expect("finite root magnitudes")
        });
        scratch.picked.clear();
        for idx in 0..scratch.roots.len() {
            let z = scratch.roots[idx];
            let duplicate = scratch.picked.iter().any(|p| {
                let mut d = (p.arg() - z.arg()).abs();
                d = d.min(2.0 * std::f64::consts::PI - d);
                d < 1e-6
            });
            if !duplicate {
                scratch.picked.push(z);
                if scratch.picked.len() == self.signal_count {
                    break;
                }
            }
        }
        if scratch.picked.len() < self.signal_count {
            return Err(DspError::BadParameter {
                name: "covariance",
                message: format!(
                    "only {} of {} roots found near the unit circle",
                    scratch.picked.len(),
                    self.signal_count
                ),
            });
        }
        out.clear();
        out.extend(scratch.picked.iter().map(|z| FrequencyEstimate {
            frequency: z.arg().rem_euclid(2.0 * std::f64::consts::PI),
            root_magnitude: z.norm(),
        }));
        Ok(())
    }

    /// Convenience: estimate directly from a signal with window length `m`.
    ///
    /// # Errors
    ///
    /// Propagates covariance and estimation errors.
    pub fn estimate_from_signal(
        &self,
        signal: &[Complex<f64>],
        window: usize,
    ) -> Result<Vec<FrequencyEstimate>, DspError> {
        let cov = SampleCovariance::builder(window).build(signal)?;
        self.estimate(&cov)
    }
}

/// Scalar solve stage: roots the prepared polynomial (warm-started per the
/// scratch options) and refreshes the warm-root history. Shared between
/// [`RootMusic::solve_prepared`] and the scalar fallbacks in [`crate::batch`].
pub(crate) fn solve_kernel(scratch: &mut KernelScratch) -> Result<(), DspError> {
    let warm = if scratch.options.warm_roots && scratch.has_prev_roots {
        Some(scratch.prev_roots.as_slice())
    } else {
        None
    };
    scratch.poly.roots_into(warm, &mut scratch.roots)?;
    if scratch.options.warm_roots {
        scratch.prev_roots.clear();
        scratch.prev_roots.extend_from_slice(&scratch.roots);
        scratch.has_prev_roots = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tones(n: usize, specs: &[(f64, f64)]) -> Vec<Complex<f64>> {
        (0..n)
            .map(|t| {
                specs
                    .iter()
                    .map(|&(amp, w)| Complex::from_polar(amp, w * t as f64))
                    .sum()
            })
            .collect()
    }

    fn sorted_freqs(estimates: &[FrequencyEstimate]) -> Vec<f64> {
        let mut f: Vec<f64> = estimates.iter().map(|e| e.frequency).collect();
        f.sort_by(|a, b| a.partial_cmp(b).unwrap());
        f
    }

    #[test]
    fn single_noiseless_tone_is_exact() {
        let w = 1.234;
        let sig = tones(64, &[(1.0, w)]);
        let est = RootMusic::new(1).estimate_from_signal(&sig, 6).unwrap();
        assert_eq!(est.len(), 1);
        // Noiseless data puts conjugate-reciprocal root pairs exactly on the
        // unit circle (double roots), where iterative root finders are
        // limited to ~sqrt(machine-eps) accuracy.
        assert!((est[0].frequency - w).abs() < 1e-6, "{}", est[0].frequency);
        assert!((est[0].root_magnitude - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_noiseless_tones_exact() {
        let (w1, w2) = (0.5, 1.4);
        let sig = tones(128, &[(1.0, w1), (0.8, w2)]);
        let est = RootMusic::new(2).estimate_from_signal(&sig, 8).unwrap();
        let f = sorted_freqs(&est);
        assert!((f[0] - w1).abs() < 1e-6);
        assert!((f[1] - w2).abs() < 1e-6);
    }

    #[test]
    fn three_tones_recovered() {
        let sig = tones(256, &[(1.0, 0.4), (0.9, 1.2), (0.7, 2.5)]);
        let est = RootMusic::new(3).estimate_from_signal(&sig, 10).unwrap();
        let f = sorted_freqs(&est);
        assert!((f[0] - 0.4).abs() < 1e-5);
        assert!((f[1] - 1.2).abs() < 1e-5);
        assert!((f[2] - 2.5).abs() < 1e-5);
    }

    #[test]
    fn noisy_tone_recovered_to_good_accuracy() {
        // Deterministic pseudo-noise (LCG), SNR ≈ 20 dB.
        let w = 0.9;
        let mut state: u64 = 12345;
        let mut noise = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.28
        };
        let sig: Vec<Complex<f64>> = (0..256)
            .map(|t| Complex::from_polar(1.0, w * t as f64) + Complex::new(noise(), noise()))
            .collect();
        let est = RootMusic::new(1).estimate_from_signal(&sig, 8).unwrap();
        assert!(
            (est[0].frequency - w).abs() < 5e-3,
            "estimate {}",
            est[0].frequency
        );
    }

    #[test]
    fn close_tones_separated_beyond_fft_resolution() {
        // Δω = 0.04 rad/sample over 128 samples is below the FFT's natural
        // resolution (2π/128 ≈ 0.049) — the subspace method still splits them.
        let (w1, w2) = (1.00, 1.04);
        let sig = tones(128, &[(1.0, w1), (1.0, w2)]);
        let est = RootMusic::new(2).estimate_from_signal(&sig, 16).unwrap();
        let f = sorted_freqs(&est);
        assert!((f[0] - w1).abs() < 5e-3, "{f:?}");
        assert!((f[1] - w2).abs() < 5e-3, "{f:?}");
    }

    #[test]
    fn agrees_with_music_grid_search() {
        let sig = tones(200, &[(1.0, 0.7), (0.6, 2.1)]);
        let cov = SampleCovariance::builder(8).build(&sig).unwrap();
        let rm = RootMusic::new(2).estimate(&cov).unwrap();
        let music = crate::music::MusicSpectrum::compute(&cov, 2, 8192).unwrap();
        let mut grid_peaks = music.peaks();
        grid_peaks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rm_freqs = sorted_freqs(&rm);
        let resolution = 2.0 * std::f64::consts::PI / 8192.0;
        for (a, b) in rm_freqs.iter().zip(&grid_peaks) {
            assert!((a - b).abs() < 2.0 * resolution, "{a} vs {b}");
        }
    }

    #[test]
    fn signal_count_must_fit_window() {
        let sig = tones(64, &[(1.0, 0.5)]);
        let cov = SampleCovariance::builder(4).build(&sig).unwrap();
        assert!(matches!(
            RootMusic::new(4).estimate(&cov),
            Err(DspError::BadParameter { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_signals_panics() {
        let _ = RootMusic::new(0);
    }

    #[test]
    fn accessor_returns_count() {
        assert_eq!(RootMusic::new(3).signal_count(), 3);
    }

    #[test]
    fn scratch_path_matches_allocating_path_bit_exactly() {
        let sig = tones(128, &[(1.0, 0.5), (0.8, 1.4)]);
        let cov = SampleCovariance::builder(8).build(&sig).unwrap();
        let rm = RootMusic::new(2);
        let direct = rm.estimate(&cov).unwrap();
        let mut scratch = KernelScratch::new(ScratchOptions::bit_exact());
        let mut out = Vec::new();
        // Twice on the same dirty scratch: reuse must be pure.
        rm.estimate_into(&cov, &mut scratch, &mut out).unwrap();
        assert_eq!(out, direct);
        rm.estimate_into(&cov, &mut scratch, &mut out).unwrap();
        assert_eq!(out, direct);
    }

    #[test]
    fn warm_scratch_agrees_with_cold_across_frames() {
        // Simulate consecutive frames: same tones, tiny amplitude drift.
        let rm = RootMusic::new(2);
        let mut warm = KernelScratch::new(ScratchOptions::fast());
        let mut warm_out = Vec::new();
        for frame in 0..5 {
            let drift = 1.0 + 1e-4 * frame as f64;
            let sig = tones(128, &[(drift, 0.5), (0.8, 1.4)]);
            let cov = SampleCovariance::builder(8).build(&sig).unwrap();
            let cold = rm.estimate(&cov).unwrap();
            rm.estimate_into(&cov, &mut warm, &mut warm_out).unwrap();
            assert_eq!(warm_out.len(), cold.len());
            // Compare as sorted frequency sets: the closest-to-circle
            // ranking can swap two near-circle roots between paths. The
            // tolerance reflects the √eps sensitivity of the (noiseless)
            // double roots on the unit circle, not the warm-start error.
            for (w, c) in sorted_freqs(&warm_out).iter().zip(&sorted_freqs(&cold)) {
                assert!((w - c).abs() < 1e-6, "frame {frame}: {w} vs {c}");
            }
        }
    }
}
