//! MUSIC pseudospectrum estimation.
//!
//! MUSIC (MUltiple SIgnal Classification) evaluates
//! `P(ω) = 1 / ‖Eₙᴴ a(ω)‖²` over a frequency grid, where `Eₙ` is the noise
//! subspace of the covariance and `a(ω)` the Vandermonde steering vector.
//! Argus uses it both as an alternative extractor and as a cross-check of the
//! root-MUSIC implementation (their estimates must agree to grid resolution).

use nalgebra::{Complex, DVector};

use crate::covariance::SampleCovariance;
use crate::scratch::{KernelScratch, ScratchOptions};
use crate::DspError;

/// The MUSIC pseudospectrum over `[0, 2π)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MusicSpectrum {
    frequencies: Vec<f64>,
    pseudospectrum: Vec<f64>,
    signal_count: usize,
}

impl MusicSpectrum {
    /// Computes the pseudospectrum on a uniform grid of `grid_points`
    /// frequencies for `signal_count` assumed tones. Thin allocating wrapper
    /// around [`MusicSpectrum::compute_into`].
    ///
    /// # Errors
    ///
    /// * [`DspError::BadParameter`] — `signal_count` is 0 or ≥ the window,
    ///   or `grid_points < 8`.
    /// * Errors from the eigendecomposition are propagated.
    pub fn compute(
        cov: &SampleCovariance,
        signal_count: usize,
        grid_points: usize,
    ) -> Result<Self, DspError> {
        let mut scratch = KernelScratch::new(ScratchOptions::bit_exact());
        let mut out = Self {
            frequencies: Vec::new(),
            pseudospectrum: Vec::new(),
            signal_count,
        };
        Self::compute_into(cov, signal_count, grid_points, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Computes the pseudospectrum into a caller-owned spectrum, reusing the
    /// eigensolver workspace and steering buffer from `scratch`.
    ///
    /// # Errors
    ///
    /// Same as [`MusicSpectrum::compute`].
    pub fn compute_into(
        cov: &SampleCovariance,
        signal_count: usize,
        grid_points: usize,
        scratch: &mut KernelScratch,
        out: &mut Self,
    ) -> Result<(), DspError> {
        if signal_count == 0 {
            return Err(DspError::BadParameter {
                name: "signal_count",
                message: "must assume at least one signal".to_string(),
            });
        }
        if grid_points < 8 {
            return Err(DspError::BadParameter {
                name: "grid_points",
                message: format!("grid too coarse: {grid_points} < 8"),
            });
        }
        let m = cov.window();
        if signal_count >= m {
            return Err(DspError::BadParameter {
                name: "signal_count",
                message: format!("must be < matrix dimension {m}, got {signal_count}"),
            });
        }
        scratch
            .eigen
            .decompose(cov.matrix(), 1e-8, scratch.options.warm_eigen)?;
        let ev = scratch.eigen.eigenvectors();

        out.frequencies.clear();
        out.pseudospectrum.clear();
        out.frequencies.reserve(grid_points);
        out.pseudospectrum.reserve(grid_points);
        out.signal_count = signal_count;
        for g in 0..grid_points {
            let omega = 2.0 * std::f64::consts::PI * g as f64 / grid_points as f64;
            scratch.steering.clear();
            scratch
                .steering
                .extend((0..m).map(|i| Complex::from_polar(1.0, omega * i as f64)));
            // ‖Eₙᴴ a(ω)‖² accumulated column by column, no subspace copy.
            let mut denom = 0.0;
            for k in signal_count..m {
                let mut acc = Complex::new(0.0, 0.0);
                for (i, &a_i) in scratch.steering.iter().enumerate() {
                    acc += ev[(i, k)].conj() * a_i;
                }
                denom += acc.norm_sqr();
            }
            out.frequencies.push(omega);
            out.pseudospectrum.push(1.0 / denom.max(f64::MIN_POSITIVE));
        }
        Ok(())
    }

    /// Grid frequencies (rad/sample).
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Pseudospectrum values aligned with [`MusicSpectrum::frequencies`].
    pub fn pseudospectrum(&self) -> &[f64] {
        &self.pseudospectrum
    }

    /// The `signal_count` largest local maxima of the pseudospectrum,
    /// strongest first.
    pub fn peaks(&self) -> Vec<f64> {
        let n = self.pseudospectrum.len();
        let mut candidates: Vec<usize> = (0..n)
            .filter(|&k| {
                let prev = self.pseudospectrum[(k + n - 1) % n];
                let next = self.pseudospectrum[(k + 1) % n];
                self.pseudospectrum[k] > prev && self.pseudospectrum[k] >= next
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            self.pseudospectrum[b]
                .partial_cmp(&self.pseudospectrum[a])
                .unwrap()
        });
        candidates
            .into_iter()
            .take(self.signal_count)
            .map(|k| self.frequencies[k])
            .collect()
    }
}

/// The Vandermonde steering vector `a(ω) = [1, e^{jω}, …, e^{j(M−1)ω}]ᵀ`.
pub fn steering_vector(m: usize, omega: f64) -> DVector<Complex<f64>> {
    DVector::from_fn(m, |i, _| Complex::from_polar(1.0, omega * i as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tone_signal(n: usize, w1: f64, w2: f64) -> Vec<Complex<f64>> {
        (0..n)
            .map(|t| {
                Complex::from_polar(1.0, w1 * t as f64)
                    + Complex::from_polar(0.8, w2 * t as f64 + 0.4)
            })
            .collect()
    }

    #[test]
    fn peaks_at_tone_frequencies() {
        let (w1, w2) = (0.6, 1.8);
        let sig = two_tone_signal(256, w1, w2);
        let cov = SampleCovariance::builder(8).build(&sig).unwrap();
        let music = MusicSpectrum::compute(&cov, 2, 4096).unwrap();
        let mut peaks = music.peaks();
        peaks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(peaks.len(), 2);
        let grid = 2.0 * std::f64::consts::PI / 4096.0;
        assert!((peaks[0] - w1).abs() < 2.0 * grid, "peak {}", peaks[0]);
        assert!((peaks[1] - w2).abs() < 2.0 * grid, "peak {}", peaks[1]);
    }

    #[test]
    fn pseudospectrum_is_positive() {
        let sig = two_tone_signal(128, 0.6, 1.8);
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        let music = MusicSpectrum::compute(&cov, 2, 512).unwrap();
        assert!(music.pseudospectrum().iter().all(|&p| p > 0.0));
        assert_eq!(music.frequencies().len(), 512);
    }

    #[test]
    fn steering_vector_structure() {
        let a = steering_vector(4, 0.5);
        assert_eq!(a.len(), 4);
        assert!((a[0] - Complex::new(1.0, 0.0)).norm() < 1e-15);
        assert!((a[2] - Complex::from_polar(1.0, 1.0)).norm() < 1e-15);
    }

    #[test]
    fn projector_is_idempotent() {
        let sig = two_tone_signal(128, 0.6, 1.8);
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        let eigen = crate::eigen::HermitianEigen::new(cov.matrix(), 1e-8).unwrap();
        let en = eigen.noise_subspace(2).unwrap();
        let c = &en * en.adjoint();
        let c2 = &c * &c;
        assert!((&c2 - &c).norm() < 1e-9, "projector not idempotent");
    }

    #[test]
    fn compute_into_matches_compute() {
        let sig = two_tone_signal(128, 0.6, 1.8);
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        let direct = MusicSpectrum::compute(&cov, 2, 512).unwrap();
        let mut scratch = KernelScratch::new(ScratchOptions::bit_exact());
        let mut out = MusicSpectrum::compute(&cov, 1, 64).unwrap(); // dirty
        MusicSpectrum::compute_into(&cov, 2, 512, &mut scratch, &mut out).unwrap();
        assert_eq!(out, direct);
        // Reuse again on the now-dirty scratch.
        MusicSpectrum::compute_into(&cov, 2, 512, &mut scratch, &mut out).unwrap();
        assert_eq!(out, direct);
    }

    #[test]
    fn zero_signal_count_rejected() {
        let sig = two_tone_signal(64, 0.6, 1.8);
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        assert!(matches!(
            MusicSpectrum::compute(&cov, 0, 512),
            Err(DspError::BadParameter { .. })
        ));
    }

    #[test]
    fn coarse_grid_rejected() {
        let sig = two_tone_signal(64, 0.6, 1.8);
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        assert!(matches!(
            MusicSpectrum::compute(&cov, 2, 4),
            Err(DspError::BadParameter { .. })
        ));
    }

    #[test]
    fn signal_count_must_leave_noise_space() {
        let sig = two_tone_signal(64, 0.6, 1.8);
        let cov = SampleCovariance::builder(4).build(&sig).unwrap();
        assert!(MusicSpectrum::compute(&cov, 4, 512).is_err());
    }
}
