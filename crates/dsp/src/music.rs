//! MUSIC pseudospectrum estimation.
//!
//! MUSIC (MUltiple SIgnal Classification) evaluates
//! `P(ω) = 1 / ‖Eₙᴴ a(ω)‖²` over a frequency grid, where `Eₙ` is the noise
//! subspace of the covariance and `a(ω)` the Vandermonde steering vector.
//! Argus uses it both as an alternative extractor and as a cross-check of the
//! root-MUSIC implementation (their estimates must agree to grid resolution).

use nalgebra::{Complex, DMatrix, DVector};

use crate::covariance::SampleCovariance;
use crate::eigen::HermitianEigen;
use crate::DspError;

/// The MUSIC pseudospectrum over `[0, 2π)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MusicSpectrum {
    frequencies: Vec<f64>,
    pseudospectrum: Vec<f64>,
    signal_count: usize,
}

impl MusicSpectrum {
    /// Computes the pseudospectrum on a uniform grid of `grid_points`
    /// frequencies for `signal_count` assumed tones.
    ///
    /// # Errors
    ///
    /// * [`DspError::BadParameter`] — `signal_count` is 0 or ≥ the window,
    ///   or `grid_points < 8`.
    /// * Errors from the eigendecomposition are propagated.
    pub fn compute(
        cov: &SampleCovariance,
        signal_count: usize,
        grid_points: usize,
    ) -> Result<Self, DspError> {
        if signal_count == 0 {
            return Err(DspError::BadParameter {
                name: "signal_count",
                message: "must assume at least one signal".to_string(),
            });
        }
        if grid_points < 8 {
            return Err(DspError::BadParameter {
                name: "grid_points",
                message: format!("grid too coarse: {grid_points} < 8"),
            });
        }
        let eigen = HermitianEigen::new(cov.matrix(), 1e-8)?;
        let noise = eigen.noise_subspace(signal_count)?;
        let m = cov.window();

        let mut frequencies = Vec::with_capacity(grid_points);
        let mut pseudospectrum = Vec::with_capacity(grid_points);
        for g in 0..grid_points {
            let omega = 2.0 * std::f64::consts::PI * g as f64 / grid_points as f64;
            let a = steering_vector(m, omega);
            let proj = noise.adjoint() * &a;
            let denom = proj.norm_squared().max(f64::MIN_POSITIVE);
            frequencies.push(omega);
            pseudospectrum.push(1.0 / denom);
        }
        Ok(Self {
            frequencies,
            pseudospectrum,
            signal_count,
        })
    }

    /// Grid frequencies (rad/sample).
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Pseudospectrum values aligned with [`MusicSpectrum::frequencies`].
    pub fn pseudospectrum(&self) -> &[f64] {
        &self.pseudospectrum
    }

    /// The `signal_count` largest local maxima of the pseudospectrum,
    /// strongest first.
    pub fn peaks(&self) -> Vec<f64> {
        let n = self.pseudospectrum.len();
        let mut candidates: Vec<usize> = (0..n)
            .filter(|&k| {
                let prev = self.pseudospectrum[(k + n - 1) % n];
                let next = self.pseudospectrum[(k + 1) % n];
                self.pseudospectrum[k] > prev && self.pseudospectrum[k] >= next
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            self.pseudospectrum[b]
                .partial_cmp(&self.pseudospectrum[a])
                .unwrap()
        });
        candidates
            .into_iter()
            .take(self.signal_count)
            .map(|k| self.frequencies[k])
            .collect()
    }
}

/// The Vandermonde steering vector `a(ω) = [1, e^{jω}, …, e^{j(M−1)ω}]ᵀ`.
pub fn steering_vector(m: usize, omega: f64) -> DVector<Complex<f64>> {
    DVector::from_fn(m, |i, _| Complex::from_polar(1.0, omega * i as f64))
}

/// Builds the noise-subspace projector `C = Eₙ Eₙᴴ` used by root-MUSIC.
pub(crate) fn noise_projector(noise: &DMatrix<Complex<f64>>) -> DMatrix<Complex<f64>> {
    noise * noise.adjoint()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tone_signal(n: usize, w1: f64, w2: f64) -> Vec<Complex<f64>> {
        (0..n)
            .map(|t| {
                Complex::from_polar(1.0, w1 * t as f64)
                    + Complex::from_polar(0.8, w2 * t as f64 + 0.4)
            })
            .collect()
    }

    #[test]
    fn peaks_at_tone_frequencies() {
        let (w1, w2) = (0.6, 1.8);
        let sig = two_tone_signal(256, w1, w2);
        let cov = SampleCovariance::builder(8).build(&sig).unwrap();
        let music = MusicSpectrum::compute(&cov, 2, 4096).unwrap();
        let mut peaks = music.peaks();
        peaks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(peaks.len(), 2);
        let grid = 2.0 * std::f64::consts::PI / 4096.0;
        assert!((peaks[0] - w1).abs() < 2.0 * grid, "peak {}", peaks[0]);
        assert!((peaks[1] - w2).abs() < 2.0 * grid, "peak {}", peaks[1]);
    }

    #[test]
    fn pseudospectrum_is_positive() {
        let sig = two_tone_signal(128, 0.6, 1.8);
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        let music = MusicSpectrum::compute(&cov, 2, 512).unwrap();
        assert!(music.pseudospectrum().iter().all(|&p| p > 0.0));
        assert_eq!(music.frequencies().len(), 512);
    }

    #[test]
    fn steering_vector_structure() {
        let a = steering_vector(4, 0.5);
        assert_eq!(a.len(), 4);
        assert!((a[0] - Complex::new(1.0, 0.0)).norm() < 1e-15);
        assert!((a[2] - Complex::from_polar(1.0, 1.0)).norm() < 1e-15);
    }

    #[test]
    fn projector_is_idempotent() {
        let sig = two_tone_signal(128, 0.6, 1.8);
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        let eigen = HermitianEigen::new(cov.matrix(), 1e-8).unwrap();
        let en = eigen.noise_subspace(2).unwrap();
        let c = noise_projector(&en);
        let c2 = &c * &c;
        assert!((&c2 - &c).norm() < 1e-9, "projector not idempotent");
    }

    #[test]
    fn zero_signal_count_rejected() {
        let sig = two_tone_signal(64, 0.6, 1.8);
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        assert!(matches!(
            MusicSpectrum::compute(&cov, 0, 512),
            Err(DspError::BadParameter { .. })
        ));
    }

    #[test]
    fn coarse_grid_rejected() {
        let sig = two_tone_signal(64, 0.6, 1.8);
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        assert!(matches!(
            MusicSpectrum::compute(&cov, 2, 4),
            Err(DspError::BadParameter { .. })
        ));
    }

    #[test]
    fn signal_count_must_leave_noise_space() {
        let sig = two_tone_signal(64, 0.6, 1.8);
        let cov = SampleCovariance::builder(4).build(&sig).unwrap();
        assert!(MusicSpectrum::compute(&cov, 4, 512).is_err());
    }
}
