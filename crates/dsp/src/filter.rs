//! Simple smoothing filters used on measurement streams.

use std::collections::VecDeque;

/// Causal moving-average filter over the last `window` samples.
///
/// ```
/// use argus_dsp::filter::MovingAverage;
/// let mut f = MovingAverage::new(2);
/// assert_eq!(f.push(2.0), 2.0);       // only one sample so far
/// assert_eq!(f.push(4.0), 3.0);       // (2+4)/2
/// assert_eq!(f.push(6.0), 5.0);       // (4+6)/2
/// ```
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl MovingAverage {
    /// Creates a filter averaging over `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            buf: VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }

    /// Pushes a sample and returns the current average.
    pub fn push(&mut self, x: f64) -> f64 {
        self.buf.push_back(x);
        self.sum += x;
        if self.buf.len() > self.window {
            self.sum -= self.buf.pop_front().expect("non-empty buffer");
        }
        self.sum / self.buf.len() as f64
    }

    /// Current average without pushing (`None` before any sample).
    pub fn current(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum / self.buf.len() as f64)
        }
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
    }
}

/// Single-pole IIR low-pass: `y[k] = α·x[k] + (1−α)·y[k−1]`.
#[derive(Debug, Clone, Copy)]
pub struct SinglePoleIir {
    alpha: f64,
    state: Option<f64>,
}

impl SinglePoleIir {
    /// Creates the filter with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Self { alpha, state: None }
    }

    /// Creates a filter whose time constant is `tau` seconds at sample
    /// period `dt` seconds (`α = dt / (τ + dt)`).
    ///
    /// # Panics
    ///
    /// Panics if `tau < 0` or `dt <= 0`.
    pub fn from_time_constant(tau: f64, dt: f64) -> Self {
        assert!(tau >= 0.0, "time constant must be non-negative");
        assert!(dt > 0.0, "sample period must be positive");
        Self::new(dt / (tau + dt))
    }

    /// Pushes a sample and returns the filtered output. The first sample
    /// initializes the state directly.
    pub fn push(&mut self, x: f64) -> f64 {
        let y = match self.state {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.state = Some(y);
        y
    }

    /// Last output, if any.
    pub fn current(&self) -> Option<f64> {
        self.state
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_steady_state() {
        let mut f = MovingAverage::new(4);
        for _ in 0..10 {
            f.push(3.0);
        }
        assert_eq!(f.current(), Some(3.0));
    }

    #[test]
    fn moving_average_window_drops_old() {
        let mut f = MovingAverage::new(2);
        f.push(100.0);
        f.push(0.0);
        let avg = f.push(0.0);
        assert_eq!(avg, 0.0, "the 100 should have fallen out of the window");
    }

    #[test]
    fn moving_average_reset() {
        let mut f = MovingAverage::new(3);
        f.push(5.0);
        f.reset();
        assert_eq!(f.current(), None);
    }

    #[test]
    fn iir_first_sample_passthrough() {
        let mut f = SinglePoleIir::new(0.1);
        assert_eq!(f.push(7.0), 7.0);
    }

    #[test]
    fn iir_converges_to_constant_input() {
        let mut f = SinglePoleIir::new(0.3);
        f.push(0.0);
        let mut y = 0.0;
        for _ in 0..100 {
            y = f.push(10.0);
        }
        assert!((y - 10.0).abs() < 1e-9);
    }

    #[test]
    fn iir_alpha_one_is_identity() {
        let mut f = SinglePoleIir::new(1.0);
        f.push(3.0);
        assert_eq!(f.push(-8.0), -8.0);
    }

    #[test]
    fn iir_from_time_constant() {
        let f = SinglePoleIir::from_time_constant(1.008, 1.0);
        // α = 1 / (1.008 + 1)
        let mut f2 = f;
        f2.push(0.0);
        let y = f2.push(1.0);
        assert!((y - 1.0 / 2.008).abs() < 1e-12);
    }

    #[test]
    fn iir_reset_clears_state() {
        let mut f = SinglePoleIir::new(0.5);
        f.push(4.0);
        f.reset();
        assert_eq!(f.current(), None);
        assert_eq!(f.push(9.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn iir_rejects_zero_alpha() {
        let _ = SinglePoleIir::new(0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn moving_average_rejects_zero_window() {
        let _ = MovingAverage::new(0);
    }
}
