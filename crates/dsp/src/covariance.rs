//! Sample covariance estimation for subspace methods.
//!
//! MUSIC and root-MUSIC operate on the `M×M` covariance of length-`M`
//! sliding-window snapshots of the receiver output. Forward–backward
//! averaging (exploiting the persymmetry of the true covariance of complex
//! exponentials in noise) halves the variance of the estimate and is on by
//! default, as in MATLAB's `rootmusic`.

use nalgebra::{Complex, DMatrix, DVector};

use crate::DspError;

/// Sample covariance matrix of sliding-window snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleCovariance {
    matrix: DMatrix<Complex<f64>>,
    snapshots: usize,
}

/// Builder for [`SampleCovariance`] (window size, forward–backward option).
#[derive(Debug, Clone)]
pub struct SampleCovarianceBuilder {
    window: usize,
    forward_backward: bool,
}

impl SampleCovariance {
    /// Starts building a covariance with snapshot window length `window`
    /// (the `M` of the subspace method). Forward–backward averaging is
    /// enabled by default.
    pub fn builder(window: usize) -> SampleCovarianceBuilder {
        SampleCovarianceBuilder {
            window,
            forward_backward: true,
        }
    }

    /// Wraps an existing covariance matrix (e.g. a theoretical one in tests).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadLength`] if `matrix` is not square or is empty.
    pub fn from_matrix(matrix: DMatrix<Complex<f64>>) -> Result<Self, DspError> {
        if matrix.nrows() == 0 || matrix.nrows() != matrix.ncols() {
            return Err(DspError::BadLength {
                expected: "non-empty square matrix".to_string(),
                actual: matrix.ncols().max(matrix.nrows()),
            });
        }
        Ok(Self {
            snapshots: 0,
            matrix,
        })
    }

    /// The covariance matrix.
    pub fn matrix(&self) -> &DMatrix<Complex<f64>> {
        &self.matrix
    }

    /// Window length `M` (matrix dimension).
    pub fn window(&self) -> usize {
        self.matrix.nrows()
    }

    /// Number of snapshots averaged (0 when wrapped from an explicit matrix).
    pub fn snapshots(&self) -> usize {
        self.snapshots
    }
}

impl SampleCovarianceBuilder {
    /// Enables or disables forward–backward averaging.
    pub fn forward_backward(mut self, enabled: bool) -> Self {
        self.forward_backward = enabled;
        self
    }

    /// Estimates the covariance from a signal.
    ///
    /// # Errors
    ///
    /// * [`DspError::BadParameter`] — window length < 2.
    /// * [`DspError::BadLength`] — signal shorter than the window.
    pub fn build(&self, signal: &[Complex<f64>]) -> Result<SampleCovariance, DspError> {
        let m = self.window;
        if m < 2 {
            return Err(DspError::BadParameter {
                name: "window",
                message: format!("window must be at least 2, got {m}"),
            });
        }
        if signal.len() < m {
            return Err(DspError::BadLength {
                expected: format!("at least {m} samples"),
                actual: signal.len(),
            });
        }
        let n_snap = signal.len() - m + 1;
        let mut r = DMatrix::<Complex<f64>>::zeros(m, m);
        for s in 0..n_snap {
            let x = DVector::from_iterator(m, signal[s..s + m].iter().copied());
            // r += x xᴴ (only upper triangle, mirrored below).
            for i in 0..m {
                for j in i..m {
                    r[(i, j)] += x[i] * x[j].conj();
                }
            }
        }
        let scale = Complex::new(1.0 / n_snap as f64, 0.0);
        for i in 0..m {
            for j in i..m {
                r[(i, j)] *= scale;
                if i != j {
                    r[(j, i)] = r[(i, j)].conj();
                }
            }
        }

        if self.forward_backward {
            // R ← (R + J·conj(R)·J)/2 with J the exchange matrix.
            let mut fb = DMatrix::<Complex<f64>>::zeros(m, m);
            for i in 0..m {
                for j in 0..m {
                    fb[(i, j)] =
                        (r[(i, j)] + r[(m - 1 - i, m - 1 - j)].conj()) * Complex::new(0.5, 0.0);
                }
            }
            r = fb;
        }

        Ok(SampleCovariance {
            matrix: r,
            snapshots: n_snap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, omega: f64, amp: f64) -> Vec<Complex<f64>> {
        (0..n)
            .map(|t| Complex::from_polar(amp, omega * t as f64))
            .collect()
    }

    #[test]
    fn covariance_is_hermitian() {
        let sig = tone(64, 0.9, 1.0);
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        let r = cov.matrix();
        for i in 0..6 {
            for j in 0..6 {
                assert!((r[(i, j)] - r[(j, i)].conj()).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn diagonal_equals_signal_power() {
        let amp = 2.0;
        let sig = tone(256, 1.1, amp);
        let cov = SampleCovariance::builder(4)
            .forward_backward(false)
            .build(&sig)
            .unwrap();
        for i in 0..4 {
            assert!((cov.matrix()[(i, i)].re - amp * amp).abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_covariance_structure() {
        // For x[t] = e^{jωt}: R[i][j] = e^{jω(i-j)}.
        let omega = 0.7;
        let sig = tone(512, omega, 1.0);
        let cov = SampleCovariance::builder(5)
            .forward_backward(false)
            .build(&sig)
            .unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let expected = Complex::from_polar(1.0, omega * (i as f64 - j as f64));
                assert!((cov.matrix()[(i, j)] - expected).norm() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn forward_backward_preserves_hermitian_and_persymmetry() {
        let sig: Vec<Complex<f64>> = (0..128)
            .map(|t| {
                Complex::from_polar(1.0, 0.5 * t as f64)
                    + Complex::from_polar(0.4, 1.9 * t as f64 + 0.3)
            })
            .collect();
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        let r = cov.matrix();
        let m = 6;
        for i in 0..m {
            for j in 0..m {
                assert!((r[(i, j)] - r[(j, i)].conj()).norm() < 1e-12, "hermitian");
                // Persymmetry: R = J conj(R) J, i.e. R[i][j] = conj(R[M-1-i][M-1-j]).
                assert!(
                    (r[(i, j)] - r[(m - 1 - i, m - 1 - j)].conj()).norm() < 1e-12,
                    "persymmetric"
                );
            }
        }
    }

    #[test]
    fn snapshot_count() {
        let sig = tone(64, 0.9, 1.0);
        let cov = SampleCovariance::builder(8).build(&sig).unwrap();
        assert_eq!(cov.snapshots(), 64 - 8 + 1);
        assert_eq!(cov.window(), 8);
    }

    #[test]
    fn rejects_short_signal() {
        let sig = tone(4, 0.9, 1.0);
        assert!(matches!(
            SampleCovariance::builder(8).build(&sig),
            Err(DspError::BadLength { .. })
        ));
    }

    #[test]
    fn rejects_tiny_window() {
        let sig = tone(16, 0.9, 1.0);
        assert!(matches!(
            SampleCovariance::builder(1).build(&sig),
            Err(DspError::BadParameter { .. })
        ));
    }

    #[test]
    fn from_matrix_validates_shape() {
        assert!(SampleCovariance::from_matrix(DMatrix::zeros(0, 0)).is_err());
        assert!(SampleCovariance::from_matrix(DMatrix::zeros(2, 3)).is_err());
        let ok = SampleCovariance::from_matrix(DMatrix::identity(3, 3));
        assert_eq!(ok.unwrap().window(), 3);
    }
}
