//! Sample covariance estimation for subspace methods.
//!
//! MUSIC and root-MUSIC operate on the `M×M` covariance of length-`M`
//! sliding-window snapshots of the receiver output. Forward–backward
//! averaging (exploiting the persymmetry of the true covariance of complex
//! exponentials in noise) halves the variance of the estimate and is on by
//! default, as in MATLAB's `rootmusic`.
//!
//! # Fast path
//!
//! [`SampleCovarianceBuilder::build_into`] writes into a caller-owned
//! [`SampleCovariance`], so per-frame estimation allocates nothing; the
//! allocating [`SampleCovarianceBuilder::build`] is a thin wrapper around it.
//! Both exploit Hermitian symmetry (only the upper triangle is accumulated,
//! the lower is mirrored) and the forward–backward average is applied in
//! place, pair by persymmetric pair — bit-identical to averaging into a
//! separate matrix because IEEE addition commutes.
//!
//! The opt-in [`SampleCovarianceBuilder::incremental`] mode replaces the
//! `O(M²·S)` direct accumulation with an `O(M·S + M²)` sliding update along
//! each diagonal: consecutive entries of the `l`-th diagonal share all but
//! two of their `S` products, so `r[i][i+l]` is obtained from `r[i-1][i-1+l]`
//! by adding one product and subtracting another. The different summation
//! order changes rounding at the 1e-15 level, so the mode is off by default.

use nalgebra::{Complex, DMatrix};

use crate::simd::{lanes_enabled, C64x4, LANES};
use crate::DspError;

/// Sample covariance matrix of sliding-window snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleCovariance {
    matrix: DMatrix<Complex<f64>>,
    snapshots: usize,
}

/// Builder for [`SampleCovariance`] (window size, forward–backward option,
/// incremental accumulation).
#[derive(Debug, Clone)]
pub struct SampleCovarianceBuilder {
    window: usize,
    forward_backward: bool,
    incremental: bool,
    simd: bool,
}

impl SampleCovariance {
    /// Starts building a covariance with snapshot window length `window`
    /// (the `M` of the subspace method). Forward–backward averaging is
    /// enabled by default.
    pub fn builder(window: usize) -> SampleCovarianceBuilder {
        SampleCovarianceBuilder {
            window,
            forward_backward: true,
            incremental: false,
            simd: false,
        }
    }

    /// An all-zero covariance placeholder, e.g. as the initial value of a
    /// scratch arena that [`SampleCovarianceBuilder::build_into`] will fill.
    pub fn zeros(window: usize) -> Self {
        Self {
            matrix: DMatrix::zeros(window, window),
            snapshots: 0,
        }
    }

    /// Wraps an existing covariance matrix (e.g. a theoretical one in tests).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadLength`] if `matrix` is not square or is empty.
    pub fn from_matrix(matrix: DMatrix<Complex<f64>>) -> Result<Self, DspError> {
        if matrix.nrows() == 0 || matrix.nrows() != matrix.ncols() {
            return Err(DspError::BadLength {
                expected: "non-empty square matrix".to_string(),
                actual: matrix.ncols().max(matrix.nrows()),
            });
        }
        Ok(Self {
            snapshots: 0,
            matrix,
        })
    }

    /// The covariance matrix.
    pub fn matrix(&self) -> &DMatrix<Complex<f64>> {
        &self.matrix
    }

    /// Window length `M` (matrix dimension).
    pub fn window(&self) -> usize {
        self.matrix.nrows()
    }

    /// Number of snapshots averaged (0 when wrapped from an explicit matrix).
    pub fn snapshots(&self) -> usize {
        self.snapshots
    }
}

impl SampleCovarianceBuilder {
    /// Enables or disables forward–backward averaging.
    pub fn forward_backward(mut self, enabled: bool) -> Self {
        self.forward_backward = enabled;
        self
    }

    /// Enables or disables the incremental sliding-window accumulation
    /// (`O(M·S)` instead of `O(M²·S)`; rounding differs at ~1e-15).
    pub fn incremental(mut self, enabled: bool) -> Self {
        self.incremental = enabled;
        self
    }

    /// Enables or disables the vectorized lag accumulation.
    ///
    /// Only affects the incremental path: the initial full sums of four
    /// consecutive diagonals share their snapshot range, so they advance in
    /// lock-step through [`C64x4`] lanes. Each lane performs the scalar
    /// diagonal's operations in the scalar order, so the result is
    /// bit-identical to the scalar incremental path; the flag is purely a
    /// dispatch choice and is additionally gated on the `simd` cargo
    /// feature.
    pub fn simd(mut self, enabled: bool) -> Self {
        self.simd = enabled;
        self
    }

    /// Estimates the covariance from a signal (allocating wrapper around
    /// [`SampleCovarianceBuilder::build_into`]).
    ///
    /// # Errors
    ///
    /// * [`DspError::BadParameter`] — window length < 2.
    /// * [`DspError::BadLength`] — signal shorter than the window.
    pub fn build(&self, signal: &[Complex<f64>]) -> Result<SampleCovariance, DspError> {
        let mut out = SampleCovariance::zeros(self.window);
        self.build_into(signal, &mut out)?;
        Ok(out)
    }

    /// Estimates the covariance, writing into a caller-owned
    /// [`SampleCovariance`] (resized if needed) without allocating.
    ///
    /// # Errors
    ///
    /// Same as [`SampleCovarianceBuilder::build`].
    pub fn build_into(
        &self,
        signal: &[Complex<f64>],
        out: &mut SampleCovariance,
    ) -> Result<(), DspError> {
        let m = self.window;
        if m < 2 {
            return Err(DspError::BadParameter {
                name: "window",
                message: format!("window must be at least 2, got {m}"),
            });
        }
        if signal.len() < m {
            return Err(DspError::BadLength {
                expected: format!("at least {m} samples"),
                actual: signal.len(),
            });
        }
        let n_snap = signal.len() - m + 1;
        if out.matrix.nrows() != m || out.matrix.ncols() != m {
            out.matrix.resize_mut(m, m, Complex::new(0.0, 0.0));
        }
        let r = &mut out.matrix;

        if self.incremental {
            // Per-diagonal sliding update. The first entry of diagonal `l`
            // is the full S-term sum; each subsequent entry drops the
            // oldest product and adds the newest.
            let mut l = 0;
            if self.simd && lanes_enabled() {
                // The initial sums of diagonals l..l+4 run over the same
                // snapshot range, so four of them ride one lane register:
                // lane k accumulates Σₛ x[s]·x̄[s+l+k] with the scalar
                // operation order, hence bit-identical per diagonal.
                while l + LANES <= m {
                    let mut g = C64x4::zero();
                    for s in 0..n_snap {
                        let x = C64x4::splat(signal[s].re, signal[s].im);
                        let y = C64x4::from_complex(&signal[s + l..s + l + LANES]);
                        g = g + x * y.conj();
                    }
                    for k in 0..LANES {
                        let lag = l + k;
                        let mut gk = Complex::new(g.re.0[k], g.im.0[k]);
                        r[(0, lag)] = gk;
                        for i in 1..(m - lag) {
                            gk += signal[i - 1 + n_snap] * signal[i - 1 + n_snap + lag].conj()
                                - signal[i - 1] * signal[i - 1 + lag].conj();
                            r[(i, i + lag)] = gk;
                        }
                    }
                    l += LANES;
                }
            }
            while l < m {
                let mut g = Complex::new(0.0, 0.0);
                for s in 0..n_snap {
                    g += signal[s] * signal[s + l].conj();
                }
                r[(0, l)] = g;
                for i in 1..(m - l) {
                    g += signal[i - 1 + n_snap] * signal[i - 1 + n_snap + l].conj()
                        - signal[i - 1] * signal[i - 1 + l].conj();
                    r[(i, i + l)] = g;
                }
                l += 1;
            }
            // Entries off the sliding diagonals (i > 0, j < i) are covered
            // by the Hermitian mirror below; nothing else to zero.
        } else {
            r.fill(Complex::new(0.0, 0.0));
            for s in 0..n_snap {
                let x = &signal[s..s + m];
                // r += x xᴴ (only upper triangle, mirrored below).
                for i in 0..m {
                    for j in i..m {
                        r[(i, j)] += x[i] * x[j].conj();
                    }
                }
            }
        }

        let scale = Complex::new(1.0 / n_snap as f64, 0.0);
        for i in 0..m {
            for j in i..m {
                r[(i, j)] *= scale;
                if i != j {
                    r[(j, i)] = r[(i, j)].conj();
                }
            }
        }

        if self.forward_backward {
            // R ← (R + J·conj(R)·J)/2 with J the exchange matrix, applied in
            // place: each entry pairs with its persymmetric partner
            // (i', j') = (M-1-i, M-1-j), and the two averaged values are
            // exact conjugate transposes of each other in IEEE arithmetic,
            // so both can be written from values read before overwriting.
            let half = Complex::new(0.5, 0.0);
            for i in 0..m {
                for j in 0..m {
                    let (pi, pj) = (m - 1 - i, m - 1 - j);
                    if (pi, pj) < (i, j) {
                        continue; // partner already processed this pair
                    }
                    let a = r[(i, j)];
                    let b = r[(pi, pj)];
                    r[(i, j)] = (a + b.conj()) * half;
                    if (pi, pj) != (i, j) {
                        r[(pi, pj)] = (b + a.conj()) * half;
                    }
                }
            }
        }

        out.snapshots = n_snap;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn simd_lag_sums_bit_identical_to_scalar(
            parts in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 32..128),
            fb in proptest::bool::ANY,
        ) {
            let signal: Vec<Complex<f64>> =
                parts.iter().map(|&(re, im)| Complex::new(re, im)).collect();
            let scalar = SampleCovariance::builder(8)
                .incremental(true)
                .forward_backward(fb)
                .build(&signal)
                .unwrap();
            let simd = SampleCovariance::builder(8)
                .incremental(true)
                .forward_backward(fb)
                .simd(true)
                .build(&signal)
                .unwrap();
            for (a, b) in scalar.matrix().iter().zip(simd.matrix().iter()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    fn tone(n: usize, omega: f64, amp: f64) -> Vec<Complex<f64>> {
        (0..n)
            .map(|t| Complex::from_polar(amp, omega * t as f64))
            .collect()
    }

    fn two_tone(n: usize) -> Vec<Complex<f64>> {
        (0..n)
            .map(|t| {
                Complex::from_polar(1.0, 0.5 * t as f64)
                    + Complex::from_polar(0.4, 1.9 * t as f64 + 0.3)
            })
            .collect()
    }

    #[test]
    fn covariance_is_hermitian() {
        let sig = tone(64, 0.9, 1.0);
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        let r = cov.matrix();
        for i in 0..6 {
            for j in 0..6 {
                assert!((r[(i, j)] - r[(j, i)].conj()).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn diagonal_equals_signal_power() {
        let amp = 2.0;
        let sig = tone(256, 1.1, amp);
        let cov = SampleCovariance::builder(4)
            .forward_backward(false)
            .build(&sig)
            .unwrap();
        for i in 0..4 {
            assert!((cov.matrix()[(i, i)].re - amp * amp).abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_covariance_structure() {
        // For x[t] = e^{jωt}: R[i][j] = e^{jω(i-j)}.
        let omega = 0.7;
        let sig = tone(512, omega, 1.0);
        let cov = SampleCovariance::builder(5)
            .forward_backward(false)
            .build(&sig)
            .unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let expected = Complex::from_polar(1.0, omega * (i as f64 - j as f64));
                assert!((cov.matrix()[(i, j)] - expected).norm() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn forward_backward_preserves_hermitian_and_persymmetry() {
        let sig = two_tone(128);
        let cov = SampleCovariance::builder(6).build(&sig).unwrap();
        let r = cov.matrix();
        let m = 6;
        for i in 0..m {
            for j in 0..m {
                assert!((r[(i, j)] - r[(j, i)].conj()).norm() < 1e-12, "hermitian");
                // Persymmetry: R = J conj(R) J, i.e. R[i][j] = conj(R[M-1-i][M-1-j]).
                assert!(
                    (r[(i, j)] - r[(m - 1 - i, m - 1 - j)].conj()).norm() < 1e-12,
                    "persymmetric"
                );
            }
        }
    }

    #[test]
    fn snapshot_count() {
        let sig = tone(64, 0.9, 1.0);
        let cov = SampleCovariance::builder(8).build(&sig).unwrap();
        assert_eq!(cov.snapshots(), 64 - 8 + 1);
        assert_eq!(cov.window(), 8);
    }

    #[test]
    fn rejects_short_signal() {
        let sig = tone(4, 0.9, 1.0);
        assert!(matches!(
            SampleCovariance::builder(8).build(&sig),
            Err(DspError::BadLength { .. })
        ));
    }

    #[test]
    fn rejects_tiny_window() {
        let sig = tone(16, 0.9, 1.0);
        assert!(matches!(
            SampleCovariance::builder(1).build(&sig),
            Err(DspError::BadParameter { .. })
        ));
    }

    #[test]
    fn from_matrix_validates_shape() {
        assert!(SampleCovariance::from_matrix(DMatrix::zeros(0, 0)).is_err());
        assert!(SampleCovariance::from_matrix(DMatrix::zeros(2, 3)).is_err());
        let ok = SampleCovariance::from_matrix(DMatrix::identity(3, 3));
        assert_eq!(ok.unwrap().window(), 3);
    }

    #[test]
    fn build_into_matches_build_bit_exactly() {
        let sig = two_tone(128);
        for fb in [false, true] {
            let builder = SampleCovariance::builder(8).forward_backward(fb);
            let fresh = builder.build(&sig).unwrap();
            // Dirty, wrongly-sized scratch must not influence the result.
            let mut scratch =
                SampleCovariance::from_matrix(DMatrix::from_element(3, 3, Complex::new(7.0, -2.0)))
                    .unwrap();
            builder.build_into(&sig, &mut scratch).unwrap();
            assert_eq!(scratch, fresh, "fb={fb}");
        }
    }

    #[test]
    fn incremental_matches_direct_to_tolerance() {
        let sig = two_tone(128);
        for fb in [false, true] {
            let direct = SampleCovariance::builder(8)
                .forward_backward(fb)
                .build(&sig)
                .unwrap();
            let incr = SampleCovariance::builder(8)
                .forward_backward(fb)
                .incremental(true)
                .build(&sig)
                .unwrap();
            let scale = direct.matrix().norm();
            let err = (direct.matrix() - incr.matrix()).norm();
            assert!(err <= 1e-12 * scale, "fb={fb} err={err:e}");
            assert_eq!(incr.snapshots(), direct.snapshots());
        }
    }

    #[test]
    fn incremental_is_hermitian_and_persymmetric() {
        let sig = two_tone(96);
        let cov = SampleCovariance::builder(7)
            .incremental(true)
            .build(&sig)
            .unwrap();
        let r = cov.matrix();
        let m = 7;
        for i in 0..m {
            for j in 0..m {
                assert!((r[(i, j)] - r[(j, i)].conj()).norm() < 1e-12);
                assert!((r[(i, j)] - r[(m - 1 - i, m - 1 - j)].conj()).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn zeros_placeholder_shape() {
        let z = SampleCovariance::zeros(5);
        assert_eq!(z.window(), 5);
        assert_eq!(z.snapshots(), 0);
        assert!(z.matrix().iter().all(|c| c.norm() == 0.0));
    }
}
