//! Periodogram spectral estimation and FFT-peak frequency extraction.
//!
//! This is the conventional beat-frequency extractor that root-MUSIC is
//! compared against: windowed FFT, magnitude-squared, peak pick with
//! quadratic (parabolic) interpolation between bins.

use nalgebra::Complex;

use crate::fft::{fft, next_power_of_two};
use crate::window::Window;
use crate::DspError;

/// A power spectrum estimate over normalized frequency `[0, 2π)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Periodogram {
    power: Vec<f64>,
    n_fft: usize,
}

impl Periodogram {
    /// Computes a windowed periodogram, zero-padded to at least `min_bins`
    /// FFT points.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `signal` is empty.
    pub fn compute(
        signal: &[Complex<f64>],
        window: Window,
        min_bins: usize,
    ) -> Result<Self, DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let mut buf = signal.to_vec();
        window.apply(&mut buf);
        let n_fft = next_power_of_two(buf.len().max(min_bins));
        buf.resize(n_fft, Complex::new(0.0, 0.0));
        let spectrum = fft(&buf)?;
        let norm = 1.0 / (signal.len() as f64);
        let power = spectrum
            .iter()
            .map(|s| s.norm_sqr() * norm * norm)
            .collect();
        Ok(Self { power, n_fft })
    }

    /// Power at each FFT bin.
    pub fn power(&self) -> &[f64] {
        &self.power
    }

    /// Number of FFT bins.
    pub fn len(&self) -> usize {
        self.n_fft
    }

    /// `true` if there are no bins (never happens for a valid periodogram).
    pub fn is_empty(&self) -> bool {
        self.power.is_empty()
    }

    /// Normalized angular frequency (rad/sample, in `[0, 2π)`) of bin `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn frequency_of_bin(&self, k: usize) -> f64 {
        assert!(k < self.n_fft, "bin {k} out of range");
        2.0 * std::f64::consts::PI * k as f64 / self.n_fft as f64
    }

    /// Indices of the `count` largest local maxima, strongest first.
    ///
    /// A bin is a local maximum when strictly greater than both circular
    /// neighbours. Peaks closer than `min_separation_bins` to an already
    /// selected stronger peak are suppressed.
    pub fn peak_bins(&self, count: usize, min_separation_bins: usize) -> Vec<usize> {
        let n = self.power.len();
        if n < 3 || count == 0 {
            return Vec::new();
        }
        let mut candidates: Vec<usize> = (0..n)
            .filter(|&k| {
                let prev = self.power[(k + n - 1) % n];
                let next = self.power[(k + 1) % n];
                self.power[k] > prev && self.power[k] >= next
            })
            .collect();
        candidates.sort_by(|&a, &b| self.power[b].partial_cmp(&self.power[a]).unwrap());
        let mut chosen: Vec<usize> = Vec::new();
        for k in candidates {
            let far_enough = chosen.iter().all(|&c| {
                let d = k.abs_diff(c);
                d.min(n - d) >= min_separation_bins
            });
            if far_enough {
                chosen.push(k);
                if chosen.len() == count {
                    break;
                }
            }
        }
        chosen
    }

    /// Estimates the `count` strongest tone frequencies (rad/sample) using
    /// peak picking plus quadratic interpolation on log power.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadParameter`] when `count == 0`.
    pub fn estimate_frequencies(
        &self,
        count: usize,
        min_separation_bins: usize,
    ) -> Result<Vec<f64>, DspError> {
        if count == 0 {
            return Err(DspError::BadParameter {
                name: "count",
                message: "must estimate at least one frequency".to_string(),
            });
        }
        let n = self.power.len();
        let bins = self.peak_bins(count, min_separation_bins);
        let mut freqs = Vec::with_capacity(bins.len());
        for k in bins {
            let p_prev = self.power[(k + n - 1) % n].max(f64::MIN_POSITIVE);
            let p_here = self.power[k].max(f64::MIN_POSITIVE);
            let p_next = self.power[(k + 1) % n].max(f64::MIN_POSITIVE);
            // Parabolic interpolation on log-magnitude.
            let (a, b, c) = (p_prev.ln(), p_here.ln(), p_next.ln());
            let denom = a - 2.0 * b + c;
            let delta = if denom.abs() < 1e-300 {
                0.0
            } else {
                0.5 * (a - c) / denom
            };
            let delta = delta.clamp(-0.5, 0.5);
            let freq = 2.0 * std::f64::consts::PI * (k as f64 + delta) / self.n_fft as f64;
            freqs.push(freq.rem_euclid(2.0 * std::f64::consts::PI));
        }
        Ok(freqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, omega: f64, amp: f64) -> Vec<Complex<f64>> {
        (0..n)
            .map(|t| Complex::from_polar(amp, omega * t as f64))
            .collect()
    }

    #[test]
    fn single_tone_peak_matches_frequency() {
        let omega = 0.7;
        let sig = tone(256, omega, 1.0);
        let pg = Periodogram::compute(&sig, Window::Hann, 4096).unwrap();
        let f = pg.estimate_frequencies(1, 4).unwrap();
        assert_eq!(f.len(), 1);
        assert!((f[0] - omega).abs() < 2e-3, "estimate {}", f[0]);
    }

    #[test]
    fn off_bin_tone_interpolated() {
        // Frequency deliberately between FFT bins.
        let n_fft = 1024;
        let omega = 2.0 * std::f64::consts::PI * 100.37 / n_fft as f64;
        let sig = tone(256, omega, 2.0);
        let pg = Periodogram::compute(&sig, Window::Hann, n_fft).unwrap();
        let f = pg.estimate_frequencies(1, 4).unwrap();
        assert!((f[0] - omega).abs() < 3e-3);
    }

    #[test]
    fn two_tones_both_found() {
        let n = 256;
        let (w1, w2) = (0.5, 1.9);
        let sig: Vec<Complex<f64>> = (0..n)
            .map(|t| {
                Complex::from_polar(1.0, w1 * t as f64) + Complex::from_polar(0.7, w2 * t as f64)
            })
            .collect();
        let pg = Periodogram::compute(&sig, Window::Hann, 2048).unwrap();
        let mut f = pg.estimate_frequencies(2, 8).unwrap();
        f.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(f.len(), 2);
        assert!((f[0] - w1).abs() < 5e-3);
        assert!((f[1] - w2).abs() < 5e-3);
    }

    #[test]
    fn strongest_peak_first() {
        let n = 256;
        let sig: Vec<Complex<f64>> = (0..n)
            .map(|t| {
                Complex::from_polar(0.3, 0.5 * t as f64) + Complex::from_polar(2.0, 1.9 * t as f64)
            })
            .collect();
        let pg = Periodogram::compute(&sig, Window::Hann, 2048).unwrap();
        let f = pg.estimate_frequencies(2, 8).unwrap();
        assert!((f[0] - 1.9).abs() < 5e-3, "strongest should come first");
    }

    #[test]
    fn bin_frequency_mapping() {
        let sig = tone(64, 0.3, 1.0);
        let pg = Periodogram::compute(&sig, Window::Rectangular, 64).unwrap();
        assert_eq!(pg.len(), 64);
        assert_eq!(pg.frequency_of_bin(0), 0.0);
        assert!((pg.frequency_of_bin(32) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn empty_signal_rejected() {
        assert_eq!(
            Periodogram::compute(&[], Window::Hann, 64),
            Err(DspError::EmptyInput)
        );
    }

    #[test]
    fn zero_count_rejected() {
        let pg = Periodogram::compute(&tone(64, 0.3, 1.0), Window::Hann, 64).unwrap();
        assert!(matches!(
            pg.estimate_frequencies(0, 1),
            Err(DspError::BadParameter { .. })
        ));
    }

    #[test]
    fn peak_bins_respect_separation() {
        let sig = tone(128, 1.0, 1.0);
        let pg = Periodogram::compute(&sig, Window::Hann, 1024).unwrap();
        let peaks = pg.peak_bins(5, 50);
        for (i, &a) in peaks.iter().enumerate() {
            for &b in &peaks[i + 1..] {
                let d = a.abs_diff(b);
                assert!(d.min(1024 - d) >= 50);
            }
        }
    }
}
