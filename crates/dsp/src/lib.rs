//! # argus-dsp — signal processing for the Argus radar front-end
//!
//! The paper extracts FMCW beat frequencies with the root-MUSIC algorithm
//! (§6.2, via MATLAB's Phased Array System Toolbox). This crate rebuilds that
//! entire path from first principles:
//!
//! * [`fft`] — radix-2 iterative FFT/IFFT with an `O(n²)` DFT reference.
//! * [`fourstep`] — cache-blocked four-step FFT for long transforms
//!   (`n ≥ 2048`), the fast path behind the spectrum estimators.
//! * [`simd`] — portable four-wide `f64`/split-complex lanes shared by the
//!   vectorized kernels.
//! * [`batch`] — structure-of-arrays batch-of-frames engine that solves
//!   four root-MUSIC polynomials per vector pass.
//! * [`window`] — Hann / Hamming / Blackman / rectangular tapers.
//! * [`spectrum`] — periodogram and FFT-peak frequency estimation (the
//!   baseline extractor root-MUSIC is compared against).
//! * [`covariance`] — sliding-window sample covariance with optional
//!   forward–backward averaging.
//! * [`eigen`] — complex Hermitian eigendecomposition (cyclic Jacobi),
//!   implemented from scratch and validated against reconstruction
//!   invariants.
//! * [`polynomial`] — complex polynomials and a Durand–Kerner root finder.
//! * [`music`] — MUSIC pseudospectrum search.
//! * [`rootmusic`] — root-MUSIC frequency estimation (the paper's extractor).
//! * [`filter`] — moving-average and single-pole IIR smoothing.
//!
//! # Example: recover two tones with root-MUSIC
//!
//! ```
//! use argus_dsp::prelude::*;
//! use nalgebra::Complex;
//!
//! // Two complex exponentials at normalized frequencies 0.5 and 1.4 rad/sample.
//! let n = 128;
//! let signal: Vec<Complex<f64>> = (0..n)
//!     .map(|t| {
//!         Complex::from_polar(1.0, 0.5 * t as f64)
//!             + Complex::from_polar(0.8, 1.4 * t as f64)
//!     })
//!     .collect();
//! let cov = SampleCovariance::builder(8).build(&signal).unwrap();
//! let freqs = RootMusic::new(2).estimate(&cov).unwrap();
//! let mut f: Vec<f64> = freqs.iter().map(|e| e.frequency).collect();
//! f.sort_by(|a, b| a.partial_cmp(b).unwrap());
//! assert!((f[0] - 0.5).abs() < 1e-6);
//! assert!((f[1] - 1.4).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod covariance;
pub mod eigen;
pub mod fft;
pub mod filter;
pub mod fourstep;
pub mod music;
pub mod polynomial;
pub mod rootmusic;
pub mod rotator;
pub mod scratch;
pub mod simd;
pub mod spectrum;
pub mod window;

/// The complex sample type every DSP buffer is made of, re-exported so
/// downstream crates that only fill buffers (e.g. the serving gateway's
/// raw-baseband path) need no direct linear-algebra dependency.
pub use nalgebra::Complex;

pub use batch::FrameBatch;
pub use covariance::SampleCovariance;
pub use eigen::{EigenWorkspace, HermitianEigen};
pub use fft::FftPlan;
pub use fourstep::FourStepFft;
pub use music::MusicSpectrum;
pub use polynomial::Polynomial;
pub use rootmusic::{FrequencyEstimate, RootMusic};
pub use rotator::PhaseRotator;
pub use scratch::{FrameScratch, KernelScratch, ScratchOptions};
pub use spectrum::Periodogram;
pub use window::Window;

/// Errors produced by DSP routines.
#[derive(Debug, Clone, PartialEq)]
pub enum DspError {
    /// Input was empty where data is required.
    EmptyInput,
    /// A radix-2 transform was asked to process a buffer whose length is
    /// not a power of two.
    NonPowerOfTwo {
        /// The offending buffer length.
        len: usize,
    },
    /// Input length does not satisfy the routine's requirement.
    BadLength {
        /// What the routine needed.
        expected: String,
        /// What it received.
        actual: usize,
    },
    /// A numeric parameter was out of its valid range.
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint violated.
        message: String,
    },
    /// An iterative routine failed to converge.
    NoConvergence {
        /// Which routine failed.
        routine: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for DspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DspError::EmptyInput => write!(f, "input is empty"),
            DspError::NonPowerOfTwo { len } => {
                write!(f, "buffer length {len} is not a power of two")
            }
            DspError::BadLength { expected, actual } => {
                write!(f, "bad input length {actual}, expected {expected}")
            }
            DspError::BadParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            DspError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} did not converge after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for DspError {}

/// Convenient glob import of the main DSP types.
pub mod prelude {
    pub use crate::batch::FrameBatch;
    pub use crate::covariance::SampleCovariance;
    pub use crate::eigen::{EigenWorkspace, HermitianEigen};
    pub use crate::fft::{fft, ifft, FftPlan};
    pub use crate::fourstep::FourStepFft;
    pub use crate::music::MusicSpectrum;
    pub use crate::polynomial::Polynomial;
    pub use crate::rootmusic::{FrequencyEstimate, RootMusic};
    pub use crate::rotator::PhaseRotator;
    pub use crate::scratch::{FrameScratch, KernelScratch, ScratchOptions};
    pub use crate::spectrum::Periodogram;
    pub use crate::window::Window;
    pub use crate::DspError;
}
