//! Incremental complex-exponential synthesis (phase rotator).
//!
//! Evaluating `A·exp(i(ωt + φ))` sample by sample costs a `sin`/`cos` pair
//! per sample. The rotator replaces that with the recurrence
//!
//! ```text
//! z₀ = A·exp(iφ),    z_{t+1} = z_t · exp(iω)
//! ```
//!
//! — one complex multiply per sample. Rounding makes the recurrence drift
//! away from the direct evaluation; the drift is *bounded* and *certified*:
//!
//! * Each complex multiply is backward-stable with relative error at most
//!   `√5·ε` (Brent–Percival bound for complex multiplication), and the step
//!   constant `exp(iω)` itself carries at most `√2·ε` from `from_polar`.
//! * Errors compound multiplicatively, so after `t` samples the relative
//!   deviation is at most `t·(√5+√2)·ε + O(ε²)` — see
//!   [`PhaseRotator::drift_bound`].
//! * Every [`RENORM_INTERVAL`] samples the rotator rescales its phasor back
//!   to magnitude `A`, pinning the *amplitude* error near machine precision;
//!   only the phase component of the bound keeps accumulating.
//!
//! For the radar's 128-sample sweeps the certified bound is ≈ 1.2e-13
//! relative — four orders of magnitude below the 1e-9 budget the fast path
//! promises — and the recurrence stays inside 1e-9 for sweeps up to about a
//! million samples.

use nalgebra::Complex;

/// Samples between magnitude renormalizations.
///
/// 64 keeps the amortized cost of the renorm (one `sqrt` + two divides)
/// under 2% of the multiply loop while bounding amplitude drift at
/// `64·√5·ε ≈ 3.2e-14` relative.
pub const RENORM_INTERVAL: u32 = 64;

/// Per-sample relative error constant: one complex multiply (`√5·ε`) by a
/// step factor that is itself `√2·ε` from the exact `exp(iω)`.
fn per_sample_eps() -> f64 {
    (5.0_f64.sqrt() + 2.0_f64.sqrt()) * f64::EPSILON
}

/// An incremental generator of `A·exp(i(ωt + φ))` for `t = 0, 1, 2, …`.
///
/// ```
/// use argus_dsp::rotator::PhaseRotator;
/// use nalgebra::Complex;
///
/// let (amp, phase, omega) = (2.0, 0.3, 0.11);
/// let mut rot = PhaseRotator::new(amp, phase, omega);
/// for t in 0..1000u32 {
///     let direct = Complex::from_polar(amp, omega * t as f64 + phase);
///     let err = (rot.next_sample() - direct).norm();
///     assert!(err <= amp * PhaseRotator::drift_bound(t as u64));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRotator {
    phasor: Complex<f64>,
    step: Complex<f64>,
    amp: f64,
    since_renorm: u32,
}

impl PhaseRotator {
    /// Starts a rotator at `A·exp(iφ)` advancing by `ω` radians per sample.
    pub fn new(amp: f64, phase: f64, omega: f64) -> Self {
        Self {
            phasor: Complex::from_polar(amp, phase),
            step: Complex::from_polar(1.0, omega),
            amp,
            since_renorm: 0,
        }
    }

    /// Returns the current sample and advances the recurrence by one step.
    #[inline]
    pub fn next_sample(&mut self) -> Complex<f64> {
        let out = self.phasor;
        self.phasor *= self.step;
        self.since_renorm += 1;
        if self.since_renorm >= RENORM_INTERVAL {
            self.renormalize();
        }
        out
    }

    /// Rescales the phasor magnitude back to the nominal amplitude.
    ///
    /// A pure radial rescale: the phase is untouched, so the certified phase
    /// bound still holds, while the amplitude error resets to one rounding.
    fn renormalize(&mut self) {
        self.since_renorm = 0;
        let norm = self.phasor.norm();
        if norm > 0.0 && self.amp > 0.0 {
            let scale = self.amp / norm;
            self.phasor = Complex::new(self.phasor.re * scale, self.phasor.im * scale);
        }
    }

    /// Certified drift bound after `samples` steps, **relative to the
    /// amplitude**: `|z_t − A·exp(i(ωt+φ))| ≤ A·drift_bound(t)`.
    ///
    /// First-order bound `t·(√5+√2)·ε`; the quadratic term is negligible for
    /// every `t` where the bound itself is meaningful (< 1e-3).
    pub fn drift_bound(samples: u64) -> f64 {
        samples as f64 * per_sample_eps()
    }

    /// Largest sample count for which [`drift_bound`](Self::drift_bound)
    /// stays at or below `tol` (relative to amplitude).
    pub fn samples_within(tol: f64) -> u64 {
        (tol / per_sample_eps()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_rel_err(amp: f64, phase: f64, omega: f64, n: u64) -> f64 {
        let mut rot = PhaseRotator::new(amp, phase, omega);
        let mut worst = 0.0f64;
        for t in 0..n {
            let direct = Complex::from_polar(amp, omega * t as f64 + phase);
            let err = (rot.next_sample() - direct).norm() / amp;
            worst = worst.max(err);
        }
        worst
    }

    #[test]
    fn tracks_direct_evaluation_over_radar_sweep() {
        // The radar's sweep half is 128 samples; certified bound ≈ 1.2e-13.
        let worst = max_rel_err(3.7e-7, 1.234, 0.815, 128);
        assert!(worst <= PhaseRotator::drift_bound(128), "drift {worst:e}");
        assert!(worst < 1e-12, "drift {worst:e}");
    }

    #[test]
    fn certified_bound_holds_over_long_runs() {
        for &omega in &[1e-4, 0.1, 0.815, 2.9, -1.3] {
            let n = 100_000;
            let worst = max_rel_err(2.0, 0.3, omega, n);
            assert!(
                worst <= PhaseRotator::drift_bound(n),
                "omega {omega}: drift {worst:e} exceeds bound {:e}",
                PhaseRotator::drift_bound(n)
            );
        }
    }

    #[test]
    fn stays_within_fast_path_budget() {
        // The fast-path promise: ≤ 1e-9 per-sample drift. 100k samples is
        // ~800 radar sweeps chained end to end.
        let worst = max_rel_err(1.0, 0.0, 0.5, 100_000);
        assert!(worst < 1e-9, "drift {worst:e}");
    }

    #[test]
    fn renormalization_pins_amplitude() {
        let mut rot = PhaseRotator::new(5.0, 0.7, 1.1);
        let mut worst_amp = 0.0f64;
        for _ in 0..50_000 {
            let z = rot.next_sample();
            worst_amp = worst_amp.max((z.norm() - 5.0).abs() / 5.0);
        }
        // Amplitude drift is held near one renorm interval's rounding, far
        // tighter than the phase bound at this sample count.
        assert!(worst_amp < 1e-12, "amplitude drift {worst_amp:e}");
    }

    #[test]
    fn zero_amplitude_is_inert() {
        let mut rot = PhaseRotator::new(0.0, 0.4, 0.5);
        for _ in 0..200 {
            assert_eq!(rot.next_sample(), Complex::new(0.0, 0.0));
        }
    }

    #[test]
    fn samples_within_matches_bound() {
        let n = PhaseRotator::samples_within(1e-9);
        assert!(PhaseRotator::drift_bound(n) <= 1e-9);
        assert!(PhaseRotator::drift_bound(n + 2) > 1e-9);
        // Sanity: the 1e-9 budget covers about a million samples.
        assert!(n > 500_000, "{n}");
    }
}
