//! Window (taper) functions for spectral analysis.

use nalgebra::Complex;

/// A spectral analysis window.
///
/// ```
/// use argus_dsp::window::Window;
/// let coeffs = Window::Hann.coefficients(8);
/// assert_eq!(coeffs.len(), 8);
/// assert!(coeffs[0].abs() < 1e-12); // Hann tapers to zero at the edges
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// No taper (all ones).
    #[default]
    Rectangular,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
}

impl Window {
    /// Window coefficient at sample `i` of an `n`-point window.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `n == 0`.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        assert!(n > 0, "window length must be positive");
        assert!(i < n, "sample index {i} out of range for {n}-point window");
        if n == 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        let tau = 2.0 * std::f64::consts::PI;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (tau * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
        }
    }

    /// All coefficients of an `n`-point window.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }

    /// Applies the window to a complex signal in place.
    pub fn apply(self, signal: &mut [Complex<f64>]) {
        let n = signal.len();
        if n == 0 {
            return;
        }
        for (i, x) in signal.iter_mut().enumerate() {
            *x *= self.coefficient(i, n);
        }
    }

    /// Coherent gain: mean of the coefficients. Used to correct amplitude
    /// estimates taken from windowed spectra.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn coherent_gain(self, n: usize) -> f64 {
        let c = self.coefficients(n);
        c.iter().sum::<f64>() / n as f64
    }
}

impl std::fmt::Display for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Window::Rectangular => "rectangular",
            Window::Hann => "hann",
            Window::Hamming => "hamming",
            Window::Blackman => "blackman",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(16)
            .iter()
            .all(|&c| c == 1.0));
    }

    #[test]
    fn windows_are_symmetric() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(33);
            for i in 0..c.len() {
                assert!(
                    (c[i] - c[c.len() - 1 - i]).abs() < 1e-12,
                    "{w} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn peak_is_at_center() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(65);
            let (imax, _) = c
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            assert_eq!(imax, 32, "{w}");
        }
    }

    #[test]
    fn hann_edges_are_zero() {
        let c = Window::Hann.coefficients(32);
        assert!(c[0].abs() < 1e-12);
        assert!(c[31].abs() < 1e-12);
    }

    #[test]
    fn hamming_edges_are_nonzero() {
        let c = Window::Hamming.coefficients(32);
        assert!((c[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn single_point_window_is_one() {
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            assert_eq!(w.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    fn apply_scales_signal() {
        let mut sig = vec![Complex::new(2.0, 0.0); 8];
        Window::Hann.apply(&mut sig);
        assert!(sig[0].norm() < 1e-12);
        assert!(sig[4].norm() > 1.0);
    }

    #[test]
    fn apply_to_empty_is_noop() {
        let mut sig: Vec<Complex<f64>> = vec![];
        Window::Blackman.apply(&mut sig);
        assert!(sig.is_empty());
    }

    #[test]
    fn coherent_gain_of_rect_is_one() {
        assert!((Window::Rectangular.coherent_gain(64) - 1.0).abs() < 1e-12);
        let hann = Window::Hann.coherent_gain(4096);
        assert!((hann - 0.5).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coefficient_bounds_checked() {
        let _ = Window::Hann.coefficient(8, 8);
    }

    #[test]
    fn display_names() {
        assert_eq!(Window::Hann.to_string(), "hann");
        assert_eq!(Window::default(), Window::Rectangular);
    }
}
