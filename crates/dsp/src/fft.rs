//! Radix-2 fast Fourier transform.
//!
//! Iterative decimation-in-time Cooley–Tukey with bit-reversal permutation.
//! A direct `O(n²)` [`dft`] is kept as the test oracle. The radar receiver
//! uses the FFT both for the periodogram baseline and for validating the
//! root-MUSIC extractor.

use nalgebra::Complex;

use crate::DspError;

/// Returns `true` when `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Smallest power of two `>= n` (minimum 1).
///
/// ```
/// assert_eq!(argus_dsp::fft::next_power_of_two(100), 128);
/// assert_eq!(argus_dsp::fft::next_power_of_two(128), 128);
/// assert_eq!(argus_dsp::fft::next_power_of_two(0), 1);
/// ```
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT.
///
/// # Errors
///
/// Returns [`DspError::BadLength`] if the length is not a power of two and
/// [`DspError::EmptyInput`] for an empty buffer.
pub fn fft_in_place(data: &mut [Complex<f64>]) -> Result<(), DspError> {
    transform(data, false)
}

/// In-place inverse FFT (includes the `1/n` normalization).
///
/// # Errors
///
/// Returns [`DspError::BadLength`] if the length is not a power of two and
/// [`DspError::EmptyInput`] for an empty buffer.
pub fn ifft_in_place(data: &mut [Complex<f64>]) -> Result<(), DspError> {
    transform(data, true)?;
    let scale = 1.0 / data.len() as f64;
    for x in data.iter_mut() {
        *x *= scale;
    }
    Ok(())
}

/// Forward FFT returning a new buffer, zero-padding the input to the next
/// power of two.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty input.
pub fn fft(input: &[Complex<f64>]) -> Result<Vec<Complex<f64>>, DspError> {
    if input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = next_power_of_two(input.len());
    let mut buf = vec![Complex::new(0.0, 0.0); n];
    buf[..input.len()].copy_from_slice(input);
    fft_in_place(&mut buf)?;
    Ok(buf)
}

/// Inverse FFT returning a new buffer.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty input and
/// [`DspError::BadLength`] if the length is not a power of two.
pub fn ifft(input: &[Complex<f64>]) -> Result<Vec<Complex<f64>>, DspError> {
    if input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let mut buf = input.to_vec();
    ifft_in_place(&mut buf)?;
    Ok(buf)
}

/// Direct `O(n²)` DFT; the correctness oracle for [`fft`].
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty input.
pub fn dft(input: &[Complex<f64>]) -> Result<Vec<Complex<f64>>, DspError> {
    if input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = input.len();
    let mut out = vec![Complex::new(0.0, 0.0); n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex::new(0.0, 0.0);
        for (t, &x) in input.iter().enumerate() {
            let angle = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc += x * Complex::from_polar(1.0, angle);
        }
        *out_k = acc;
    }
    Ok(out)
}

fn transform(data: &mut [Complex<f64>], inverse: bool) -> Result<(), DspError> {
    let n = data.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if !is_power_of_two(n) {
        return Err(DspError::BadLength {
            expected: "a power of two".to_string(),
            actual: n,
        });
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Converts a real signal into the complex buffer [`fft`] expects.
pub fn complexify(real: &[f64]) -> Vec<Complex<f64>> {
    real.iter().map(|&x| Complex::new(x, 0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex<f64>, b: Complex<f64>, tol: f64) -> bool {
        (a - b).norm() <= tol
    }

    #[test]
    fn matches_dft_oracle() {
        let input: Vec<Complex<f64>> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let fast = fft(&input).unwrap();
        let slow = dft(&input).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            assert!(close(*a, *b, 1e-9), "{a} vs {b}");
        }
    }

    #[test]
    fn round_trip_recovers_signal() {
        let input: Vec<Complex<f64>> = (0..64)
            .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let spectrum = fft(&input).unwrap();
        let back = ifft(&spectrum).unwrap();
        for (a, b) in input.iter().zip(&back) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut input = vec![Complex::new(0.0, 0.0); 16];
        input[0] = Complex::new(1.0, 0.0);
        let spectrum = fft(&input).unwrap();
        for s in &spectrum {
            assert!(close(*s, Complex::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn pure_tone_lands_in_one_bin() {
        let n = 64;
        let bin = 5;
        let input: Vec<Complex<f64>> = (0..n)
            .map(|t| {
                Complex::from_polar(
                    1.0,
                    2.0 * std::f64::consts::PI * (bin * t) as f64 / n as f64,
                )
            })
            .collect();
        let spectrum = fft(&input).unwrap();
        for (k, s) in spectrum.iter().enumerate() {
            if k == bin {
                assert!((s.norm() - n as f64).abs() < 1e-9);
            } else {
                assert!(s.norm() < 1e-9, "leak at bin {k}: {}", s.norm());
            }
        }
    }

    #[test]
    fn parseval_energy_identity() {
        let input: Vec<Complex<f64>> = (0..128)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.2).cos()))
            .collect();
        let spectrum = fft(&input).unwrap();
        let time_energy: f64 = input.iter().map(|x| x.norm_sqr()).sum();
        let freq_energy: f64 =
            spectrum.iter().map(|x| x.norm_sqr()).sum::<f64>() / input.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    fn zero_padding_applied() {
        let input = vec![Complex::new(1.0, 0.0); 100];
        let spectrum = fft(&input).unwrap();
        assert_eq!(spectrum.len(), 128);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex<f64>> = (0..16).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex<f64>> = (0..16).map(|i| Complex::new(0.0, -(i as f64))).collect();
        let sum: Vec<Complex<f64>> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft(&a).unwrap();
        let fb = fft(&b).unwrap();
        let fsum = fft(&sum).unwrap();
        for ((x, y), z) in fa.iter().zip(&fb).zip(&fsum) {
            assert!(close(x + y, *z, 1e-9));
        }
    }

    #[test]
    fn rejects_empty_input() {
        assert_eq!(fft(&[]), Err(DspError::EmptyInput));
        assert_eq!(dft(&[]), Err(DspError::EmptyInput));
        assert_eq!(ifft(&[]), Err(DspError::EmptyInput));
    }

    #[test]
    fn in_place_rejects_non_power_of_two() {
        let mut buf = vec![Complex::new(0.0, 0.0); 12];
        assert!(matches!(
            fft_in_place(&mut buf),
            Err(DspError::BadLength { .. })
        ));
    }

    #[test]
    fn complexify_maps_reals() {
        let c = complexify(&[1.0, -2.0]);
        assert_eq!(c[0], Complex::new(1.0, 0.0));
        assert_eq!(c[1], Complex::new(-2.0, 0.0));
    }

    #[test]
    fn power_of_two_helpers() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(12));
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(3), 4);
    }
}
