//! Radix-2 fast Fourier transform.
//!
//! Iterative decimation-in-time Cooley–Tukey with bit-reversal permutation.
//! A direct `O(n²)` [`dft`] is kept as the test oracle.
//!
//! # Planned execution
//!
//! The twiddle factors and bit-reversal permutation of a radix-2 FFT depend
//! only on the transform size, yet the naive path recomputes both on every
//! call. [`FftPlan`] precomputes them once per size; [`plan_for`] memoizes
//! plans in a process-wide registry keyed by size, so repeated transforms —
//! the per-frame periodogram of the radar receiver, Monte-Carlo sweeps —
//! pay the trigonometry exactly once. Planned execution is **bit-exact**
//! with the naive path: the twiddle tables are built with the same
//! `w ← w·w_len` recurrence the naive butterflies use, and the butterfly
//! order is unchanged.
//!
//! [`fft_in_place`] and [`ifft_in_place`] route through the registry; the
//! recompute-everything reference implementations remain available as
//! [`fft_in_place_naive`] / [`ifft_in_place_naive`] for equivalence tests
//! and benchmarks.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use nalgebra::Complex;

use crate::DspError;

/// Returns `true` when `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Smallest power of two `>= n` (minimum 1).
///
/// ```
/// assert_eq!(argus_dsp::fft::next_power_of_two(100), 128);
/// assert_eq!(argus_dsp::fft::next_power_of_two(128), 128);
/// assert_eq!(argus_dsp::fft::next_power_of_two(0), 1);
/// ```
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// A precomputed radix-2 FFT plan for one transform size.
///
/// Holds the bit-reversal permutation (as swap pairs) and the per-stage
/// twiddle-factor tables for both transform directions. Executing a plan
/// performs no allocation and no trigonometry.
#[derive(Debug, Clone, PartialEq)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal index pairs `(i, j)` with `i < j`.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles, flattened stage-major: stage `len` contributes
    /// `len/2` factors built with the `w ← w·w_len` recurrence.
    fwd: Vec<Complex<f64>>,
    /// Inverse twiddles (same layout, opposite rotation sign).
    inv: Vec<Complex<f64>>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// * [`DspError::EmptyInput`] — `n == 0`.
    /// * [`DspError::NonPowerOfTwo`] — `n` is not a power of two.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyInput);
        }
        if !is_power_of_two(n) {
            return Err(DspError::NonPowerOfTwo { len: n });
        }
        let bits = n.trailing_zeros();
        let mut swaps = Vec::new();
        if n > 1 {
            for i in 0..n {
                let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
                if i < j {
                    swaps.push((i as u32, j as u32));
                }
            }
        }
        let build = |sign: f64| {
            let mut table = Vec::with_capacity(n.saturating_sub(1));
            let mut len = 2;
            while len <= n {
                // Same recurrence as the naive butterflies, so planned
                // execution reproduces the naive rounding bit-for-bit.
                let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
                let wlen = Complex::from_polar(1.0, ang);
                let mut w = Complex::new(1.0, 0.0);
                for _ in 0..len / 2 {
                    table.push(w);
                    w *= wlen;
                }
                len <<= 1;
            }
            table
        };
        Ok(Self {
            n,
            swaps,
            fwd: build(-1.0),
            inv: build(1.0),
        })
    }

    /// Transform size this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: plans of size zero cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward FFT using the precomputed tables.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadLength`] if `data.len()` differs from the
    /// plan size.
    pub fn forward(&self, data: &mut [Complex<f64>]) -> Result<(), DspError> {
        self.check(data)?;
        self.run(data, &self.fwd);
        Ok(())
    }

    /// In-place inverse FFT (includes the `1/n` normalization).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadLength`] if `data.len()` differs from the
    /// plan size.
    pub fn inverse(&self, data: &mut [Complex<f64>]) -> Result<(), DspError> {
        self.check(data)?;
        self.run(data, &self.inv);
        let scale = 1.0 / self.n as f64;
        for x in data.iter_mut() {
            *x *= scale;
        }
        Ok(())
    }

    fn check(&self, data: &[Complex<f64>]) -> Result<(), DspError> {
        if data.len() != self.n {
            return Err(DspError::BadLength {
                expected: format!("plan size {}", self.n),
                actual: data.len(),
            });
        }
        Ok(())
    }

    fn run(&self, data: &mut [Complex<f64>], table: &[Complex<f64>]) {
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        let n = self.n;
        let mut off = 0;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stage = &table[off..off + half];
            for start in (0..n).step_by(len) {
                for (k, &w) in stage.iter().enumerate() {
                    let u = data[start + k];
                    let v = data[start + k + half] * w;
                    data[start + k] = u + v;
                    data[start + k + half] = u - v;
                }
            }
            off += half;
            len <<= 1;
        }
    }
}

/// Process-wide FFT plan registry, keyed by transform size.
fn registry() -> &'static Mutex<HashMap<usize, Arc<FftPlan>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the cached plan for size `n`, building it on first use.
///
/// # Errors
///
/// Same as [`FftPlan::new`].
pub fn plan_for(n: usize) -> Result<Arc<FftPlan>, DspError> {
    if let Some(plan) = registry()
        .lock()
        .expect("FFT plan registry poisoned")
        .get(&n)
    {
        return Ok(Arc::clone(plan));
    }
    // Build outside the lock: plan construction does real work.
    let plan = Arc::new(FftPlan::new(n)?);
    let mut map = registry().lock().expect("FFT plan registry poisoned");
    Ok(Arc::clone(map.entry(n).or_insert(plan)))
}

/// In-place forward FFT (planned: twiddles and permutation come from the
/// process-wide plan registry).
///
/// # Errors
///
/// Returns [`DspError::NonPowerOfTwo`] if the length is not a power of two
/// and [`DspError::EmptyInput`] for an empty buffer.
pub fn fft_in_place(data: &mut [Complex<f64>]) -> Result<(), DspError> {
    plan_for(data.len())?.forward(data)
}

/// In-place inverse FFT (planned; includes the `1/n` normalization).
///
/// # Errors
///
/// Returns [`DspError::NonPowerOfTwo`] if the length is not a power of two
/// and [`DspError::EmptyInput`] for an empty buffer.
pub fn ifft_in_place(data: &mut [Complex<f64>]) -> Result<(), DspError> {
    plan_for(data.len())?.inverse(data)
}

/// In-place forward FFT, recomputing twiddles and permutation on every call.
///
/// The reference path [`fft_in_place`] is compared against; kept for
/// equivalence tests and benchmarks.
///
/// # Errors
///
/// Returns [`DspError::NonPowerOfTwo`] if the length is not a power of two
/// and [`DspError::EmptyInput`] for an empty buffer.
pub fn fft_in_place_naive(data: &mut [Complex<f64>]) -> Result<(), DspError> {
    transform(data, false)
}

/// In-place inverse FFT, recomputing twiddles and permutation on every call
/// (includes the `1/n` normalization).
///
/// # Errors
///
/// Returns [`DspError::NonPowerOfTwo`] if the length is not a power of two
/// and [`DspError::EmptyInput`] for an empty buffer.
pub fn ifft_in_place_naive(data: &mut [Complex<f64>]) -> Result<(), DspError> {
    transform(data, true)?;
    let scale = 1.0 / data.len() as f64;
    for x in data.iter_mut() {
        *x *= scale;
    }
    Ok(())
}

/// Forward FFT returning a new buffer, zero-padding the input to the next
/// power of two.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty input.
pub fn fft(input: &[Complex<f64>]) -> Result<Vec<Complex<f64>>, DspError> {
    if input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = next_power_of_two(input.len());
    let mut buf = vec![Complex::new(0.0, 0.0); n];
    buf[..input.len()].copy_from_slice(input);
    fft_in_place(&mut buf)?;
    Ok(buf)
}

/// Inverse FFT returning a new buffer.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty input and
/// [`DspError::NonPowerOfTwo`] if the length is not a power of two.
pub fn ifft(input: &[Complex<f64>]) -> Result<Vec<Complex<f64>>, DspError> {
    if input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let mut buf = input.to_vec();
    ifft_in_place(&mut buf)?;
    Ok(buf)
}

/// Direct `O(n²)` DFT; the correctness oracle for [`fft`].
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty input.
pub fn dft(input: &[Complex<f64>]) -> Result<Vec<Complex<f64>>, DspError> {
    if input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = input.len();
    let mut out = vec![Complex::new(0.0, 0.0); n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex::new(0.0, 0.0);
        for (t, &x) in input.iter().enumerate() {
            let angle = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc += x * Complex::from_polar(1.0, angle);
        }
        *out_k = acc;
    }
    Ok(out)
}

fn transform(data: &mut [Complex<f64>], inverse: bool) -> Result<(), DspError> {
    let n = data.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if !is_power_of_two(n) {
        return Err(DspError::NonPowerOfTwo { len: n });
    }
    if n == 1 {
        // A length-1 transform is the identity; the generic bit-reversal
        // below would shift by the full word width (0 significant bits).
        return Ok(());
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Converts a real signal into the complex buffer [`fft`] expects.
pub fn complexify(real: &[f64]) -> Vec<Complex<f64>> {
    real.iter().map(|&x| Complex::new(x, 0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex<f64>, b: Complex<f64>, tol: f64) -> bool {
        (a - b).norm() <= tol
    }

    #[test]
    fn matches_dft_oracle() {
        let input: Vec<Complex<f64>> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let fast = fft(&input).unwrap();
        let slow = dft(&input).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            assert!(close(*a, *b, 1e-9), "{a} vs {b}");
        }
    }

    #[test]
    fn round_trip_recovers_signal() {
        let input: Vec<Complex<f64>> = (0..64)
            .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let spectrum = fft(&input).unwrap();
        let back = ifft(&spectrum).unwrap();
        for (a, b) in input.iter().zip(&back) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut input = vec![Complex::new(0.0, 0.0); 16];
        input[0] = Complex::new(1.0, 0.0);
        let spectrum = fft(&input).unwrap();
        for s in &spectrum {
            assert!(close(*s, Complex::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn pure_tone_lands_in_one_bin() {
        let n = 64;
        let bin = 5;
        let input: Vec<Complex<f64>> = (0..n)
            .map(|t| {
                Complex::from_polar(
                    1.0,
                    2.0 * std::f64::consts::PI * (bin * t) as f64 / n as f64,
                )
            })
            .collect();
        let spectrum = fft(&input).unwrap();
        for (k, s) in spectrum.iter().enumerate() {
            if k == bin {
                assert!((s.norm() - n as f64).abs() < 1e-9);
            } else {
                assert!(s.norm() < 1e-9, "leak at bin {k}: {}", s.norm());
            }
        }
    }

    #[test]
    fn parseval_energy_identity() {
        let input: Vec<Complex<f64>> = (0..128)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.2).cos()))
            .collect();
        let spectrum = fft(&input).unwrap();
        let time_energy: f64 = input.iter().map(|x| x.norm_sqr()).sum();
        let freq_energy: f64 =
            spectrum.iter().map(|x| x.norm_sqr()).sum::<f64>() / input.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    fn zero_padding_applied() {
        let input = vec![Complex::new(1.0, 0.0); 100];
        let spectrum = fft(&input).unwrap();
        assert_eq!(spectrum.len(), 128);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex<f64>> = (0..16).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex<f64>> = (0..16).map(|i| Complex::new(0.0, -(i as f64))).collect();
        let sum: Vec<Complex<f64>> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft(&a).unwrap();
        let fb = fft(&b).unwrap();
        let fsum = fft(&sum).unwrap();
        for ((x, y), z) in fa.iter().zip(&fb).zip(&fsum) {
            assert!(close(x + y, *z, 1e-9));
        }
    }

    #[test]
    fn rejects_empty_input() {
        assert_eq!(fft(&[]), Err(DspError::EmptyInput));
        assert_eq!(dft(&[]), Err(DspError::EmptyInput));
        assert_eq!(ifft(&[]), Err(DspError::EmptyInput));
    }

    #[test]
    fn in_place_rejects_non_power_of_two_with_length() {
        let mut buf = vec![Complex::new(0.0, 0.0); 12];
        assert_eq!(
            fft_in_place(&mut buf),
            Err(DspError::NonPowerOfTwo { len: 12 })
        );
        assert_eq!(
            ifft_in_place(&mut buf),
            Err(DspError::NonPowerOfTwo { len: 12 })
        );
        assert_eq!(
            fft_in_place_naive(&mut buf),
            Err(DspError::NonPowerOfTwo { len: 12 })
        );
        assert_eq!(FftPlan::new(12), Err(DspError::NonPowerOfTwo { len: 12 }));
    }

    #[test]
    fn length_zero_rejected_in_place() {
        let mut buf: Vec<Complex<f64>> = Vec::new();
        assert_eq!(fft_in_place(&mut buf), Err(DspError::EmptyInput));
        assert_eq!(ifft_in_place(&mut buf), Err(DspError::EmptyInput));
        assert_eq!(fft_in_place_naive(&mut buf), Err(DspError::EmptyInput));
        assert_eq!(ifft_in_place_naive(&mut buf), Err(DspError::EmptyInput));
        assert_eq!(FftPlan::new(0), Err(DspError::EmptyInput));
    }

    #[test]
    fn length_one_is_identity() {
        let x = Complex::new(3.5, -1.25);
        let mut buf = vec![x];
        fft_in_place(&mut buf).unwrap();
        assert_eq!(buf[0], x);
        ifft_in_place(&mut buf).unwrap();
        assert_eq!(buf[0], x);
        let mut naive = vec![x];
        fft_in_place_naive(&mut naive).unwrap();
        assert_eq!(naive[0], x);
        ifft_in_place_naive(&mut naive).unwrap();
        assert_eq!(naive[0], x);
    }

    #[test]
    fn planned_matches_naive_bit_exactly() {
        for n in [1usize, 2, 4, 8, 64, 256, 1024] {
            let input: Vec<Complex<f64>> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.31).sin(), (i as f64 * 0.77).cos()))
                .collect();
            let plan = plan_for(n).unwrap();
            let mut planned = input.clone();
            let mut naive = input.clone();
            plan.forward(&mut planned).unwrap();
            fft_in_place_naive(&mut naive).unwrap();
            assert_eq!(planned, naive, "forward n={n}");
            plan.inverse(&mut planned).unwrap();
            ifft_in_place_naive(&mut naive).unwrap();
            assert_eq!(planned, naive, "inverse n={n}");
        }
    }

    #[test]
    fn plan_rejects_wrong_length_buffer() {
        let plan = FftPlan::new(8).unwrap();
        let mut buf = vec![Complex::new(0.0, 0.0); 4];
        assert!(matches!(
            plan.forward(&mut buf),
            Err(DspError::BadLength { .. })
        ));
        assert_eq!(plan.len(), 8);
        assert!(!plan.is_empty());
    }

    #[test]
    fn registry_returns_shared_plan() {
        let a = plan_for(32).unwrap();
        let b = plan_for(32).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "registry must memoize plans");
    }

    #[test]
    fn complexify_maps_reals() {
        let c = complexify(&[1.0, -2.0]);
        assert_eq!(c[0], Complex::new(1.0, 0.0));
        assert_eq!(c[1], Complex::new(-2.0, 0.0));
    }

    #[test]
    fn power_of_two_helpers() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(12));
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(3), 4);
    }
}
