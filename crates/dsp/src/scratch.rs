//! Reusable per-frame scratch arenas for the DSP hot path.
//!
//! Every estimator in this crate has an allocating entry point (ergonomic,
//! used by one-shot callers and tests) and a `_into`/`_with_scratch` variant
//! that writes into caller-owned buffers. The types here bundle those
//! buffers so a pipeline allocates once and reuses the memory across frames:
//!
//! * [`KernelScratch`] — state for one estimator chain (eigensolver
//!   workspace, noise projector, polynomial coefficients and roots,
//!   steering buffer).
//! * [`FrameScratch`] — a full radar-frame arena: two beat-signal buffers,
//!   a covariance slot, a kernel scratch and an estimate output vector.
//!
//! # Ownership rules
//!
//! Arenas are plain data: fields are public and independently borrowable, so
//! a caller can hold `&scratch.up` while mutating `scratch.kernel`. Nothing
//! in an arena is an input — every routine fully overwrites the state it
//! reads, so a *dirty* arena (left over from any previous frame, any
//! previous size) never changes a result produced with bit-exact options.
//!
//! # Bit-exact vs fast numerics
//!
//! [`ScratchOptions`] selects between two numerical contracts.
//! [`ScratchOptions::bit_exact`] (the default) makes every scratch call
//! produce exactly the bytes of its allocating wrapper — reuse only saves
//! allocations. [`ScratchOptions::fast`] additionally enables cross-frame
//! warm starting (eigensolver, root finder), incremental covariance
//! accumulation and phasor-recurrence synthesis; results then agree with the
//! bit-exact path only to ≈1e-12, which is plenty for Monte-Carlo sweeps but
//! would break golden-trace byte identity.

use nalgebra::{Complex, DMatrix};

use crate::covariance::SampleCovariance;
use crate::eigen::EigenWorkspace;
use crate::polynomial::Polynomial;
use crate::rootmusic::FrequencyEstimate;

/// Selects which reuse strategies a scratch-based call may apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchOptions {
    /// Warm-start the Jacobi eigensolver from the previous frame's rotation
    /// accumulator.
    pub warm_eigen: bool,
    /// Accumulate the sample covariance with the incremental sliding-window
    /// update instead of the direct sum.
    pub incremental_covariance: bool,
    /// Warm-start the Durand–Kerner root finder from the previous frame's
    /// roots (with automatic cold retry on non-convergence).
    pub warm_roots: bool,
    /// Synthesize beat signals with a rotating-phasor recurrence instead of
    /// one `sin`/`cos` pair per sample.
    pub phasor_synthesis: bool,
    /// Route kernels through the four-lane SIMD paths
    /// ([`crate::simd`]): blocked FFT, 4-lag covariance accumulation,
    /// vectorized Jacobi rotations, lane-batched Durand–Kerner and the
    /// vectorized Box–Muller noise transform. Only takes effect when the
    /// `simd` cargo feature is enabled; the lag/rotation lanes are
    /// bit-identical to the scalar loops, while the transcendental lanes
    /// (noise synthesis, blocked FFT twiddles) stay inside the same
    /// ≤1e-12 drift budget as the other fast-path options.
    pub simd_kernels: bool,
}

impl ScratchOptions {
    /// Every optimization that changes rounding is off: scratch calls
    /// reproduce their allocating wrappers bit for bit.
    pub fn bit_exact() -> Self {
        Self {
            warm_eigen: false,
            incremental_covariance: false,
            warm_roots: false,
            phasor_synthesis: false,
            simd_kernels: false,
        }
    }

    /// All cross-frame reuse on; results match the bit-exact path to ≈1e-12.
    pub fn fast() -> Self {
        Self {
            warm_eigen: true,
            incremental_covariance: true,
            warm_roots: true,
            phasor_synthesis: true,
            simd_kernels: true,
        }
    }

    /// `true` when this run should dispatch to the vectorized kernels:
    /// the per-run flag is set *and* the crate was built with the `simd`
    /// feature.
    #[inline]
    pub fn simd_active(&self) -> bool {
        self.simd_kernels && crate::simd::lanes_enabled()
    }
}

impl Default for ScratchOptions {
    fn default() -> Self {
        Self::bit_exact()
    }
}

/// Reusable state for one estimator chain (eigendecomposition → noise
/// projector → polynomial rooting / pseudospectrum scan).
///
/// Buffers are sized lazily on first use and resize themselves when the
/// problem dimensions change.
#[derive(Debug, Clone)]
pub struct KernelScratch {
    pub(crate) options: ScratchOptions,
    pub(crate) eigen: EigenWorkspace,
    pub(crate) proj: DMatrix<Complex<f64>>,
    pub(crate) coeffs: Vec<Complex<f64>>,
    pub(crate) poly: Polynomial,
    pub(crate) roots: Vec<Complex<f64>>,
    pub(crate) prev_roots: Vec<Complex<f64>>,
    pub(crate) has_prev_roots: bool,
    pub(crate) picked: Vec<Complex<f64>>,
    pub(crate) steering: Vec<Complex<f64>>,
    /// Previous frame's dominant (signal) subspace basis, used by the warm
    /// orthogonal-iteration projector refresh in root-MUSIC.
    pub(crate) signal_basis: DMatrix<Complex<f64>>,
    pub(crate) basis_tmp: DMatrix<Complex<f64>>,
    pub(crate) has_basis: bool,
}

impl KernelScratch {
    /// Creates an empty kernel scratch with the given options.
    pub fn new(options: ScratchOptions) -> Self {
        Self {
            options,
            eigen: EigenWorkspace::new(),
            proj: DMatrix::zeros(0, 0),
            coeffs: Vec::new(),
            poly: Polynomial::new(vec![Complex::new(1.0, 0.0)]),
            roots: Vec::new(),
            prev_roots: Vec::new(),
            has_prev_roots: false,
            picked: Vec::new(),
            steering: Vec::new(),
            signal_basis: DMatrix::zeros(0, 0),
            basis_tmp: DMatrix::zeros(0, 0),
            has_basis: false,
        }
    }

    /// The options this scratch was configured with.
    pub fn options(&self) -> ScratchOptions {
        self.options
    }

    /// Number of Jacobi sweeps the last eigendecomposition performed.
    pub fn last_eigen_sweeps(&self) -> usize {
        self.eigen.last_sweeps()
    }

    /// Discards all warm-start state; the next call runs cold.
    pub fn reset(&mut self) {
        self.eigen.reset();
        self.has_prev_roots = false;
        self.prev_roots.clear();
        self.has_basis = false;
    }
}

impl Default for KernelScratch {
    fn default() -> Self {
        Self::new(ScratchOptions::default())
    }
}

/// A full radar-frame arena: beat-signal buffers, covariance slot, kernel
/// scratches and estimate output, allocated once per pipeline and reused
/// every frame.
///
/// The up and down sweep halves carry **separate** kernel scratches: warm
/// starting only pays off against the previous frame of the *same* stream —
/// the two halves beat at different frequencies, so sharing one scratch
/// would feed each half the other's eigenbasis and roots and warm starts
/// would stall (or fall back cold) every call.
#[derive(Debug, Clone)]
pub struct FrameScratch {
    /// Up-sweep complex baseband buffer.
    pub up: Vec<Complex<f64>>,
    /// Down-sweep complex baseband buffer.
    pub down: Vec<Complex<f64>>,
    /// Covariance slot filled by
    /// [`SampleCovarianceBuilder::build_into`](crate::covariance::SampleCovarianceBuilder::build_into).
    /// Shared between the halves — it is fully overwritten per call and
    /// carries no cross-frame state.
    pub cov: SampleCovariance,
    /// Estimator-chain scratch for the up sweep half.
    pub kernel: KernelScratch,
    /// Estimator-chain scratch for the down sweep half.
    pub kernel_down: KernelScratch,
    /// Frequency-estimate output buffer.
    pub estimates: Vec<FrequencyEstimate>,
}

impl FrameScratch {
    /// Creates an empty frame arena; buffers grow to their steady-state
    /// sizes during the first frame and are reused afterwards.
    pub fn new(options: ScratchOptions) -> Self {
        Self {
            up: Vec::new(),
            down: Vec::new(),
            cov: SampleCovariance::zeros(0),
            kernel: KernelScratch::new(options),
            kernel_down: KernelScratch::new(options),
            estimates: Vec::new(),
        }
    }

    /// The options the embedded kernel scratches were configured with.
    pub fn options(&self) -> ScratchOptions {
        self.kernel.options
    }

    /// Discards all warm-start state; the next frame runs cold.
    pub fn reset(&mut self) {
        self.kernel.reset();
        self.kernel_down.reset();
    }
}

impl Default for FrameScratch {
    fn default() -> Self {
        Self::new(ScratchOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_bit_exact() {
        let o = ScratchOptions::default();
        assert_eq!(o, ScratchOptions::bit_exact());
        assert!(!o.warm_eigen && !o.incremental_covariance);
        assert!(!o.warm_roots && !o.phasor_synthesis);
        assert!(!o.simd_kernels && !o.simd_active());
    }

    #[test]
    fn fast_options_enable_everything() {
        let o = ScratchOptions::fast();
        assert!(o.warm_eigen && o.incremental_covariance);
        assert!(o.warm_roots && o.phasor_synthesis);
        assert!(o.simd_kernels);
        assert_eq!(o.simd_active(), cfg!(feature = "simd"));
    }

    #[test]
    fn frame_scratch_starts_empty() {
        let fs = FrameScratch::new(ScratchOptions::fast());
        assert!(fs.up.is_empty() && fs.down.is_empty());
        assert_eq!(fs.cov.window(), 0);
        assert_eq!(fs.options(), ScratchOptions::fast());
    }

    #[test]
    fn reset_clears_warm_state() {
        let mut ks = KernelScratch::new(ScratchOptions::fast());
        ks.prev_roots.push(Complex::new(1.0, 0.0));
        ks.has_prev_roots = true;
        ks.reset();
        assert!(!ks.has_prev_roots);
        assert!(ks.prev_roots.is_empty());
        assert_eq!(ks.last_eigen_sweeps(), 0);
    }
}
