//! Portable SIMD-style lanes for the batch kernels.
//!
//! The hot kernels (FFT column passes, covariance lag accumulation, Jacobi
//! rotations, Durand–Kerner iteration, Box–Muller noise synthesis) all reduce
//! to the same shape: four independent `f64` (or split-complex) streams
//! advancing in lock-step. This module provides [`F64x4`] and [`C64x4`] —
//! fixed four-wide value types whose element-wise operators compile to a
//! single vector instruction on any target where LLVM can autovectorize
//! (SSE2/AVX on x86-64, NEON on aarch64) and to four scalar ops everywhere
//! else. No intrinsics, no nightly features, no runtime dispatch tables:
//! the types are plain arrays with `#[inline(always)]` arithmetic, so the
//! scalar build is the vector build with narrower registers.
//!
//! Two classes of helpers live here:
//!
//! * **Exact lanes** — [`F64x4`] / [`C64x4`] arithmetic performs the same
//!   IEEE-754 operations in the same order as the scalar kernels they
//!   replace (no FMA contraction, no reassociation). A kernel vectorized
//!   with these lanes is *bit-identical* to its scalar loop; the lanes just
//!   carry four independent problems at once.
//! * **Approximate transcendentals** — [`F64x4::ln`] and [`F64x4::sin_cos`]
//!   are polynomial implementations (≈1 ulp; certified ≤ 4e-15 by tests)
//!   used only by the `fast` scratch path, whose documented contract already
//!   allows ≤1e-12 drift. The `bit_exact` path never calls them.
//!
//! The `simd` cargo feature (default-on) gates *dispatch*, not compilation:
//! [`lanes_enabled`] reports whether vectorized kernels should run, and every
//! call site pairs it with the per-run [`ScratchOptions::simd_kernels`]
//! flag. With the feature disabled the crate still compiles the lane types
//! (tests exercise them unconditionally) but all kernels take their scalar
//! paths, which is what the CI feature matrix pins.
//!
//! [`ScratchOptions::simd_kernels`]: crate::scratch::ScratchOptions::simd_kernels

use nalgebra::Complex;

/// Number of lanes in the packed types.
pub const LANES: usize = 4;

/// `true` when the `simd` cargo feature is enabled and vectorized kernel
/// dispatch is allowed. Kernels additionally consult the per-run
/// `ScratchOptions::simd_kernels` flag so the default `bit_exact`
/// configuration never routes through approximate lanes.
#[inline(always)]
pub const fn lanes_enabled() -> bool {
    cfg!(feature = "simd")
}

/// Four-wide packed `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(transparent)]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All four lanes set to `v`.
    #[inline(always)]
    pub const fn splat(v: f64) -> Self {
        F64x4([v, v, v, v])
    }

    /// All four lanes zero.
    #[inline(always)]
    pub const fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Load four consecutive values from a slice.
    ///
    /// A single four-element bounds check, so the load compiles to one
    /// unaligned vector move.
    #[inline(always)]
    pub fn load(src: &[f64]) -> Self {
        let a: &[f64; 4] = src[..4].try_into().expect("slice of exactly 4");
        F64x4(*a)
    }

    /// Store the four lanes into the first four elements of `dst`.
    #[inline(always)]
    pub fn store(self, dst: &mut [f64]) {
        dst[..4].copy_from_slice(&self.0);
    }

    /// Sum of all four lanes (left-to-right, matching a scalar accumulator
    /// that processed the lanes in index order).
    #[inline(always)]
    pub fn reduce_sum(self) -> f64 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }

    /// Lane-wise square root.
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        F64x4([
            self.0[0].sqrt(),
            self.0[1].sqrt(),
            self.0[2].sqrt(),
            self.0[3].sqrt(),
        ])
    }

    /// Lane-wise natural logarithm for **normal, positive** inputs.
    ///
    /// Implementation: exponent/mantissa split via the IEEE-754 bit pattern
    /// (`x = m·2^e`, `m ∈ [√½, √2)`), then the atanh series
    /// `ln m = 2s·(1 + s²/3 + s⁴/5 + …)` with `s = (m−1)/(m+1)`, `|s| ≤
    /// 0.1716`, truncated after `s¹⁷` (next term ≤ 7e-16 relative), and a
    /// hi/lo-split `e·ln 2` recombination. Certified against `f64::ln` to
    /// ≤ 4e-15 relative by unit tests; used only on the `fast` path
    /// (Box–Muller), never for `bit_exact` golden traces.
    ///
    /// Inputs outside `(0, ∞)` normal range produce unspecified (finite or
    /// non-finite) garbage — callers own the domain.
    #[inline(always)]
    pub fn ln(self) -> Self {
        const LN2_HI: f64 = 6.931_471_803_691_238e-1;
        const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
        const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;
        let mut out = [0.0f64; 4];
        for (o, &x) in out.iter_mut().zip(self.0.iter()) {
            let bits = x.to_bits();
            let mut e = ((bits >> 52) & 0x7ff) as i64 - 1022;
            // Mantissa rescaled into [0.5, 1).
            let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1022u64 << 52));
            if m < FRAC_1_SQRT_2 {
                m *= 2.0;
                e -= 1;
            }
            let s = (m - 1.0) / (m + 1.0);
            let z = s * s;
            // atanh series: ln m = 2s (1 + z/3 + z²/5 + … + z⁸/17).
            let p = 1.0
                + z * (1.0 / 3.0
                    + z * (1.0 / 5.0
                        + z * (1.0 / 7.0
                            + z * (1.0 / 9.0
                                + z * (1.0 / 11.0
                                    + z * (1.0 / 13.0 + z * (1.0 / 15.0 + z * (1.0 / 17.0))))))));
            let ef = e as f64;
            *o = ef * LN2_HI + (2.0 * s * p + ef * LN2_LO);
        }
        F64x4(out)
    }

    /// Lane-wise simultaneous `(sin θ, cos θ)` for `θ ∈ [0, 4π)`.
    ///
    /// Quadrant reduction `θ = q·π/2 + r` with `q = round(θ/(π/2))`,
    /// `|r| ≤ π/4` (Cody–Waite two-term π/2), then odd/even Taylor kernels
    /// truncated after `r¹⁷` / `r¹⁶` (next terms ≤ 5e-17). Certified ≤ 4e-15
    /// absolute against `f64::sin_cos` by unit tests; `fast`-path only, like
    /// [`F64x4::ln`].
    #[inline(always)]
    pub fn sin_cos(self) -> (Self, Self) {
        const PIO2_HI: f64 = std::f64::consts::FRAC_PI_2;
        const PIO2_LO: f64 = 6.123_233_995_736_766e-17;
        let mut sin = [0.0f64; 4];
        let mut cos = [0.0f64; 4];
        for i in 0..4 {
            let theta = self.0[i];
            let q = (theta * std::f64::consts::FRAC_2_PI).round();
            let r = (theta - q * PIO2_HI) - q * PIO2_LO;
            let z = r * r;
            // sin r = r (1 − z/3! + z²/5! − … ± z⁸/17!)
            let sp = 1.0
                + z * (-1.0 / 6.0
                    + z * (1.0 / 120.0
                        + z * (-1.0 / 5_040.0
                            + z * (1.0 / 362_880.0
                                + z * (-1.0 / 39_916_800.0
                                    + z * (1.0 / 6_227_020_800.0
                                        + z * (-1.0 / 1_307_674_368_000.0
                                            + z * (1.0 / 355_687_428_096_000.0))))))));
            let sr = r * sp;
            // cos r = 1 − z/2! + z²/4! − … ± z⁸/16!
            let cr = 1.0
                + z * (-1.0 / 2.0
                    + z * (1.0 / 24.0
                        + z * (-1.0 / 720.0
                            + z * (1.0 / 40_320.0
                                + z * (-1.0 / 3_628_800.0
                                    + z * (1.0 / 479_001_600.0
                                        + z * (-1.0 / 87_178_291_200.0
                                            + z * (1.0 / 20_922_789_888_000.0))))))));
            match (q as i64).rem_euclid(4) {
                0 => {
                    sin[i] = sr;
                    cos[i] = cr;
                }
                1 => {
                    sin[i] = cr;
                    cos[i] = -sr;
                }
                2 => {
                    sin[i] = -sr;
                    cos[i] = -cr;
                }
                _ => {
                    sin[i] = -cr;
                    cos[i] = sr;
                }
            }
        }
        (F64x4(sin), F64x4(cos))
    }
}

impl std::ops::Add for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn add(self, rhs: F64x4) -> F64x4 {
        F64x4([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
        ])
    }
}

impl std::ops::Sub for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn sub(self, rhs: F64x4) -> F64x4 {
        F64x4([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
            self.0[3] - rhs.0[3],
        ])
    }
}

impl std::ops::Mul for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn mul(self, rhs: F64x4) -> F64x4 {
        F64x4([
            self.0[0] * rhs.0[0],
            self.0[1] * rhs.0[1],
            self.0[2] * rhs.0[2],
            self.0[3] * rhs.0[3],
        ])
    }
}

impl std::ops::Neg for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn neg(self) -> F64x4 {
        F64x4([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

/// Four-wide split-complex value: four real parts in one register, four
/// imaginary parts in another (structure-of-arrays at register granularity).
///
/// Multiplication follows `num_complex`'s operand order exactly
/// (`re = a.re·b.re − a.im·b.im`, `im = a.re·b.im + a.im·b.re`) so a lane
/// is bit-identical to the scalar `Complex<f64>` product.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct C64x4 {
    /// Real parts.
    pub re: F64x4,
    /// Imaginary parts.
    pub im: F64x4,
}

impl C64x4 {
    /// All lanes zero.
    #[inline(always)]
    pub const fn zero() -> Self {
        C64x4 {
            re: F64x4::zero(),
            im: F64x4::zero(),
        }
    }

    /// The same complex value in every lane.
    #[inline(always)]
    pub const fn splat(re: f64, im: f64) -> Self {
        C64x4 {
            re: F64x4::splat(re),
            im: F64x4::splat(im),
        }
    }

    /// Gather four consecutive interleaved `Complex<f64>` values.
    ///
    /// Four adjacent complex numbers are eight adjacent `f64`s; the
    /// re/im split compiles to two loads plus shuffles, so a row of four
    /// columns still moves through one cache line.
    #[inline(always)]
    pub fn from_complex(src: &[Complex<f64>]) -> Self {
        C64x4 {
            re: F64x4([src[0].re, src[1].re, src[2].re, src[3].re]),
            im: F64x4([src[0].im, src[1].im, src[2].im, src[3].im]),
        }
    }

    /// Scatter the four lanes into four consecutive interleaved
    /// `Complex<f64>` slots.
    #[inline(always)]
    pub fn write_complex(self, dst: &mut [Complex<f64>]) {
        for (i, d) in dst.iter_mut().enumerate().take(4) {
            *d = Complex::new(self.re.0[i], self.im.0[i]);
        }
    }

    /// Gather four values from split re/im planes.
    #[inline(always)]
    pub fn load(re: &[f64], im: &[f64]) -> Self {
        C64x4 {
            re: F64x4::load(re),
            im: F64x4::load(im),
        }
    }

    /// Scatter the four lanes back into split planes.
    #[inline(always)]
    pub fn store(self, re: &mut [f64], im: &mut [f64]) {
        self.re.store(re);
        self.im.store(im);
    }

    /// Lane-wise complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        C64x4 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Lane-wise squared norm `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> F64x4 {
        self.re * self.re + self.im * self.im
    }

    /// Lane-wise scale by a packed real factor.
    #[inline(always)]
    pub fn scale(self, k: F64x4) -> Self {
        C64x4 {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl std::ops::Add for C64x4 {
    type Output = C64x4;
    #[inline(always)]
    fn add(self, rhs: C64x4) -> C64x4 {
        C64x4 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl std::ops::Sub for C64x4 {
    type Output = C64x4;
    #[inline(always)]
    fn sub(self, rhs: C64x4) -> C64x4 {
        C64x4 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl std::ops::Mul for C64x4 {
    type Output = C64x4;
    #[inline(always)]
    fn mul(self, rhs: C64x4) -> C64x4 {
        C64x4 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalgebra::Complex;

    #[test]
    fn f64x4_arithmetic_matches_scalar_bitwise() {
        let a = F64x4([1.5, -2.25, 1e-12, 7.0e100]);
        let b = F64x4([0.3, 4.0, -1e12, 2.5e-100]);
        for i in 0..4 {
            assert_eq!((a + b).0[i].to_bits(), (a.0[i] + b.0[i]).to_bits());
            assert_eq!((a - b).0[i].to_bits(), (a.0[i] - b.0[i]).to_bits());
            assert_eq!((a * b).0[i].to_bits(), (a.0[i] * b.0[i]).to_bits());
            assert_eq!((-a).0[i].to_bits(), (-a.0[i]).to_bits());
        }
        let p = F64x4([0.25, 2.0, 1e-12, 7.0e100]);
        for i in 0..4 {
            assert_eq!(p.sqrt().0[i].to_bits(), p.0[i].sqrt().to_bits());
        }
    }

    #[test]
    fn c64x4_multiply_matches_num_complex_bitwise() {
        let a = C64x4 {
            re: F64x4([0.7, -1.3, 2.0, 1e-8]),
            im: F64x4([0.1, 5.5, -0.25, 3.0]),
        };
        let b = C64x4 {
            re: F64x4([-0.4, 0.9, 1.75, 2e8]),
            im: F64x4([1.1, -2.0, 0.5, -7.0]),
        };
        let p = a * b;
        for i in 0..4 {
            let sa = Complex::new(a.re.0[i], a.im.0[i]);
            let sb = Complex::new(b.re.0[i], b.im.0[i]);
            let sp = sa * sb;
            assert_eq!(p.re.0[i].to_bits(), sp.re.to_bits());
            assert_eq!(p.im.0[i].to_bits(), sp.im.to_bits());
        }
    }

    #[test]
    fn ln_certified_within_4e15_relative() {
        // Sweep the Box–Muller domain (0, 1] plus values above 1 for the
        // general contract, including near-boundary mantissas.
        let mut worst = 0.0f64;
        let mut x = 1.0e-16;
        while x < 8.0 {
            let got = F64x4::splat(x).ln().0[0];
            let want = x.ln();
            let rel = if want == 0.0 {
                (got - want).abs()
            } else {
                ((got - want) / want).abs()
            };
            worst = worst.max(rel);
            x *= 1.000_731;
        }
        // ln(1) == 0 exactly.
        assert_eq!(F64x4::splat(1.0).ln().0[0], 0.0);
        assert!(worst < 4e-15, "worst relative ln error {worst:e}");
    }

    #[test]
    fn sin_cos_certified_within_4e15_absolute() {
        let mut worst = 0.0f64;
        let n = 40_000;
        for k in 0..n {
            let theta = 4.0 * std::f64::consts::PI * (k as f64 + 0.137) / n as f64;
            let (s, c) = F64x4::splat(theta).sin_cos();
            let (ws, wc) = theta.sin_cos();
            worst = worst.max((s.0[0] - ws).abs()).max((c.0[0] - wc).abs());
        }
        assert!(worst < 4e-15, "worst abs sin/cos error {worst:e}");
    }

    #[test]
    fn reduce_sum_and_loads() {
        let buf = [1.0, 2.0, 3.0, 4.0, 5.0];
        let v = F64x4::load(&buf[1..]);
        assert_eq!(v.reduce_sum(), (2.0 + 3.0) + (4.0 + 5.0));
        let mut out = [0.0; 4];
        v.store(&mut out);
        assert_eq!(out, [2.0, 3.0, 4.0, 5.0]);
        let c = C64x4::load(&buf[..4], &buf[1..]);
        assert_eq!(c.conj().im.0, [-2.0, -3.0, -4.0, -5.0]);
        assert_eq!(c.norm_sqr().0[0], 1.0 * 1.0 + 2.0 * 2.0);
    }
}
