//! Complex Hermitian eigendecomposition via the cyclic Jacobi method.
//!
//! MUSIC and root-MUSIC need the eigenvectors of the (Hermitian) sample
//! covariance matrix to split signal from noise subspaces. The solver here is
//! a two-sided unitary Jacobi iteration: each sweep annihilates every
//! off-diagonal pair `(p, q)` with a complex Givens rotation, converging
//! quadratically once the matrix is nearly diagonal.

use nalgebra::{Complex, DMatrix};

use crate::DspError;

/// Maximum number of full Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 64;

/// Eigendecomposition `A = V Λ Vᴴ` of a complex Hermitian matrix, with real
/// eigenvalues sorted in **descending** order (largest first — the order
/// subspace methods want).
#[derive(Debug, Clone, PartialEq)]
pub struct HermitianEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: DMatrix<Complex<f64>>,
}

impl HermitianEigen {
    /// Computes the eigendecomposition of a Hermitian matrix.
    ///
    /// The input is validated to be square and Hermitian within `tol_herm`
    /// (absolute, per entry).
    ///
    /// # Errors
    ///
    /// * [`DspError::BadLength`] — non-square or empty matrix.
    /// * [`DspError::BadParameter`] — matrix is not Hermitian.
    /// * [`DspError::NoConvergence`] — Jacobi sweeps did not converge
    ///   (practically unreachable for Hermitian input).
    pub fn new(matrix: &DMatrix<Complex<f64>>, tol_herm: f64) -> Result<Self, DspError> {
        let n = matrix.nrows();
        if n == 0 || matrix.ncols() != n {
            return Err(DspError::BadLength {
                expected: "non-empty square matrix".to_string(),
                actual: matrix.ncols().max(matrix.nrows()),
            });
        }
        for i in 0..n {
            for j in 0..n {
                let delta = (matrix[(i, j)] - matrix[(j, i)].conj()).norm();
                if delta > tol_herm {
                    return Err(DspError::BadParameter {
                        name: "matrix",
                        message: format!(
                            "not Hermitian: |A[{i}][{j}] - conj(A[{j}][{i}])| = {delta:e}"
                        ),
                    });
                }
            }
        }

        let mut a = matrix.clone();
        // Symmetrize exactly to avoid drift from tiny Hermitian violations.
        for i in 0..n {
            a[(i, i)] = Complex::new(a[(i, i)].re, 0.0);
            for j in (i + 1)..n {
                let avg = (a[(i, j)] + a[(j, i)].conj()) * Complex::new(0.5, 0.0);
                a[(i, j)] = avg;
                a[(j, i)] = avg.conj();
            }
        }

        let mut v = DMatrix::<Complex<f64>>::identity(n, n);
        let frob = a.iter().map(|c| c.norm_sqr()).sum::<f64>().sqrt();
        let stop = (frob * 1e-14).max(f64::MIN_POSITIVE);

        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            let off: f64 = off_diagonal_norm(&a);
            if off <= stop {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    rotate(&mut a, &mut v, p, q);
                }
            }
        }
        if !converged && off_diagonal_norm(&a) > stop {
            return Err(DspError::NoConvergence {
                routine: "hermitian Jacobi",
                iterations: MAX_SWEEPS,
            });
        }

        // Extract and sort descending.
        let mut order: Vec<usize> = (0..n).collect();
        let eig_raw: Vec<f64> = (0..n).map(|i| a[(i, i)].re).collect();
        order.sort_by(|&i, &j| eig_raw[j].partial_cmp(&eig_raw[i]).unwrap());

        let eigenvalues: Vec<f64> = order.iter().map(|&i| eig_raw[i]).collect();
        let mut eigenvectors = DMatrix::<Complex<f64>>::zeros(n, n);
        for (dst, &src) in order.iter().enumerate() {
            eigenvectors.set_column(dst, &v.column(src));
        }
        Ok(Self {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Unitary matrix whose columns are the eigenvectors, ordered to match
    /// [`HermitianEigen::eigenvalues`].
    pub fn eigenvectors(&self) -> &DMatrix<Complex<f64>> {
        &self.eigenvectors
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// The noise subspace: eigenvector columns `signal_count..n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadParameter`] when `signal_count >= n`.
    pub fn noise_subspace(&self, signal_count: usize) -> Result<DMatrix<Complex<f64>>, DspError> {
        let n = self.dim();
        if signal_count >= n {
            return Err(DspError::BadParameter {
                name: "signal_count",
                message: format!("must be < matrix dimension {n}, got {signal_count}"),
            });
        }
        Ok(self
            .eigenvectors
            .columns(signal_count, n - signal_count)
            .into_owned())
    }

    /// Reconstructs `V Λ Vᴴ`; used by tests to bound the decomposition error.
    pub fn reconstruct(&self) -> DMatrix<Complex<f64>> {
        let n = self.dim();
        let lambda = DMatrix::from_diagonal(&nalgebra::DVector::from_iterator(
            n,
            self.eigenvalues.iter().map(|&l| Complex::new(l, 0.0)),
        ));
        &self.eigenvectors * lambda * self.eigenvectors.adjoint()
    }
}

fn off_diagonal_norm(a: &DMatrix<Complex<f64>>) -> f64 {
    let n = a.nrows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                sum += a[(i, j)].norm_sqr();
            }
        }
    }
    sum.sqrt()
}

/// Applies the complex Jacobi rotation annihilating `a[(p, q)]`.
///
/// With `a_pq = |a_pq| e^{iφ}`, the phase transform `D = diag(1, e^{-iφ})`
/// makes the 2×2 pivot real-symmetric, then the classic symmetric Schur
/// rotation (Golub & Van Loan §8.4) zeroes it. The combined unitary update is
/// accumulated into the eigenvector matrix.
fn rotate(a: &mut DMatrix<Complex<f64>>, v: &mut DMatrix<Complex<f64>>, p: usize, q: usize) {
    let apq = a[(p, q)];
    let abs = apq.norm();
    if abs == 0.0 {
        return;
    }
    let app = a[(p, p)].re;
    let aqq = a[(q, q)].re;
    let phase = apq / Complex::new(abs, 0.0); // e^{iφ}

    // Real symmetric Schur rotation for [[app, abs], [abs, aqq]].
    let tau = (aqq - app) / (2.0 * abs);
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    // Combined unitary U = D·J with D = diag(1, conj(phase)):
    //   U[p][p] = c            U[p][q] = s
    //   U[q][p] = -s·conj(phase)   U[q][q] = c·conj(phase)
    let upp = Complex::new(c, 0.0);
    let upq = Complex::new(s, 0.0);
    let uqp = -phase.conj() * s;
    let uqq = phase.conj() * c;

    let n = a.nrows();
    // A ← Uᴴ A U: first columns (A ← A·U), then rows (A ← Uᴴ·A).
    for i in 0..n {
        let aip = a[(i, p)];
        let aiq = a[(i, q)];
        a[(i, p)] = aip * upp + aiq * uqp;
        a[(i, q)] = aip * upq + aiq * uqq;
    }
    for j in 0..n {
        let apj = a[(p, j)];
        let aqj = a[(q, j)];
        a[(p, j)] = upp.conj() * apj + uqp.conj() * aqj;
        a[(q, j)] = upq.conj() * apj + uqq.conj() * aqj;
    }
    // Clean up the pivot numerically.
    a[(p, q)] = Complex::new(0.0, 0.0);
    a[(q, p)] = Complex::new(0.0, 0.0);
    a[(p, p)] = Complex::new(a[(p, p)].re, 0.0);
    a[(q, q)] = Complex::new(a[(q, q)].re, 0.0);

    // V ← V·U.
    for i in 0..n {
        let vip = v[(i, p)];
        let viq = v[(i, q)];
        v[(i, p)] = vip * upp + viq * uqp;
        v[(i, q)] = vip * upq + viq * uqq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalgebra::DVector;

    fn random_hermitian(n: usize, seed: u64) -> DMatrix<Complex<f64>> {
        // Simple deterministic LCG so tests need no rand dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let g = DMatrix::from_fn(n, n, |_, _| Complex::new(next(), next()));
        let h = &g * g.adjoint(); // Hermitian positive semidefinite
        let d = DMatrix::from_fn(n, n, |i, j| {
            if i == j {
                Complex::new(next(), 0.0)
            } else {
                Complex::new(0.0, 0.0)
            }
        });
        h + d * Complex::new(0.1, 0.0) + DMatrix::identity(n, n) * Complex::new(0.01, 0.0)
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = DMatrix::from_diagonal(&DVector::from_vec(vec![
            Complex::new(3.0, 0.0),
            Complex::new(1.0, 0.0),
            Complex::new(2.0, 0.0),
        ]));
        let e = HermitianEigen::new(&a, 1e-12).unwrap();
        assert_eq!(e.eigenvalues(), &[3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2_real_symmetric() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = DMatrix::from_row_slice(
            2,
            2,
            &[
                Complex::new(2.0, 0.0),
                Complex::new(1.0, 0.0),
                Complex::new(1.0, 0.0),
                Complex::new(2.0, 0.0),
            ],
        );
        let e = HermitianEigen::new(&a, 1e-12).unwrap();
        assert!((e.eigenvalues()[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_complex_hermitian() {
        // [[1, i], [-i, 1]] has eigenvalues 2 and 0.
        let a = DMatrix::from_row_slice(
            2,
            2,
            &[
                Complex::new(1.0, 0.0),
                Complex::new(0.0, 1.0),
                Complex::new(0.0, -1.0),
                Complex::new(1.0, 0.0),
            ],
        );
        let e = HermitianEigen::new(&a, 1e-12).unwrap();
        assert!((e.eigenvalues()[0] - 2.0).abs() < 1e-12);
        assert!(e.eigenvalues()[1].abs() < 1e-12);
    }

    #[test]
    fn reconstruction_error_is_tiny() {
        for seed in [1, 2, 3, 4] {
            for n in [2, 3, 5, 8, 12] {
                let a = random_hermitian(n, seed);
                let e = HermitianEigen::new(&a, 1e-9).unwrap();
                let err = (&a - e.reconstruct()).norm() / a.norm();
                assert!(err < 1e-11, "n={n} seed={seed} err={err:e}");
            }
        }
    }

    #[test]
    fn eigenvectors_are_unitary() {
        let a = random_hermitian(7, 42);
        let e = HermitianEigen::new(&a, 1e-9).unwrap();
        let v = e.eigenvectors();
        let gram = v.adjoint() * v;
        let err = (&gram - DMatrix::<Complex<f64>>::identity(7, 7)).norm();
        assert!(err < 1e-11, "unitarity error {err:e}");
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = random_hermitian(9, 7);
        let e = HermitianEigen::new(&a, 1e-9).unwrap();
        for w in e.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = random_hermitian(6, 11);
        let trace: f64 = (0..6).map(|i| a[(i, i)].re).sum();
        let e = HermitianEigen::new(&a, 1e-9).unwrap();
        let sum: f64 = e.eigenvalues().iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn noise_subspace_is_orthogonal_to_signal_vectors() {
        // Rank-1 + εI: top eigenvector is the signal; noise subspace must be
        // orthogonal to it.
        let n = 6;
        let s = DVector::from_fn(n, |i, _| Complex::from_polar(1.0, 0.9 * i as f64));
        let a = &s * s.adjoint() * Complex::new(5.0, 0.0)
            + DMatrix::<Complex<f64>>::identity(n, n) * Complex::new(0.1, 0.0);
        let e = HermitianEigen::new(&a, 1e-9).unwrap();
        let en = e.noise_subspace(1).unwrap();
        assert_eq!(en.ncols(), n - 1);
        let proj = en.adjoint() * &s;
        assert!(proj.norm() < 1e-9, "projection norm {}", proj.norm());
    }

    #[test]
    fn rejects_non_square() {
        let a = DMatrix::<Complex<f64>>::zeros(2, 3);
        assert!(matches!(
            HermitianEigen::new(&a, 1e-12),
            Err(DspError::BadLength { .. })
        ));
    }

    #[test]
    fn rejects_non_hermitian() {
        let a = DMatrix::from_row_slice(
            2,
            2,
            &[
                Complex::new(1.0, 0.0),
                Complex::new(2.0, 0.0),
                Complex::new(5.0, 0.0),
                Complex::new(1.0, 0.0),
            ],
        );
        assert!(matches!(
            HermitianEigen::new(&a, 1e-12),
            Err(DspError::BadParameter { .. })
        ));
    }

    #[test]
    fn noise_subspace_bounds_checked() {
        let a = random_hermitian(4, 3);
        let e = HermitianEigen::new(&a, 1e-9).unwrap();
        assert!(e.noise_subspace(4).is_err());
        assert!(e.noise_subspace(3).is_ok());
    }

    #[test]
    fn one_by_one_matrix() {
        let a = DMatrix::from_element(1, 1, Complex::new(4.2, 0.0));
        let e = HermitianEigen::new(&a, 1e-12).unwrap();
        assert_eq!(e.eigenvalues(), &[4.2]);
        assert_eq!(e.dim(), 1);
    }
}
