//! Complex Hermitian eigendecomposition via the cyclic Jacobi method.
//!
//! MUSIC and root-MUSIC need the eigenvectors of the (Hermitian) sample
//! covariance matrix to split signal from noise subspaces. The solver here is
//! a two-sided unitary Jacobi iteration: each sweep annihilates every
//! off-diagonal pair `(p, q)` with a complex Givens rotation, converging
//! quadratically once the matrix is nearly diagonal.
//!
//! # Reusable state and warm starting
//!
//! [`EigenWorkspace`] owns every buffer the iteration needs, so repeated
//! decompositions (one per radar frame) allocate nothing. It can also **warm
//! start**: consecutive radar frames produce nearly identical covariance
//! matrices, so rotating the new matrix into the previous frame's eigenbasis
//! (`B = Vᵏ⁻¹ᴴ A Vᵏ⁻¹`) leaves it almost diagonal and the sweep loop
//! early-exits on its off-diagonal-norm threshold after far fewer sweeps.
//! Warm starting changes the rounding of the result (≈1e-15 relative), so it
//! is opt-in; the cold path is the single source of truth and
//! [`HermitianEigen::new`] is a thin allocating wrapper around it.

use nalgebra::{Complex, DMatrix};

use crate::simd::{lanes_enabled, C64x4, LANES};
use crate::DspError;

/// Maximum number of full Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 64;

/// Eigendecomposition `A = V Λ Vᴴ` of a complex Hermitian matrix, with real
/// eigenvalues sorted in **descending** order (largest first — the order
/// subspace methods want).
#[derive(Debug, Clone, PartialEq)]
pub struct HermitianEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: DMatrix<Complex<f64>>,
}

impl HermitianEigen {
    /// Computes the eigendecomposition of a Hermitian matrix.
    ///
    /// The input is validated to be square and Hermitian within `tol_herm`
    /// (absolute, per entry). This is a thin allocating wrapper around
    /// [`EigenWorkspace::decompose`] (cold start).
    ///
    /// # Errors
    ///
    /// * [`DspError::BadLength`] — non-square or empty matrix.
    /// * [`DspError::BadParameter`] — matrix is not Hermitian.
    /// * [`DspError::NoConvergence`] — Jacobi sweeps did not converge
    ///   (practically unreachable for Hermitian input).
    pub fn new(matrix: &DMatrix<Complex<f64>>, tol_herm: f64) -> Result<Self, DspError> {
        let mut ws = EigenWorkspace::new();
        ws.decompose(matrix, tol_herm, false)?;
        Ok(Self {
            eigenvalues: ws.eigenvalues.clone(),
            eigenvectors: ws.eigenvectors.clone(),
        })
    }

    /// Eigenvalues, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Unitary matrix whose columns are the eigenvectors, ordered to match
    /// [`HermitianEigen::eigenvalues`].
    pub fn eigenvectors(&self) -> &DMatrix<Complex<f64>> {
        &self.eigenvectors
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// The noise subspace: eigenvector columns `signal_count..n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadParameter`] when `signal_count >= n`.
    pub fn noise_subspace(&self, signal_count: usize) -> Result<DMatrix<Complex<f64>>, DspError> {
        let n = self.dim();
        if signal_count >= n {
            return Err(DspError::BadParameter {
                name: "signal_count",
                message: format!("must be < matrix dimension {n}, got {signal_count}"),
            });
        }
        Ok(self
            .eigenvectors
            .columns(signal_count, n - signal_count)
            .into_owned())
    }

    /// Reconstructs `V Λ Vᴴ`; used by tests to bound the decomposition error.
    pub fn reconstruct(&self) -> DMatrix<Complex<f64>> {
        let n = self.dim();
        let lambda = DMatrix::from_diagonal(&nalgebra::DVector::from_iterator(
            n,
            self.eigenvalues.iter().map(|&l| Complex::new(l, 0.0)),
        ));
        &self.eigenvectors * lambda * self.eigenvectors.adjoint()
    }
}

/// Reusable buffers (and optional warm-start state) for the Jacobi
/// eigensolver.
///
/// All matrices are sized lazily on first use and resized automatically if
/// the input dimension changes (which also discards any warm-start state).
#[derive(Debug, Clone)]
pub struct EigenWorkspace {
    /// Working copy that the sweeps diagonalize.
    a: DMatrix<Complex<f64>>,
    /// Rotation accumulator.
    v: DMatrix<Complex<f64>>,
    /// Intermediate product for the warm-start similarity transform.
    tmp: DMatrix<Complex<f64>>,
    /// Eigenvector matrix of the previous decomposition (warm-start basis).
    prev_v: DMatrix<Complex<f64>>,
    has_prev: bool,
    eigenvalues: Vec<f64>,
    eigenvectors: DMatrix<Complex<f64>>,
    eig_raw: Vec<f64>,
    order: Vec<usize>,
    last_sweeps: usize,
    simd: bool,
}

impl Default for EigenWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl EigenWorkspace {
    /// Creates an empty workspace; buffers are sized on first decomposition.
    pub fn new() -> Self {
        Self {
            a: DMatrix::zeros(0, 0),
            v: DMatrix::zeros(0, 0),
            tmp: DMatrix::zeros(0, 0),
            prev_v: DMatrix::zeros(0, 0),
            has_prev: false,
            eigenvalues: Vec::new(),
            eigenvectors: DMatrix::zeros(0, 0),
            eig_raw: Vec::new(),
            order: Vec::new(),
            last_sweeps: 0,
            simd: false,
        }
    }

    /// Enables or disables the vectorized rotation passes (sticky across
    /// decompositions until changed).
    ///
    /// The two contiguous column updates of each Jacobi rotation (`A ← A·U`
    /// and `V ← V·U`) run four rows per lane; each lane performs the scalar
    /// operations in the scalar order, so results are bit-identical to the
    /// scalar passes. The strided row update stays scalar. Also gated on the
    /// `simd` cargo feature.
    pub fn set_simd(&mut self, enabled: bool) {
        self.simd = enabled;
    }

    /// Dimension of the last decomposed matrix (0 before first use).
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Discards warm-start state; the next decomposition runs cold.
    pub fn reset(&mut self) {
        self.has_prev = false;
        self.last_sweeps = 0;
    }

    /// Number of Jacobi sweeps the last decomposition performed.
    pub fn last_sweeps(&self) -> usize {
        self.last_sweeps
    }

    /// Eigenvalues of the last decomposition, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Eigenvectors of the last decomposition, columns aligned with
    /// [`EigenWorkspace::eigenvalues`].
    pub fn eigenvectors(&self) -> &DMatrix<Complex<f64>> {
        &self.eigenvectors
    }

    /// Decomposes a Hermitian matrix in place, reusing all buffers.
    ///
    /// With `warm == true` and a previous decomposition of the same
    /// dimension available, the iteration starts from the previous frame's
    /// rotation accumulator; otherwise it starts cold (bit-identical to
    /// [`HermitianEigen::new`]).
    ///
    /// # Errors
    ///
    /// Same as [`HermitianEigen::new`].
    pub fn decompose(
        &mut self,
        matrix: &DMatrix<Complex<f64>>,
        tol_herm: f64,
        warm: bool,
    ) -> Result<(), DspError> {
        let n = matrix.nrows();
        if n == 0 || matrix.ncols() != n {
            return Err(DspError::BadLength {
                expected: "non-empty square matrix".to_string(),
                actual: matrix.ncols().max(matrix.nrows()),
            });
        }
        for i in 0..n {
            for j in 0..n {
                let delta = (matrix[(i, j)] - matrix[(j, i)].conj()).norm();
                if delta > tol_herm {
                    return Err(DspError::BadParameter {
                        name: "matrix",
                        message: format!(
                            "not Hermitian: |A[{i}][{j}] - conj(A[{j}][{i}])| = {delta:e}"
                        ),
                    });
                }
            }
        }
        if self.a.nrows() != n {
            let zero = Complex::new(0.0, 0.0);
            self.a.resize_mut(n, n, zero);
            self.v.resize_mut(n, n, zero);
            self.tmp.resize_mut(n, n, zero);
            self.prev_v.resize_mut(n, n, zero);
            self.eigenvectors.resize_mut(n, n, zero);
            self.eigenvalues.resize(n, 0.0);
            self.eig_raw.resize(n, 0.0);
            self.has_prev = false;
        }

        self.a.copy_from(matrix);
        symmetrize(&mut self.a);

        let warm_start = warm && self.has_prev;
        if warm_start {
            // B = Vᵖʳᵉᵛᴴ · A · Vᵖʳᵉᵛ is nearly diagonal when the matrix
            // changed little since the previous frame.
            for j in 0..n {
                for i in 0..n {
                    let mut acc = Complex::new(0.0, 0.0);
                    for k in 0..n {
                        acc += self.a[(i, k)] * self.prev_v[(k, j)];
                    }
                    self.tmp[(i, j)] = acc;
                }
            }
            for j in 0..n {
                for i in 0..n {
                    let mut acc = Complex::new(0.0, 0.0);
                    for k in 0..n {
                        acc += self.prev_v[(k, i)].conj() * self.tmp[(k, j)];
                    }
                    self.a[(i, j)] = acc;
                }
            }
            // The similarity transform is Hermitian only up to rounding.
            symmetrize(&mut self.a);
            self.v.copy_from(&self.prev_v);
        } else {
            self.v.fill(Complex::new(0.0, 0.0));
            for i in 0..n {
                self.v[(i, i)] = Complex::new(1.0, 0.0);
            }
        }

        let frob = self.a.iter().map(|c| c.norm_sqr()).sum::<f64>().sqrt();
        let stop = (frob * 1e-14).max(f64::MIN_POSITIVE);
        let mut converged = false;
        let mut sweeps = 0;
        for _sweep in 0..MAX_SWEEPS {
            let off: f64 = off_diagonal_norm(&self.a);
            if off <= stop {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    rotate(&mut self.a, &mut self.v, p, q, self.simd);
                }
            }
            sweeps += 1;
        }
        if !converged && off_diagonal_norm(&self.a) > stop {
            return Err(DspError::NoConvergence {
                routine: "hermitian Jacobi",
                iterations: MAX_SWEEPS,
            });
        }
        self.last_sweeps = sweeps;

        // Extract and sort descending (stable, like the original solver).
        self.order.clear();
        self.order.extend(0..n);
        for i in 0..n {
            self.eig_raw[i] = self.a[(i, i)].re;
        }
        let eig_raw = &self.eig_raw;
        self.order
            .sort_by(|&i, &j| eig_raw[j].partial_cmp(&eig_raw[i]).unwrap());
        for (dst, &src) in self.order.iter().enumerate() {
            self.eigenvalues[dst] = self.eig_raw[src];
            self.eigenvectors.set_column(dst, &self.v.column(src));
        }
        self.prev_v.copy_from(&self.eigenvectors);
        self.has_prev = true;
        Ok(())
    }

    /// Writes the noise-subspace projector `C = Eₙ Eₙᴴ` of the last
    /// decomposition into `out` (resized as needed).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadParameter`] when `signal_count >= n`.
    pub fn noise_projector_into(
        &self,
        signal_count: usize,
        out: &mut DMatrix<Complex<f64>>,
    ) -> Result<(), DspError> {
        let n = self.dim();
        if signal_count >= n {
            return Err(DspError::BadParameter {
                name: "signal_count",
                message: format!("must be < matrix dimension {n}, got {signal_count}"),
            });
        }
        if out.nrows() != n || out.ncols() != n {
            out.resize_mut(n, n, Complex::new(0.0, 0.0));
        }
        for i in 0..n {
            for j in i..n {
                let mut acc = Complex::new(0.0, 0.0);
                for k in signal_count..n {
                    acc += self.eigenvectors[(i, k)] * self.eigenvectors[(j, k)].conj();
                }
                out[(i, j)] = acc;
                if i != j {
                    out[(j, i)] = acc.conj();
                }
            }
        }
        Ok(())
    }
}

/// Forces exact Hermitian symmetry: real diagonal, conjugate-averaged
/// off-diagonal pairs.
fn symmetrize(a: &mut DMatrix<Complex<f64>>) {
    let n = a.nrows();
    for i in 0..n {
        a[(i, i)] = Complex::new(a[(i, i)].re, 0.0);
        for j in (i + 1)..n {
            let avg = (a[(i, j)] + a[(j, i)].conj()) * Complex::new(0.5, 0.0);
            a[(i, j)] = avg;
            a[(j, i)] = avg.conj();
        }
    }
}

fn off_diagonal_norm(a: &DMatrix<Complex<f64>>) -> f64 {
    let n = a.nrows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                sum += a[(i, j)].norm_sqr();
            }
        }
    }
    sum.sqrt()
}

/// Applies the complex Jacobi rotation annihilating `a[(p, q)]`.
///
/// With `a_pq = |a_pq| e^{iφ}`, the phase transform `D = diag(1, e^{-iφ})`
/// makes the 2×2 pivot real-symmetric, then the classic symmetric Schur
/// rotation (Golub & Van Loan §8.4) zeroes it. The combined unitary update is
/// accumulated into the eigenvector matrix.
fn rotate(
    a: &mut DMatrix<Complex<f64>>,
    v: &mut DMatrix<Complex<f64>>,
    p: usize,
    q: usize,
    simd: bool,
) {
    let apq = a[(p, q)];
    let abs = apq.norm();
    if abs == 0.0 {
        return;
    }
    let app = a[(p, p)].re;
    let aqq = a[(q, q)].re;
    let phase = apq / Complex::new(abs, 0.0); // e^{iφ}

    // Real symmetric Schur rotation for [[app, abs], [abs, aqq]].
    let tau = (aqq - app) / (2.0 * abs);
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    // Combined unitary U = D·J with D = diag(1, conj(phase)):
    //   U[p][p] = c            U[p][q] = s
    //   U[q][p] = -s·conj(phase)   U[q][q] = c·conj(phase)
    let upp = Complex::new(c, 0.0);
    let upq = Complex::new(s, 0.0);
    let uqp = -phase.conj() * s;
    let uqq = phase.conj() * c;

    let n = a.nrows();
    let lanes = simd && lanes_enabled() && n >= LANES;
    // A ← Uᴴ A U: first columns (A ← A·U), then rows (A ← Uᴴ·A).
    if lanes {
        rotate_columns(a.as_mut_slice(), n, p, q, upp, upq, uqp, uqq);
    } else {
        for i in 0..n {
            let aip = a[(i, p)];
            let aiq = a[(i, q)];
            a[(i, p)] = aip * upp + aiq * uqp;
            a[(i, q)] = aip * upq + aiq * uqq;
        }
    }
    for j in 0..n {
        let apj = a[(p, j)];
        let aqj = a[(q, j)];
        a[(p, j)] = upp.conj() * apj + uqp.conj() * aqj;
        a[(q, j)] = upq.conj() * apj + uqq.conj() * aqj;
    }
    // Clean up the pivot numerically.
    a[(p, q)] = Complex::new(0.0, 0.0);
    a[(q, p)] = Complex::new(0.0, 0.0);
    a[(p, p)] = Complex::new(a[(p, p)].re, 0.0);
    a[(q, q)] = Complex::new(a[(q, q)].re, 0.0);

    // V ← V·U.
    if lanes {
        rotate_columns(v.as_mut_slice(), n, p, q, upp, upq, uqp, uqq);
    } else {
        for i in 0..n {
            let vip = v[(i, p)];
            let viq = v[(i, q)];
            v[(i, p)] = vip * upp + viq * uqp;
            v[(i, q)] = vip * upq + viq * uqq;
        }
    }
}

/// Vectorized `M ← M·U` restricted to columns `p` and `q` of a column-major
/// `n×n` matrix. Columns are contiguous, so four rows move per lane pass;
/// per-lane arithmetic is the scalar update verbatim, hence bit-identical.
#[allow(clippy::too_many_arguments)]
fn rotate_columns(
    data: &mut [Complex<f64>],
    n: usize,
    p: usize,
    q: usize,
    upp: Complex<f64>,
    upq: Complex<f64>,
    uqp: Complex<f64>,
    uqq: Complex<f64>,
) {
    debug_assert!(p < q);
    let (head, tail) = data.split_at_mut(q * n);
    let colp = &mut head[p * n..p * n + n];
    let colq = &mut tail[..n];
    let (upp4, upq4) = (C64x4::splat(upp.re, upp.im), C64x4::splat(upq.re, upq.im));
    let (uqp4, uqq4) = (C64x4::splat(uqp.re, uqp.im), C64x4::splat(uqq.re, uqq.im));
    let mut i = 0;
    while i + LANES <= n {
        let aip = C64x4::from_complex(&colp[i..i + LANES]);
        let aiq = C64x4::from_complex(&colq[i..i + LANES]);
        (aip * upp4 + aiq * uqp4).write_complex(&mut colp[i..i + LANES]);
        (aip * upq4 + aiq * uqq4).write_complex(&mut colq[i..i + LANES]);
        i += LANES;
    }
    while i < n {
        let aip = colp[i];
        let aiq = colq[i];
        colp[i] = aip * upp + aiq * uqp;
        colq[i] = aip * upq + aiq * uqq;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalgebra::DVector;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn simd_rotations_bit_identical_to_scalar(
            parts in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 36),
        ) {
            // 8×8 Hermitian built from the random upper triangle.
            let n = 8;
            let mut h = DMatrix::zeros(n, n);
            let mut next = parts.iter();
            for i in 0..n {
                for j in i..n {
                    let &(re, im) = next.next().unwrap();
                    if i == j {
                        h[(i, i)] = Complex::new(re, 0.0);
                    } else {
                        h[(i, j)] = Complex::new(re, im);
                        h[(j, i)] = Complex::new(re, -im);
                    }
                }
            }
            let mut scalar_ws = EigenWorkspace::new();
            let mut simd_ws = EigenWorkspace::new();
            simd_ws.set_simd(true);
            scalar_ws.decompose(&h, 1e-6, false).unwrap();
            simd_ws.decompose(&h, 1e-6, false).unwrap();
            for (a, b) in scalar_ws
                .eigenvalues()
                .iter()
                .zip(simd_ws.eigenvalues().iter())
            {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in scalar_ws
                .eigenvectors()
                .iter()
                .zip(simd_ws.eigenvectors().iter())
            {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    fn random_hermitian(n: usize, seed: u64) -> DMatrix<Complex<f64>> {
        // Simple deterministic LCG so tests need no rand dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let g = DMatrix::from_fn(n, n, |_, _| Complex::new(next(), next()));
        let h = &g * g.adjoint(); // Hermitian positive semidefinite
        let d = DMatrix::from_fn(n, n, |i, j| {
            if i == j {
                Complex::new(next(), 0.0)
            } else {
                Complex::new(0.0, 0.0)
            }
        });
        h + d * Complex::new(0.1, 0.0) + DMatrix::identity(n, n) * Complex::new(0.01, 0.0)
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = DMatrix::from_diagonal(&DVector::from_vec(vec![
            Complex::new(3.0, 0.0),
            Complex::new(1.0, 0.0),
            Complex::new(2.0, 0.0),
        ]));
        let e = HermitianEigen::new(&a, 1e-12).unwrap();
        assert_eq!(e.eigenvalues(), &[3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2_real_symmetric() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = DMatrix::from_row_slice(
            2,
            2,
            &[
                Complex::new(2.0, 0.0),
                Complex::new(1.0, 0.0),
                Complex::new(1.0, 0.0),
                Complex::new(2.0, 0.0),
            ],
        );
        let e = HermitianEigen::new(&a, 1e-12).unwrap();
        assert!((e.eigenvalues()[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_complex_hermitian() {
        // [[1, i], [-i, 1]] has eigenvalues 2 and 0.
        let a = DMatrix::from_row_slice(
            2,
            2,
            &[
                Complex::new(1.0, 0.0),
                Complex::new(0.0, 1.0),
                Complex::new(0.0, -1.0),
                Complex::new(1.0, 0.0),
            ],
        );
        let e = HermitianEigen::new(&a, 1e-12).unwrap();
        assert!((e.eigenvalues()[0] - 2.0).abs() < 1e-12);
        assert!(e.eigenvalues()[1].abs() < 1e-12);
    }

    #[test]
    fn reconstruction_error_is_tiny() {
        for seed in [1, 2, 3, 4] {
            for n in [2, 3, 5, 8, 12] {
                let a = random_hermitian(n, seed);
                let e = HermitianEigen::new(&a, 1e-9).unwrap();
                let err = (&a - e.reconstruct()).norm() / a.norm();
                assert!(err < 1e-11, "n={n} seed={seed} err={err:e}");
            }
        }
    }

    #[test]
    fn eigenvectors_are_unitary() {
        let a = random_hermitian(7, 42);
        let e = HermitianEigen::new(&a, 1e-9).unwrap();
        let v = e.eigenvectors();
        let gram = v.adjoint() * v;
        let err = (&gram - DMatrix::<Complex<f64>>::identity(7, 7)).norm();
        assert!(err < 1e-11, "unitarity error {err:e}");
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = random_hermitian(9, 7);
        let e = HermitianEigen::new(&a, 1e-9).unwrap();
        for w in e.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = random_hermitian(6, 11);
        let trace: f64 = (0..6).map(|i| a[(i, i)].re).sum();
        let e = HermitianEigen::new(&a, 1e-9).unwrap();
        let sum: f64 = e.eigenvalues().iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn noise_subspace_is_orthogonal_to_signal_vectors() {
        // Rank-1 + εI: top eigenvector is the signal; noise subspace must be
        // orthogonal to it.
        let n = 6;
        let s = DVector::from_fn(n, |i, _| Complex::from_polar(1.0, 0.9 * i as f64));
        let a = &s * s.adjoint() * Complex::new(5.0, 0.0)
            + DMatrix::<Complex<f64>>::identity(n, n) * Complex::new(0.1, 0.0);
        let e = HermitianEigen::new(&a, 1e-9).unwrap();
        let en = e.noise_subspace(1).unwrap();
        assert_eq!(en.ncols(), n - 1);
        let proj = en.adjoint() * &s;
        assert!(proj.norm() < 1e-9, "projection norm {}", proj.norm());
    }

    #[test]
    fn rejects_non_square() {
        let a = DMatrix::<Complex<f64>>::zeros(2, 3);
        assert!(matches!(
            HermitianEigen::new(&a, 1e-12),
            Err(DspError::BadLength { .. })
        ));
    }

    #[test]
    fn rejects_non_hermitian() {
        let a = DMatrix::from_row_slice(
            2,
            2,
            &[
                Complex::new(1.0, 0.0),
                Complex::new(2.0, 0.0),
                Complex::new(5.0, 0.0),
                Complex::new(1.0, 0.0),
            ],
        );
        assert!(matches!(
            HermitianEigen::new(&a, 1e-12),
            Err(DspError::BadParameter { .. })
        ));
    }

    #[test]
    fn noise_subspace_bounds_checked() {
        let a = random_hermitian(4, 3);
        let e = HermitianEigen::new(&a, 1e-9).unwrap();
        assert!(e.noise_subspace(4).is_err());
        assert!(e.noise_subspace(3).is_ok());
    }

    #[test]
    fn one_by_one_matrix() {
        let a = DMatrix::from_element(1, 1, Complex::new(4.2, 0.0));
        let e = HermitianEigen::new(&a, 1e-12).unwrap();
        assert_eq!(e.eigenvalues(), &[4.2]);
        assert_eq!(e.dim(), 1);
    }

    #[test]
    fn workspace_cold_matches_wrapper_bit_exactly() {
        for seed in [1, 9, 17] {
            let a = random_hermitian(8, seed);
            let e = HermitianEigen::new(&a, 1e-9).unwrap();
            let mut ws = EigenWorkspace::new();
            ws.decompose(&a, 1e-9, false).unwrap();
            assert_eq!(ws.eigenvalues(), e.eigenvalues());
            assert_eq!(ws.eigenvectors(), e.eigenvectors());
        }
    }

    #[test]
    fn workspace_reuse_is_pure() {
        // A dirty workspace (previous decomposition of a different matrix)
        // must not change a cold decomposition.
        let a = random_hermitian(6, 5);
        let b = random_hermitian(6, 99);
        let mut clean = EigenWorkspace::new();
        clean.decompose(&a, 1e-9, false).unwrap();
        let mut dirty = EigenWorkspace::new();
        dirty.decompose(&b, 1e-9, false).unwrap();
        dirty.decompose(&a, 1e-9, false).unwrap();
        assert_eq!(clean.eigenvalues(), dirty.eigenvalues());
        assert_eq!(clean.eigenvectors(), dirty.eigenvectors());
    }

    #[test]
    fn warm_start_converges_faster_and_matches() {
        let a = random_hermitian(8, 13);
        // Small Hermitian perturbation, like consecutive radar frames.
        let delta = random_hermitian(8, 14) * Complex::new(1e-6, 0.0);
        let perturbed = &a + delta;

        let mut cold = EigenWorkspace::new();
        cold.decompose(&perturbed, 1e-9, false).unwrap();
        let cold_sweeps = cold.last_sweeps();

        let mut warm = EigenWorkspace::new();
        warm.decompose(&a, 1e-9, false).unwrap();
        warm.decompose(&perturbed, 1e-9, true).unwrap();
        let warm_sweeps = warm.last_sweeps();

        assert!(
            warm_sweeps < cold_sweeps,
            "warm {warm_sweeps} sweeps vs cold {cold_sweeps}"
        );
        let scale = perturbed.norm();
        for (w, c) in warm.eigenvalues().iter().zip(cold.eigenvalues()) {
            assert!((w - c).abs() <= 1e-12 * scale, "{w} vs {c}");
        }
    }

    #[test]
    fn warm_start_on_identical_matrix_takes_zero_sweeps() {
        let a = random_hermitian(8, 21);
        let mut ws = EigenWorkspace::new();
        ws.decompose(&a, 1e-9, false).unwrap();
        ws.decompose(&a, 1e-9, true).unwrap();
        assert_eq!(ws.last_sweeps(), 0);
    }

    #[test]
    fn warm_flag_without_history_runs_cold() {
        let a = random_hermitian(5, 3);
        let mut ws = EigenWorkspace::new();
        ws.decompose(&a, 1e-9, true).unwrap();
        let e = HermitianEigen::new(&a, 1e-9).unwrap();
        assert_eq!(ws.eigenvalues(), e.eigenvalues());
    }

    #[test]
    fn workspace_handles_dimension_change() {
        let mut ws = EigenWorkspace::new();
        ws.decompose(&random_hermitian(4, 1), 1e-9, false).unwrap();
        assert_eq!(ws.dim(), 4);
        ws.decompose(&random_hermitian(7, 2), 1e-9, true).unwrap();
        assert_eq!(ws.dim(), 7);
        let e = HermitianEigen::new(&random_hermitian(7, 2), 1e-9).unwrap();
        assert_eq!(ws.eigenvalues(), e.eigenvalues());
    }

    #[test]
    fn noise_projector_matches_explicit_product() {
        let a = random_hermitian(6, 77);
        let mut ws = EigenWorkspace::new();
        ws.decompose(&a, 1e-9, false).unwrap();
        let mut proj = DMatrix::zeros(0, 0);
        ws.noise_projector_into(2, &mut proj).unwrap();
        let e = HermitianEigen::new(&a, 1e-9).unwrap();
        let en = e.noise_subspace(2).unwrap();
        let explicit = &en * en.adjoint();
        assert!((&proj - &explicit).norm() < 1e-13);
        assert!(ws.noise_projector_into(6, &mut proj).is_err());
    }
}
