//! Structure-of-arrays batch-of-frames solve engine.
//!
//! The per-frame root-MUSIC pipeline spends most of its time in the
//! Durand–Kerner iteration: a chain of complex multiply/accumulate
//! operations whose data dependencies are *within* a frame, never across
//! frames. Four independent frames therefore map perfectly onto the
//! [`C64x4`] lanes — lane `k` carries frame `k`'s polynomial, and the
//! mul/add chains (the denominator product over `j ≠ i` and the Horner
//! evaluation) advance all four frames per instruction.
//!
//! [`FrameBatch`] is the container: one flat `f64` arena holding the
//! deinterleaved re/im planes of the monic coefficients and the root
//! estimates, lane-major so a [`C64x4::load`] of index `i` picks up the
//! four frames' `i`-th values in one shot.
//!
//! # Bit-identity contract
//!
//! [`FrameBatch::solve`] is bit-identical, per lane, to running the scalar
//! solve stage ([`RootMusic::solve_prepared`]) on each kernel
//! independently:
//!
//! * the vectorized portions are pure mul/add chains evaluated with the
//!   exact lanes of [`crate::simd`] (same IEEE operations, same order);
//! * everything involving `norm()` (libm `hypot`), complex division, and
//!   control-flow comparisons runs scalar per lane, replicating the
//!   constants and branch structure of the scalar Durand–Kerner verbatim
//!   (collision perturbation, mid-run shake, residual criterion, final
//!   acceptance);
//! * a lane freezes the moment its own convergence criterion fires, so its
//!   result does not depend on how the other lanes are still moving;
//! * Gauss–Seidel order is preserved — root `i`'s update reads the
//!   already-updated roots `j < i` of its own lane, exactly like the
//!   scalar sweep;
//! * a lane whose warm start fails falls back to the scalar cold retry,
//!   matching `Polynomial::roots_into`'s warm-fail → cold semantics.
//!
//! The batch path is a *dispatch* choice, not a numerics choice: groups
//! where lanes are disabled (cargo feature off, `bit_exact` options, or a
//! degenerate/mixed-degree group) run the scalar solve per kernel.

use nalgebra::Complex;

use crate::polynomial::MAX_ITERS;
use crate::rootmusic::solve_kernel;
use crate::scratch::KernelScratch;
use crate::simd::{lanes_enabled, C64x4, LANES};

/// Structure-of-arrays batch of up to [`LANES`] frames' solve state.
///
/// One flat arena holds four deinterleaved planes (coefficient re/im, root
/// re/im), each lane-major: element `i` of lane `k` lives at `i·LANES + k`.
/// The arena only ever grows, so a batch reused across steps allocates on
/// the first solve and never again.
#[derive(Debug, Default)]
pub struct FrameBatch {
    arena: Vec<f64>,
}

/// Per-lane scalar state for the batched Durand–Kerner run.
#[derive(Clone, Copy)]
struct LaneCtl {
    /// Lane still iterating.
    active: bool,
    /// Lane converged (solve succeeded).
    ok: bool,
    /// Lane was seeded from warm-start roots.
    warm: bool,
    /// Coefficient-magnitude scale of the lane's monic polynomial.
    scale: f64,
}

impl FrameBatch {
    /// Creates an empty batch; the arena is sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the root-MUSIC solve stage for up to [`LANES`] prepared
    /// kernels, four frames per vector instruction where lanes are enabled.
    ///
    /// Each kernel must have been through [`RootMusic::prepare_into`]; on
    /// return, successful kernels hold their roots (and refreshed warm-root
    /// history) exactly as if [`RootMusic::solve_prepared`] had run on them
    /// individually — bit-identical, see the module docs. The returned
    /// flags mirror the scalar stage's per-kernel `Result`.
    ///
    /// [`RootMusic::prepare_into`]: crate::rootmusic::RootMusic::prepare_into
    /// [`RootMusic::solve_prepared`]: crate::rootmusic::RootMusic::solve_prepared
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] kernels are passed.
    pub fn solve(&mut self, kernels: &mut [&mut KernelScratch]) -> [bool; LANES] {
        assert!(
            kernels.len() <= LANES,
            "FrameBatch::solve takes at most {LANES} kernels, got {}",
            kernels.len()
        );
        let mut ok = [false; LANES];
        let degree = kernels.first().map_or(0, |k| k.poly.degree());
        let use_lanes = lanes_enabled()
            && kernels.len() >= 2
            && degree > 0
            && kernels.iter().all(|k| k.options.simd_active())
            && kernels.iter().all(|k| k.poly.degree() == degree);
        if !use_lanes {
            for (k, scratch) in kernels.iter_mut().enumerate() {
                ok[k] = solve_kernel(scratch).is_ok();
            }
            return ok;
        }

        let n = degree;
        // Arena layout: coeff re | coeff im | root re | root im, lane-major.
        let coeff_plane = (n + 1) * LANES;
        let root_plane = n * LANES;
        let needed = 2 * coeff_plane + 2 * root_plane;
        if self.arena.len() < needed {
            self.arena.resize(needed, 0.0);
        }
        let (coeff, root) = self.arena.split_at_mut(2 * coeff_plane);
        let (c_re, c_im) = coeff.split_at_mut(coeff_plane);
        let (r_re, r_im) = root[..2 * root_plane].split_at_mut(root_plane);

        let mut ctl = [LaneCtl {
            active: false,
            ok: false,
            warm: false,
            scale: 1.0,
        }; LANES];

        // Load stage: per-lane monic normalization, scale, and initial
        // guesses — scalar `Polynomial::roots_into` preamble verbatim.
        for (k, scratch) in kernels.iter().enumerate() {
            let coeffs = scratch.poly.coefficients();
            let lead = coeffs[n];
            if lead.norm() < 1e-300 {
                continue; // scalar path errors out; lane stays failed
            }
            let mut radius_base = 0.0f64;
            let mut scale = 1.0f64;
            for (c, &raw) in coeffs.iter().enumerate() {
                let monic = raw / lead;
                c_re[c * LANES + k] = monic.re;
                c_im[c * LANES + k] = monic.im;
                scale = scale.max(monic.norm());
                if c < n {
                    radius_base = radius_base.max(monic.norm());
                }
            }
            let warm = scratch.options.warm_roots
                && scratch.has_prev_roots
                && scratch.prev_roots.len() == n
                && scratch
                    .prev_roots
                    .iter()
                    .all(|c| c.re.is_finite() && c.im.is_finite());
            if warm {
                for (i, &r) in scratch.prev_roots.iter().enumerate() {
                    r_re[i * LANES + k] = r.re;
                    r_im[i * LANES + k] = r.im;
                }
            } else {
                let radius = (1.0 + radius_base).min(2.0);
                for i in 0..n {
                    let g = Complex::from_polar(radius, 0.4 + 2.4 * i as f64);
                    r_re[i * LANES + k] = g.re;
                    r_im[i * LANES + k] = g.im;
                }
            }
            ctl[k] = LaneCtl {
                active: true,
                ok: false,
                warm,
                scale,
            };
        }

        durand_kerner_lanes(n, c_re, c_im, r_re, r_im, &mut ctl, kernels.len());

        // Unload stage: write back converged lanes and refresh their
        // warm-root history; warm lanes that stalled get the scalar cold
        // retry (`roots_into(None, …)`), matching the scalar fallback.
        for (k, scratch) in kernels.iter_mut().enumerate() {
            if ctl[k].ok {
                scratch.roots.clear();
                scratch
                    .roots
                    .extend((0..n).map(|i| Complex::new(r_re[i * LANES + k], r_im[i * LANES + k])));
                if scratch.options.warm_roots {
                    scratch.prev_roots.clear();
                    scratch.prev_roots.extend_from_slice(&scratch.roots);
                    scratch.has_prev_roots = true;
                }
                ok[k] = true;
            } else if ctl[k].warm {
                ok[k] = scratch.poly.roots_into(None, &mut scratch.roots).is_ok();
                if ok[k] && scratch.options.warm_roots {
                    scratch.prev_roots.clear();
                    scratch.prev_roots.extend_from_slice(&scratch.roots);
                    scratch.has_prev_roots = true;
                }
            }
        }
        ok
    }
}

/// The lane-batched Durand–Kerner iteration over monic coefficient planes.
///
/// Vector lanes carry the denominator product and Horner evaluation; every
/// norm, division, comparison, and perturbation is the scalar
/// `durand_kerner` body replicated per lane (see module docs).
fn durand_kerner_lanes(
    n: usize,
    c_re: &[f64],
    c_im: &[f64],
    r_re: &mut [f64],
    r_im: &mut [f64],
    ctl: &mut [LaneCtl; LANES],
    lanes_used: usize,
) {
    let tol = 1e-13;
    for iter in 0..MAX_ITERS {
        if !ctl.iter().any(|c| c.active) {
            return;
        }
        let mut max_step = [0.0f64; LANES];
        let mut res_conv = [true; LANES];
        for i in 0..n {
            let zi = C64x4::load(&r_re[i * LANES..], &r_im[i * LANES..]);
            let mut denom = C64x4::splat(1.0, 0.0);
            // Same product, same order, minus the per-step `j != i` branch.
            for j in (0..i).chain(i + 1..n) {
                let zj = C64x4::load(&r_re[j * LANES..], &r_im[j * LANES..]);
                denom = denom * (zi - zj);
            }
            let mut acc = C64x4::zero();
            for c in (0..=n).rev() {
                let coeff = C64x4::load(&c_re[c * LANES..], &c_im[c * LANES..]);
                acc = acc * zi + coeff;
            }
            for (k, lane) in ctl.iter().enumerate().take(lanes_used) {
                if !lane.active {
                    continue;
                }
                let d = Complex::new(denom.re.0[k], denom.im.0[k]);
                if d.norm() < 1e-280 {
                    // Perturb colliding estimates apart.
                    r_re[i * LANES + k] += 1e-6 * (i as f64 + 1.0);
                    r_im[i * LANES + k] += 1e-6;
                    max_step[k] = f64::MAX;
                    res_conv[k] = false;
                    continue;
                }
                let p_zi = Complex::new(acc.re.0[k], acc.im.0[k]);
                let z = Complex::new(zi.re.0[k], zi.im.0[k]);
                // One missed residual pins the flag for this sweep; the
                // remaining checks cannot flip it back, so skip them. The
                // scalar reference evaluates every check, but the skipped
                // norms feed nothing else — no root bit changes.
                if res_conv[k] && p_zi.norm() > 1e-13 * lane.scale * (1.0 + z.norm().powi(n as i32))
                {
                    res_conv[k] = false;
                }
                let delta = p_zi / d;
                let next = z - delta;
                r_re[i * LANES + k] = next.re;
                r_im[i * LANES + k] = next.im;
                max_step[k] = max_step[k].max(delta.norm());
            }
        }
        for (k, lane) in ctl.iter_mut().enumerate() {
            if lane.active && (max_step[k] < tol || res_conv[k]) {
                lane.active = false;
                lane.ok = true;
            }
        }
        // Occasional shake if wildly stalled (keeps determinism).
        if iter == MAX_ITERS / 2 {
            for (k, lane) in ctl.iter().enumerate().take(lanes_used) {
                if lane.active && max_step[k] > 1.0 {
                    for idx in 0..n {
                        let shake = Complex::from_polar(0.01, 1.7 * idx as f64);
                        r_re[idx * LANES + k] += shake.re;
                        r_im[idx * LANES + k] += shake.im;
                    }
                }
            }
        }
    }
    // Accept stalled lanes whose residuals are already small relative to
    // the coefficient scale.
    for (k, lane) in ctl.iter_mut().enumerate().take(lanes_used) {
        if !lane.active {
            continue;
        }
        lane.active = false;
        lane.ok = (0..n).all(|i| {
            let z = Complex::new(r_re[i * LANES + k], r_im[i * LANES + k]);
            let mut acc = Complex::new(0.0, 0.0);
            for c in (0..=n).rev() {
                acc = acc * z + Complex::new(c_re[c * LANES + k], c_im[c * LANES + k]);
            }
            acc.norm() <= 1e-8 * lane.scale * (1.0 + z.norm().powi(n as i32))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polynomial::Polynomial;
    use crate::scratch::ScratchOptions;
    use proptest::prelude::*;

    fn scratch_with_poly(coeffs: &[Complex<f64>], options: ScratchOptions) -> KernelScratch {
        let mut s = KernelScratch::new(options);
        s.poly.set_coefficients(coeffs);
        s
    }

    fn near_circle_poly(seed: u64) -> Vec<Complex<f64>> {
        // Conjugate-reciprocal root pairs near the unit circle, like the
        // polynomials root-MUSIC produces.
        let a = 0.3 + 0.05 * seed as f64;
        let b = 2.0 + 0.07 * seed as f64;
        let roots: Vec<Complex<f64>> = [a, b]
            .iter()
            .flat_map(|&w| {
                [
                    Complex::from_polar(0.97, w),
                    Complex::from_polar(1.0 / 0.97, w),
                ]
            })
            .collect();
        Polynomial::from_roots(&roots).coefficients().to_vec()
    }

    fn assert_same_solve(batch_out: &KernelScratch, scalar_out: &KernelScratch) {
        assert_eq!(batch_out.roots.len(), scalar_out.roots.len());
        for (b, s) in batch_out.roots.iter().zip(&scalar_out.roots) {
            assert_eq!(b.re.to_bits(), s.re.to_bits());
            assert_eq!(b.im.to_bits(), s.im.to_bits());
        }
        assert_eq!(batch_out.has_prev_roots, scalar_out.has_prev_roots);
        assert_eq!(batch_out.prev_roots, scalar_out.prev_roots);
    }

    #[test]
    fn lane_solve_bit_identical_to_scalar_cold() {
        let options = ScratchOptions::fast();
        let mut batch_scratches: Vec<KernelScratch> = (0..4)
            .map(|k| scratch_with_poly(&near_circle_poly(k), options))
            .collect();
        let mut scalar_scratches = batch_scratches.clone();

        let mut batch = FrameBatch::new();
        let mut refs: Vec<&mut KernelScratch> = batch_scratches.iter_mut().collect();
        let ok = batch.solve(&mut refs);

        for (k, scratch) in scalar_scratches.iter_mut().enumerate() {
            assert_eq!(ok[k], solve_kernel(scratch).is_ok());
        }
        for (b, s) in batch_scratches.iter().zip(&scalar_scratches) {
            assert_same_solve(b, s);
        }
    }

    #[test]
    fn lane_solve_bit_identical_to_scalar_warm() {
        let options = ScratchOptions::fast();
        let mut batch_scratches: Vec<KernelScratch> = (0..4)
            .map(|k| scratch_with_poly(&near_circle_poly(k), options))
            .collect();
        // First solve seeds the warm history, second exercises it.
        let mut batch = FrameBatch::new();
        let mut refs: Vec<&mut KernelScratch> = batch_scratches.iter_mut().collect();
        assert!(batch.solve(&mut refs).iter().take(4).all(|&b| b));
        let mut scalar_scratches = batch_scratches.clone();

        let mut refs: Vec<&mut KernelScratch> = batch_scratches.iter_mut().collect();
        let ok = batch.solve(&mut refs);
        for (k, scratch) in scalar_scratches.iter_mut().enumerate() {
            assert_eq!(ok[k], solve_kernel(scratch).is_ok());
        }
        for (b, s) in batch_scratches.iter().zip(&scalar_scratches) {
            assert_same_solve(b, s);
        }
    }

    #[test]
    fn partial_group_and_bit_exact_fall_back_to_scalar() {
        // A single-kernel group and a bit_exact group both take the scalar
        // path and still match the scalar stage exactly.
        for options in [ScratchOptions::fast(), ScratchOptions::bit_exact()] {
            let mut a = scratch_with_poly(&near_circle_poly(1), options);
            let mut b = a.clone();
            let mut batch = FrameBatch::new();
            let mut refs: Vec<&mut KernelScratch> = vec![&mut a];
            let ok = batch.solve(&mut refs);
            assert!(ok[0]);
            solve_kernel(&mut b).unwrap();
            assert_same_solve(&a, &b);
        }
    }

    #[test]
    fn degenerate_lead_lane_fails_like_scalar() {
        let options = ScratchOptions::fast();
        let mut good = scratch_with_poly(&near_circle_poly(0), options);
        let zero_lead = [
            Complex::new(1.0, 0.0),
            Complex::new(2.0, 0.0),
            Complex::new(0.0, 0.0),
        ];
        // set_coefficients trims trailing zeros, so force a degree mismatch
        // instead: a degenerate group falls back to scalar per kernel.
        let mut short = scratch_with_poly(&zero_lead[..2], options);
        let mut batch = FrameBatch::new();
        let mut refs: Vec<&mut KernelScratch> = vec![&mut good, &mut short];
        let ok = batch.solve(&mut refs);
        assert!(ok[0]);
        assert!(ok[1]); // degree-1 scalar solve succeeds
        assert_eq!(short.roots.len(), 1);
    }

    proptest! {
        #[test]
        fn lane_solve_matches_scalar_on_random_quartets(
            seeds in (0u64..64, 0u64..64, 0u64..64, 0u64..64),
            mags in (0.90f64..0.999, 0.90f64..0.999, 0.90f64..0.999, 0.90f64..0.999),
        ) {
            let seeds = [seeds.0, seeds.1, seeds.2, seeds.3];
            let mags = [mags.0, mags.1, mags.2, mags.3];
            let options = ScratchOptions::fast();
            let mut batch_scratches: Vec<KernelScratch> = seeds
                .iter()
                .zip(mags.iter())
                .map(|(&s, &mag)| {
                    let w0 = 0.2 + 0.04 * s as f64;
                    let roots = [
                        Complex::from_polar(mag, w0),
                        Complex::from_polar(1.0 / mag, w0),
                        Complex::from_polar(mag, w0 + 1.9),
                        Complex::from_polar(1.0 / mag, w0 + 1.9),
                    ];
                    scratch_with_poly(
                        Polynomial::from_roots(&roots).coefficients(),
                        options,
                    )
                })
                .collect();
            let mut scalar_scratches = batch_scratches.clone();

            let mut batch = FrameBatch::new();
            let mut refs: Vec<&mut KernelScratch> = batch_scratches.iter_mut().collect();
            let ok = batch.solve(&mut refs);
            for (k, scratch) in scalar_scratches.iter_mut().enumerate() {
                prop_assert_eq!(ok[k], solve_kernel(scratch).is_ok());
            }
            for (b, s) in batch_scratches.iter().zip(&scalar_scratches) {
                prop_assert_eq!(b.roots.len(), s.roots.len());
                for (rb, rs) in b.roots.iter().zip(&s.roots) {
                    prop_assert_eq!(rb.re.to_bits(), rs.re.to_bits());
                    prop_assert_eq!(rb.im.to_bits(), rs.im.to_bits());
                }
            }
        }
    }
}
