//! A leader/follower pair advanced in lockstep — the physical ground truth
//! the radar observes and the attacker manipulates.

use argus_control::acc::{AccConfig, AccOutput};
use argus_control::ControlError;
use argus_sim::time::Step;
use argus_sim::units::{Meters, MetersPerSecond, Seconds};

use crate::follower::AccFollower;
use crate::kinematics::LongitudinalState;
use crate::leader::LeaderProfile;

/// The paper's initial conditions: leader at 65 mph, follower set-speed
/// 67 mph, 100 m initial gap.
#[derive(Debug, Clone, PartialEq)]
pub struct VehiclePair {
    leader: LongitudinalState,
    follower: AccFollower,
    profile: LeaderProfile,
    dt: Seconds,
    step: Step,
}

impl VehiclePair {
    /// Creates a pair with explicit initial conditions.
    ///
    /// # Errors
    ///
    /// Propagates ACC configuration errors.
    pub fn new(
        acc: AccConfig,
        profile: LeaderProfile,
        initial_gap: Meters,
        leader_speed: MetersPerSecond,
        follower_speed: MetersPerSecond,
    ) -> Result<Self, ControlError> {
        if initial_gap.value() <= 0.0 {
            return Err(ControlError::BadParameter {
                name: "initial_gap",
                message: format!("must be positive, got {initial_gap}"),
            });
        }
        let dt = acc.dt;
        Ok(Self {
            leader: LongitudinalState::new(initial_gap, leader_speed),
            follower: AccFollower::new(acc, Meters(0.0), follower_speed)?,
            profile,
            dt,
            step: Step::ZERO,
        })
    }

    /// The paper's case-study setup with a given leader profile:
    /// 65 mph leader, 67 mph set speed, 100 m gap, 1 s sampling.
    ///
    /// # Errors
    ///
    /// Propagates ACC configuration errors.
    pub fn paper(profile: LeaderProfile) -> Result<Self, ControlError> {
        Self::new(
            AccConfig::paper(MetersPerSecond::from_mph(67.0)),
            profile,
            Meters(100.0),
            MetersPerSecond::from_mph(65.0),
            MetersPerSecond::from_mph(65.0),
        )
    }

    /// Current step index.
    pub fn step_index(&self) -> Step {
        self.step
    }

    /// True inter-vehicle gap (leader position − follower position).
    pub fn gap(&self) -> Meters {
        self.leader.position - self.follower.state().position
    }

    /// True relative speed `Δv = v_L − v_F` (positive = gap opening).
    pub fn relative_speed(&self) -> MetersPerSecond {
        self.leader.velocity - self.follower.speed()
    }

    /// Leader state.
    pub fn leader(&self) -> &LongitudinalState {
        &self.leader
    }

    /// Follower vehicle.
    pub fn follower(&self) -> &AccFollower {
        &self.follower
    }

    /// `true` once the vehicles have collided (gap ≤ 0).
    pub fn collided(&self) -> bool {
        self.gap().value() <= 0.0
    }

    /// Advances both vehicles one step. The follower's controller consumes
    /// the supplied measurements (which may be clean, corrupted, or
    /// estimated); the leader follows its profile.
    pub fn advance(
        &mut self,
        measured_gap: Option<Meters>,
        measured_relative_speed: MetersPerSecond,
    ) -> AccOutput {
        let out = self.follower.step(measured_gap, measured_relative_speed);
        let a_leader = self.profile.acceleration_at(self.step);
        self.leader.step(a_leader, self.dt);
        self.step = self.step.next();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_initial_conditions() {
        let p = VehiclePair::paper(LeaderProfile::ConstantSpeed).unwrap();
        assert!((p.gap().value() - 100.0).abs() < 1e-12);
        assert!((p.leader().velocity.value() - 29.0574).abs() < 1e-3);
        assert_eq!(p.relative_speed().value(), 0.0);
        assert!(!p.collided());
    }

    #[test]
    fn truth_fed_follower_avoids_collision_in_both_scenarios() {
        for profile in [
            LeaderProfile::paper_constant_decel(),
            LeaderProfile::paper_decel_then_accel(Step(150)),
        ] {
            let mut pair = VehiclePair::paper(profile.clone()).unwrap();
            let mut min_gap = f64::MAX;
            for _ in 0..300 {
                let gap = pair.gap();
                let dv = pair.relative_speed();
                pair.advance(Some(gap), dv);
                min_gap = min_gap.min(pair.gap().value());
            }
            assert!(min_gap > 4.0, "{profile:?}: min gap {min_gap}");
        }
    }

    #[test]
    fn frozen_fake_measurements_cause_collision_course() {
        // Feed the follower a permanently huge gap: it cruises at set speed
        // while the leader brakes → the true gap collapses (this is what an
        // undetected attack does).
        let mut pair = VehiclePair::paper(LeaderProfile::paper_constant_decel()).unwrap();
        let mut min_gap = f64::MAX;
        for _ in 0..300 {
            pair.advance(Some(Meters(190.0)), MetersPerSecond(0.0));
            min_gap = min_gap.min(pair.gap().value());
            if pair.collided() {
                break;
            }
        }
        assert!(
            pair.collided() || min_gap < 5.0,
            "expected a (near-)collision, min gap {min_gap}"
        );
    }

    #[test]
    fn step_counter_advances() {
        let mut pair = VehiclePair::paper(LeaderProfile::ConstantSpeed).unwrap();
        assert_eq!(pair.step_index(), Step(0));
        pair.advance(None, MetersPerSecond(0.0));
        assert_eq!(pair.step_index(), Step(1));
    }

    #[test]
    fn zero_gap_rejected() {
        let r = VehiclePair::new(
            AccConfig::paper(MetersPerSecond(30.0)),
            LeaderProfile::ConstantSpeed,
            Meters(0.0),
            MetersPerSecond(29.0),
            MetersPerSecond(29.0),
        );
        assert!(r.is_err());
    }
}
