//! The Intelligent Driver Model (IDM).
//!
//! The paper builds its traffic-flow layer "by enhancing the
//! intelligent-driver model (IDM) with the hierarchical control model of
//! \[the\] ACC equipped follower". IDM gives the acceleration of a human-like
//! driver:
//!
//! ```text
//! a = a_max · [1 − (v/v₀)^δ − (s*/s)²]
//! s* = s₀ + v·T + v·Δv_closing / (2·√(a_max·b))
//! ```
//!
//! where `s` is the gap, `v` the own speed, `Δv_closing = v − v_lead` the
//! closing speed, `v₀` the desired speed, `T` the time headway, `s₀` the
//! jam distance, and `b` the comfortable braking deceleration.

use serde::{Deserialize, Serialize};

use argus_sim::units::{Meters, MetersPerSecond, MetersPerSecondSquared, Seconds};

/// IDM parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdmParams {
    /// Desired (free-flow) speed `v₀`.
    pub desired_speed: MetersPerSecond,
    /// Safe time headway `T`.
    pub time_headway: Seconds,
    /// Maximum acceleration `a_max`.
    pub max_accel: MetersPerSecondSquared,
    /// Comfortable braking deceleration `b` (positive).
    pub comfortable_brake: MetersPerSecondSquared,
    /// Minimum (jam) distance `s₀`.
    pub jam_distance: Meters,
    /// Acceleration exponent δ.
    pub exponent: f64,
}

impl IdmParams {
    /// Typical passenger-car parameters (Treiber's reference values) at the
    /// given desired speed.
    pub fn passenger_car(desired_speed: MetersPerSecond) -> Self {
        Self {
            desired_speed,
            time_headway: Seconds(1.5),
            max_accel: MetersPerSecondSquared(1.4),
            comfortable_brake: MetersPerSecondSquared(2.0),
            jam_distance: Meters(2.0),
            exponent: 4.0,
        }
    }

    /// Desired dynamic gap `s*` at own speed `v` against a leader at
    /// `v_lead`.
    pub fn desired_gap(&self, v: MetersPerSecond, v_lead: MetersPerSecond) -> Meters {
        let closing = v.value() - v_lead.value();
        let dynamic = v.value() * closing
            / (2.0 * (self.max_accel.value() * self.comfortable_brake.value()).sqrt());
        Meters(
            (self.jam_distance.value() + v.value() * self.time_headway.value() + dynamic)
                .max(self.jam_distance.value()),
        )
    }

    /// IDM acceleration with a leader at gap `s` and speed `v_lead`.
    ///
    /// # Panics
    ///
    /// Panics if the gap is not strictly positive.
    pub fn acceleration(
        &self,
        v: MetersPerSecond,
        gap: Meters,
        v_lead: MetersPerSecond,
    ) -> MetersPerSecondSquared {
        assert!(gap.value() > 0.0, "gap must be positive (collision?)");
        let free = (v.value() / self.desired_speed.value()).powf(self.exponent);
        let interaction = (self.desired_gap(v, v_lead).value() / gap.value()).powi(2);
        MetersPerSecondSquared(self.max_accel.value() * (1.0 - free - interaction))
    }

    /// IDM acceleration on an empty road (no leader).
    pub fn free_road_acceleration(&self, v: MetersPerSecond) -> MetersPerSecondSquared {
        let free = (v.value() / self.desired_speed.value()).powf(self.exponent);
        MetersPerSecondSquared(self.max_accel.value() * (1.0 - free))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> IdmParams {
        IdmParams::passenger_car(MetersPerSecond(30.0))
    }

    #[test]
    fn accelerates_from_standstill_on_free_road() {
        let p = params();
        let a = p.free_road_acceleration(MetersPerSecond(0.0));
        assert!((a.value() - 1.4).abs() < 1e-12, "full a_max from rest");
    }

    #[test]
    fn no_acceleration_at_desired_speed_on_free_road() {
        let p = params();
        let a = p.free_road_acceleration(MetersPerSecond(30.0));
        assert!(a.value().abs() < 1e-12);
    }

    #[test]
    fn brakes_when_tailgating() {
        let p = params();
        let a = p.acceleration(MetersPerSecond(30.0), Meters(5.0), MetersPerSecond(30.0));
        assert!(
            a.value() < -2.0,
            "severe braking expected, got {}",
            a.value()
        );
    }

    #[test]
    fn at_desired_gap_matched_speed_idm_identity_holds() {
        // At s = s* with matched speeds, IDM gives exactly
        // a = a_max·(1 − (v/v₀)^δ − 1) = −a_max·(v/v₀)^δ.
        let p = params();
        let v = MetersPerSecond(25.0);
        let gap = p.desired_gap(v, v);
        let a = p.acceleration(v, gap, v);
        let expected = -1.4 * (25.0f64 / 30.0).powi(4);
        assert!((a.value() - expected).abs() < 1e-12, "a = {}", a.value());
    }

    #[test]
    fn closing_speed_increases_desired_gap() {
        let p = params();
        let v = MetersPerSecond(30.0);
        let approaching = p.desired_gap(v, MetersPerSecond(20.0));
        let matched = p.desired_gap(v, MetersPerSecond(30.0));
        assert!(approaching.value() > matched.value());
    }

    #[test]
    fn desired_gap_never_below_jam_distance() {
        let p = params();
        // Receding leader (negative closing term) must not shrink s* below s₀.
        let g = p.desired_gap(MetersPerSecond(1.0), MetersPerSecond(30.0));
        assert!(g.value() >= p.jam_distance.value());
    }

    #[test]
    fn equilibrium_following_in_closed_loop() {
        // A single IDM car behind a constant-speed leader settles at a
        // stable gap with matched speed.
        let p = params();
        let v_lead = 22.0;
        let mut v = 30.0f64;
        let mut gap = 100.0f64;
        let dt = 0.5;
        for _ in 0..2000 {
            let a = p.acceleration(
                MetersPerSecond(v),
                Meters(gap.max(0.1)),
                MetersPerSecond(v_lead),
            );
            v = (v + a.value() * dt).max(0.0);
            gap += (v_lead - v) * dt;
        }
        assert!((v - v_lead).abs() < 0.1, "speed {v}");
        let eq_gap = p
            .desired_gap(MetersPerSecond(v_lead), MetersPerSecond(v_lead))
            .value();
        assert!(
            (gap - eq_gap / (1.0 - (v_lead / 30.0f64).powi(4)).sqrt()).abs() < 8.0,
            "gap {gap} vs equilibrium ≈ {eq_gap}"
        );
    }

    #[test]
    #[should_panic(expected = "gap must be positive")]
    fn zero_gap_rejected() {
        let p = params();
        let _ = p.acceleration(MetersPerSecond(10.0), Meters(0.0), MetersPerSecond(10.0));
    }
}
