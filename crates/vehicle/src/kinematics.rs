//! Discrete longitudinal kinematics (paper Eqns 15–17).
//!
//! ```text
//! v[k+1] = v[k] + a[k]·dt                      (Eqn 15/16)
//! x[k+1] = x[k] + v[k]·dt + ½·a[k]·dt²         (Eqn 17)
//! ```
//!
//! Speeds are clamped at zero — the paper's ground vehicles do not reverse.

use serde::{Deserialize, Serialize};

use argus_sim::units::{Meters, MetersPerSecond, MetersPerSecondSquared, Seconds};

/// Longitudinal state of one vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongitudinalState {
    /// Position along the lane.
    pub position: Meters,
    /// Forward speed (never negative).
    pub velocity: MetersPerSecond,
    /// Commanded/actual acceleration applied over the next step.
    pub acceleration: MetersPerSecondSquared,
}

impl LongitudinalState {
    /// Creates a state at `position` with `velocity` and zero acceleration.
    ///
    /// # Panics
    ///
    /// Panics if the velocity is negative.
    pub fn new(position: Meters, velocity: MetersPerSecond) -> Self {
        assert!(
            velocity.value() >= 0.0,
            "initial velocity must be non-negative"
        );
        Self {
            position,
            velocity,
            acceleration: MetersPerSecondSquared(0.0),
        }
    }

    /// Advances one step of `dt` under acceleration `a` (Eqns 15–17),
    /// clamping the speed at zero (and zeroing the distance contribution of
    /// the clamped part of the step).
    pub fn step(&mut self, a: MetersPerSecondSquared, dt: Seconds) {
        let dt_v = dt.value();
        let v0 = self.velocity.value();
        let v1 = v0 + a.value() * dt_v;
        if v1 >= 0.0 {
            self.position += Meters(v0 * dt_v + 0.5 * a.value() * dt_v * dt_v);
            self.velocity = MetersPerSecond(v1);
        } else {
            // Vehicle stops partway through the step: integrate only until
            // v = 0 (time v0/|a|), then hold.
            let t_stop = if a.value() != 0.0 {
                -v0 / a.value()
            } else {
                0.0
            };
            self.position += Meters(v0 * t_stop + 0.5 * a.value() * t_stop * t_stop);
            self.velocity = MetersPerSecond(0.0);
        }
        self.acceleration = a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_velocity_motion() {
        let mut s = LongitudinalState::new(Meters(0.0), MetersPerSecond(10.0));
        for _ in 0..5 {
            s.step(MetersPerSecondSquared(0.0), Seconds(1.0));
        }
        assert!((s.position.value() - 50.0).abs() < 1e-12);
        assert!((s.velocity.value() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn constant_acceleration_motion() {
        let mut s = LongitudinalState::new(Meters(0.0), MetersPerSecond(0.0));
        s.step(MetersPerSecondSquared(2.0), Seconds(1.0));
        // x = ½·a·t² = 1, v = 2.
        assert!((s.position.value() - 1.0).abs() < 1e-12);
        assert!((s.velocity.value() - 2.0).abs() < 1e-12);
        assert_eq!(s.acceleration.value(), 2.0);
    }

    #[test]
    fn paper_deceleration_profile() {
        // 65 mph decelerating at −0.1082 m/s² for 118 s (the attack window).
        let v0 = MetersPerSecond::from_mph(65.0);
        let mut s = LongitudinalState::new(Meters(0.0), v0);
        for _ in 0..118 {
            s.step(MetersPerSecondSquared(-0.1082), Seconds(1.0));
        }
        let expected_v = v0.value() - 0.1082 * 118.0;
        assert!((s.velocity.value() - expected_v).abs() < 1e-9);
        assert!(s.velocity.value() > 0.0, "still moving at end of window");
    }

    #[test]
    fn speed_clamps_at_zero() {
        let mut s = LongitudinalState::new(Meters(0.0), MetersPerSecond(1.0));
        s.step(MetersPerSecondSquared(-5.0), Seconds(1.0));
        assert_eq!(s.velocity.value(), 0.0);
        // Stopped after 0.2 s: x = 1·0.2 − ½·5·0.04 = 0.1.
        assert!((s.position.value() - 0.1).abs() < 1e-12);
        // Further braking keeps it parked.
        s.step(MetersPerSecondSquared(-5.0), Seconds(1.0));
        assert_eq!(s.velocity.value(), 0.0);
        assert!((s.position.value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn smaller_dt_converges_to_continuous_solution() {
        // Integrating v̇ = a with the exact per-step update is exact for
        // constant a regardless of dt; check consistency across dt choices.
        let run = |dt: f64, steps: usize| {
            let mut s = LongitudinalState::new(Meters(0.0), MetersPerSecond(20.0));
            for _ in 0..steps {
                s.step(MetersPerSecondSquared(-1.0), Seconds(dt));
            }
            s.position.value()
        };
        let coarse = run(1.0, 10);
        let fine = run(0.01, 1000);
        assert!((coarse - fine).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_initial_velocity_rejected() {
        let _ = LongitudinalState::new(Meters(0.0), MetersPerSecond(-1.0));
    }
}
