//! Leader-vehicle speed profiles.
//!
//! The paper's two scenarios (§6.2):
//!
//! 1. constant deceleration at −0.1082 m/s² (Figure 2);
//! 2. deceleration at −0.1082 m/s² followed by acceleration at
//!    +0.012 m/s² (Figure 3).

use serde::{Deserialize, Serialize};

use argus_sim::time::Step;
use argus_sim::units::MetersPerSecondSquared;

/// A deterministic acceleration schedule for the leader vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LeaderProfile {
    /// Hold the initial speed.
    ConstantSpeed,
    /// Apply one constant acceleration for the whole run.
    ConstantAccel(MetersPerSecondSquared),
    /// Piecewise-constant: each `(from_step, accel)` entry applies from its
    /// step (inclusive) until the next entry. Entries must be sorted by
    /// step.
    Phased(Vec<(Step, MetersPerSecondSquared)>),
}

impl LeaderProfile {
    /// Figure 2's profile: constant −0.1082 m/s².
    pub fn paper_constant_decel() -> Self {
        LeaderProfile::ConstantAccel(MetersPerSecondSquared(-0.1082))
    }

    /// Figure 3's profile: −0.1082 m/s² until `switch`, +0.012 m/s² after.
    pub fn paper_decel_then_accel(switch: Step) -> Self {
        LeaderProfile::Phased(vec![
            (Step(0), MetersPerSecondSquared(-0.1082)),
            (switch, MetersPerSecondSquared(0.012)),
        ])
    }

    /// Acceleration commanded at step `k`.
    ///
    /// # Panics
    ///
    /// Panics for a [`LeaderProfile::Phased`] profile whose entries are
    /// unsorted or which does not start at step 0.
    pub fn acceleration_at(&self, k: Step) -> MetersPerSecondSquared {
        match self {
            LeaderProfile::ConstantSpeed => MetersPerSecondSquared(0.0),
            LeaderProfile::ConstantAccel(a) => *a,
            LeaderProfile::Phased(phases) => {
                assert!(
                    phases.first().map(|(s, _)| *s) == Some(Step(0)),
                    "phased profile must start at step 0"
                );
                assert!(
                    phases.windows(2).all(|w| w[0].0 < w[1].0),
                    "phased profile must be sorted by step"
                );
                phases
                    .iter()
                    .rev()
                    .find(|(from, _)| k >= *from)
                    .map(|(_, a)| *a)
                    .expect("profile covers step 0 onward")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_speed_is_zero_accel() {
        let p = LeaderProfile::ConstantSpeed;
        assert_eq!(p.acceleration_at(Step(0)).value(), 0.0);
        assert_eq!(p.acceleration_at(Step(299)).value(), 0.0);
    }

    #[test]
    fn paper_constant_decel_value() {
        let p = LeaderProfile::paper_constant_decel();
        assert_eq!(p.acceleration_at(Step(100)).value(), -0.1082);
    }

    #[test]
    fn phased_switches_at_boundary() {
        let p = LeaderProfile::paper_decel_then_accel(Step(150));
        assert_eq!(p.acceleration_at(Step(149)).value(), -0.1082);
        assert_eq!(p.acceleration_at(Step(150)).value(), 0.012);
        assert_eq!(p.acceleration_at(Step(299)).value(), 0.012);
    }

    #[test]
    fn phased_first_entry_applies_from_zero() {
        let p = LeaderProfile::paper_decel_then_accel(Step(150));
        assert_eq!(p.acceleration_at(Step(0)).value(), -0.1082);
    }

    #[test]
    #[should_panic(expected = "must start at step 0")]
    fn phased_must_cover_zero() {
        let p = LeaderProfile::Phased(vec![(Step(10), MetersPerSecondSquared(1.0))]);
        let _ = p.acceleration_at(Step(20));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn phased_must_be_sorted() {
        let p = LeaderProfile::Phased(vec![
            (Step(0), MetersPerSecondSquared(1.0)),
            (Step(50), MetersPerSecondSquared(2.0)),
            (Step(20), MetersPerSecondSquared(3.0)),
        ]);
        let _ = p.acceleration_at(Step(20));
    }
}
