//! The ACC-equipped follower vehicle.
//!
//! Wires the hierarchical ACC controller (`argus-control`) to the
//! longitudinal plant: each step the controller consumes the (possibly
//! estimated, possibly corrupted) radar measurements plus the trusted own
//! speed, and its lower-level output drives the kinematics.

use argus_control::acc::{AccConfig, AccController, AccOutput};
use argus_control::ControlError;
use argus_sim::units::{Meters, MetersPerSecond, Seconds};

use crate::kinematics::LongitudinalState;

/// An ACC-controlled follower.
#[derive(Debug, Clone, PartialEq)]
pub struct AccFollower {
    controller: AccController,
    state: LongitudinalState,
    dt: Seconds,
}

impl AccFollower {
    /// Creates a follower at `position` with initial `velocity` using the
    /// given ACC configuration.
    ///
    /// # Errors
    ///
    /// Propagates controller configuration errors.
    pub fn new(
        config: AccConfig,
        position: Meters,
        velocity: MetersPerSecond,
    ) -> Result<Self, ControlError> {
        let dt = config.dt;
        Ok(Self {
            controller: AccController::new(config)?,
            state: LongitudinalState::new(position, velocity),
            dt,
        })
    }

    /// Current longitudinal state.
    pub fn state(&self) -> &LongitudinalState {
        &self.state
    }

    /// Own (trusted) speed `v_F` — the paper assumes the ego speed sensor
    /// is not attackable.
    pub fn speed(&self) -> MetersPerSecond {
        self.state.velocity
    }

    /// The embedded controller.
    pub fn controller(&self) -> &AccController {
        &self.controller
    }

    /// Advances one step given the radar-reported gap and relative speed
    /// (`None` gap = no target). Returns the controller diagnostics.
    pub fn step(
        &mut self,
        measured_gap: Option<Meters>,
        measured_relative_speed: MetersPerSecond,
    ) -> AccOutput {
        let own = self.speed();
        let out = self
            .controller
            .step(measured_gap, measured_relative_speed, own);
        self.state.step(out.actual_accel, self.dt);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_sim::units::MetersPerSecondSquared;

    fn follower(v_mph: f64) -> AccFollower {
        let v = MetersPerSecond::from_mph(v_mph);
        AccFollower::new(
            AccConfig::paper(MetersPerSecond::from_mph(67.0)),
            Meters(0.0),
            v,
        )
        .unwrap()
    }

    #[test]
    fn cruises_to_set_speed_without_target() {
        let mut f = follower(60.0);
        for _ in 0..200 {
            f.step(None, MetersPerSecond(0.0));
        }
        let v_set = MetersPerSecond::from_mph(67.0).value();
        assert!(
            (f.speed().value() - v_set).abs() < 0.1,
            "converged to {} vs {v_set}",
            f.speed().value()
        );
    }

    #[test]
    fn follows_decelerating_leader_without_collision() {
        // The paper's nominal (attack-free) scenario: leader at 65 mph
        // braking at −0.1082 m/s², follower set to 67 mph, initial gap 100 m.
        let mut leader = LongitudinalState::new(Meters(100.0), MetersPerSecond::from_mph(65.0));
        let mut f = follower(65.0);
        let mut min_gap = f64::MAX;
        for _ in 0..300 {
            let gap = leader.position - f.state().position;
            let dv = leader.velocity - f.speed();
            f.step(Some(gap), dv);
            leader.step(MetersPerSecondSquared(-0.1082), Seconds(1.0));
            min_gap = min_gap.min((leader.position - f.state().position).value());
        }
        assert!(min_gap > 5.0, "minimum gap {min_gap} too small");
        // Follower must have slowed well below its set speed.
        assert!(f.speed().value() < MetersPerSecond::from_mph(60.0).value());
    }

    #[test]
    fn fake_large_gap_keeps_speed_mode() {
        let mut f = follower(65.0);
        let out = f.step(Some(Meters(250.0)), MetersPerSecond(0.0));
        assert_eq!(out.mode, argus_control::acc::AccMode::SpeedControl);
    }

    #[test]
    fn state_advances_each_step() {
        let mut f = follower(65.0);
        let x0 = f.state().position;
        f.step(None, MetersPerSecond(0.0));
        assert!(f.state().position > x0);
    }
}
