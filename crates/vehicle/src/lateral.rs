//! Lateral (planar) vehicle dynamics — the paper's §7 future work
//! ("extend our case study … to include a non-linear system model with
//! lateral dynamics"), implemented as the standard kinematic bicycle model:
//!
//! ```text
//! ẋ = v·cos(ψ)        ψ̇ = v·tan(δ)/L
//! ẏ = v·sin(ψ)        v̇ = a
//! ```
//!
//! with position `(x, y)`, heading ψ, speed `v`, wheelbase `L` and front
//! steering angle δ. Integration is explicit Euler at the simulation step —
//! adequate at automotive speeds and the 1–100 ms steps used here.

use serde::{Deserialize, Serialize};

use argus_sim::units::{Meters, MetersPerSecond, MetersPerSecondSquared, Radians, Seconds};

/// Planar pose and motion state of a bicycle-model vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanarState {
    /// Longitudinal world position.
    pub x: Meters,
    /// Lateral world position.
    pub y: Meters,
    /// Heading angle (0 = along +x).
    pub heading: Radians,
    /// Forward speed (never negative).
    pub speed: MetersPerSecond,
}

/// Kinematic bicycle model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BicycleModel {
    wheelbase: Meters,
    max_steer: Radians,
    state: PlanarState,
}

impl BicycleModel {
    /// Creates a vehicle with the given wheelbase and steering limit,
    /// starting from `state`.
    ///
    /// # Panics
    ///
    /// Panics if the wheelbase or steering limit is not strictly positive,
    /// or the initial speed is negative.
    pub fn new(wheelbase: Meters, max_steer: Radians, state: PlanarState) -> Self {
        assert!(wheelbase.value() > 0.0, "wheelbase must be positive");
        assert!(
            max_steer.value() > 0.0 && max_steer.value() < std::f64::consts::FRAC_PI_2,
            "steering limit must be in (0, π/2)"
        );
        assert!(state.speed.value() >= 0.0, "speed must be non-negative");
        Self {
            wheelbase,
            max_steer,
            state,
        }
    }

    /// A typical passenger car: 2.7 m wheelbase, ±30° steering.
    pub fn passenger_car(state: PlanarState) -> Self {
        Self::new(Meters(2.7), Radians(30f64.to_radians()), state)
    }

    /// Current state.
    pub fn state(&self) -> &PlanarState {
        &self.state
    }

    /// Wheelbase `L`.
    pub fn wheelbase(&self) -> Meters {
        self.wheelbase
    }

    /// Steering limit.
    pub fn max_steer(&self) -> Radians {
        self.max_steer
    }

    /// Advances one step with steering angle `steer` (clamped to the limit)
    /// and longitudinal acceleration `accel`; speed clamps at zero.
    pub fn step(
        &mut self,
        steer: Radians,
        accel: MetersPerSecondSquared,
        dt: Seconds,
    ) -> &PlanarState {
        let delta = steer
            .value()
            .clamp(-self.max_steer.value(), self.max_steer.value());
        let v = self.state.speed.value();
        let psi = self.state.heading.value();
        let dt_v = dt.value();
        self.state.x += Meters(v * psi.cos() * dt_v);
        self.state.y += Meters(v * psi.sin() * dt_v);
        self.state.heading = Radians(wrap_angle(
            psi + v * delta.tan() / self.wheelbase.value() * dt_v,
        ));
        self.state.speed = MetersPerSecond((v + accel.value() * dt_v).max(0.0));
        &self.state
    }

    /// Turning radius at a given steering angle: `R = L / tan(δ)`
    /// (`None` for straight-ahead steering).
    pub fn turning_radius(&self, steer: Radians) -> Option<Meters> {
        let t = steer.value().tan();
        if t.abs() < 1e-12 {
            None
        } else {
            Some(Meters(self.wheelbase.value() / t.abs()))
        }
    }
}

/// Wraps an angle to `(-π, π]`.
fn wrap_angle(a: f64) -> f64 {
    let mut a =
        (a + std::f64::consts::PI).rem_euclid(2.0 * std::f64::consts::PI) - std::f64::consts::PI;
    if a <= -std::f64::consts::PI {
        a += 2.0 * std::f64::consts::PI;
    }
    a
}

/// Stanley lane-keeping controller: steers to cancel the heading error plus
/// the cross-track error term `atan(k·e/v)` against a straight lane along
/// `y = lane_center`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneKeeping {
    gain: f64,
    lane_center: Meters,
    softening: f64,
}

impl LaneKeeping {
    /// Creates a controller with cross-track gain `gain` for a lane centred
    /// at `lane_center`.
    ///
    /// # Panics
    ///
    /// Panics if the gain is not strictly positive.
    pub fn new(gain: f64, lane_center: Meters) -> Self {
        assert!(gain > 0.0, "gain must be positive");
        Self {
            gain,
            lane_center,
            softening: 1.0,
        }
    }

    /// Lane centre being tracked.
    pub fn lane_center(&self) -> Meters {
        self.lane_center
    }

    /// Retargets the controller to a new lane centre (lane change).
    pub fn set_lane_center(&mut self, center: Meters) {
        self.lane_center = center;
    }

    /// Steering command for the current vehicle state.
    pub fn steer(&self, state: &PlanarState) -> Radians {
        let heading_error = -state.heading.value(); // lane runs along +x
        let cross_track = self.lane_center.value() - state.y.value();
        let speed = state.speed.value().max(0.0);
        let correction = (self.gain * cross_track / (self.softening + speed)).atan();
        Radians(wrap_angle(heading_error + correction))
    }

    /// Absolute cross-track error of a state.
    pub fn cross_track_error(&self, state: &PlanarState) -> Meters {
        Meters((self.lane_center.value() - state.y.value()).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cruising(y: f64, heading: f64, speed: f64) -> PlanarState {
        PlanarState {
            x: Meters(0.0),
            y: Meters(y),
            heading: Radians(heading),
            speed: MetersPerSecond(speed),
        }
    }

    #[test]
    fn straight_line_motion() {
        let mut car = BicycleModel::passenger_car(cruising(0.0, 0.0, 20.0));
        for _ in 0..10 {
            car.step(Radians(0.0), MetersPerSecondSquared(0.0), Seconds(0.1));
        }
        assert!((car.state().x.value() - 20.0).abs() < 1e-9);
        assert!(car.state().y.value().abs() < 1e-12);
        assert!(car.state().heading.value().abs() < 1e-12);
    }

    #[test]
    fn constant_steer_traces_a_circle() {
        let mut car = BicycleModel::passenger_car(cruising(0.0, 0.0, 10.0));
        let steer = Radians(0.1);
        let radius = car.turning_radius(steer).unwrap().value();
        // Drive half the circumference in small steps.
        let dt = 0.001;
        let steps = (std::f64::consts::PI * radius / 10.0 / dt) as usize;
        for _ in 0..steps {
            car.step(steer, MetersPerSecondSquared(0.0), Seconds(dt));
        }
        // After half a turn the heading flipped and y ≈ 2R.
        assert!(
            (car.state().heading.value().abs() - std::f64::consts::PI).abs() < 0.05,
            "heading {}",
            car.state().heading.value()
        );
        assert!(
            (car.state().y.value() - 2.0 * radius).abs() < 0.5,
            "y {} vs 2R {}",
            car.state().y.value(),
            2.0 * radius
        );
    }

    #[test]
    fn steering_is_clamped() {
        let mut car = BicycleModel::passenger_car(cruising(0.0, 0.0, 10.0));
        let mut clamped = car;
        car.step(Radians(0.5), MetersPerSecondSquared(0.0), Seconds(0.1));
        clamped.step(Radians(10.0), MetersPerSecondSquared(0.0), Seconds(0.1));
        // 0.5 rad < 30° is false (30° ≈ 0.524), so 0.5 passes; 10 clamps to
        // the limit, which is larger than 0.5 → more yaw.
        assert!(clamped.state().heading.value() > car.state().heading.value());
        let limit = BicycleModel::passenger_car(cruising(0.0, 0.0, 10.0))
            .max_steer()
            .value();
        assert!(limit < 0.53 && limit > 0.52);
    }

    #[test]
    fn lane_keeping_converges_from_offset() {
        let mut car = BicycleModel::passenger_car(cruising(2.5, 0.0, 25.0));
        let ctrl = LaneKeeping::new(2.0, Meters(0.0));
        for _ in 0..600 {
            let steer = ctrl.steer(car.state());
            car.step(steer, MetersPerSecondSquared(0.0), Seconds(0.02));
        }
        assert!(
            ctrl.cross_track_error(car.state()).value() < 0.05,
            "cross-track {}",
            ctrl.cross_track_error(car.state()).value()
        );
        assert!(car.state().heading.value().abs() < 0.02);
    }

    #[test]
    fn lane_change_tracks_new_center() {
        let mut car = BicycleModel::passenger_car(cruising(0.0, 0.0, 20.0));
        let mut ctrl = LaneKeeping::new(2.0, Meters(0.0));
        ctrl.set_lane_center(Meters(3.5)); // one lane to the left
        for _ in 0..800 {
            let steer = ctrl.steer(car.state());
            car.step(steer, MetersPerSecondSquared(0.0), Seconds(0.02));
        }
        assert!((car.state().y.value() - 3.5).abs() < 0.05);
    }

    #[test]
    fn speed_clamps_at_zero() {
        let mut car = BicycleModel::passenger_car(cruising(0.0, 0.0, 1.0));
        for _ in 0..30 {
            car.step(Radians(0.0), MetersPerSecondSquared(-2.0), Seconds(0.1));
        }
        assert_eq!(car.state().speed.value(), 0.0);
    }

    #[test]
    fn angle_wrapping() {
        assert!((wrap_angle(3.0 * std::f64::consts::PI) - std::f64::consts::PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * std::f64::consts::PI) - std::f64::consts::PI).abs() < 1e-12);
        assert_eq!(wrap_angle(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "wheelbase must be positive")]
    fn zero_wheelbase_rejected() {
        let _ = BicycleModel::new(Meters(0.0), Radians(0.5), cruising(0.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "gain must be positive")]
    fn zero_gain_rejected() {
        let _ = LaneKeeping::new(0.0, Meters(0.0));
    }
}
