//! # argus-vehicle — car-following models (paper §6.1)
//!
//! The longitudinal vehicle substrate for the case study:
//!
//! * [`kinematics`] — discrete longitudinal integration (Eqns 15–17).
//! * [`idm`] — the Intelligent Driver Model the paper's traffic-flow layer
//!   builds on.
//! * [`leader`] — leader-vehicle speed profiles: constant deceleration
//!   (Figure 2) and deceleration-then-acceleration (Figure 3).
//! * [`follower`] — the ACC-equipped follower: hierarchical controller
//!   (from `argus-control`) driving the plant kinematics.
//! * [`pair`] — a leader/follower pair advanced in lockstep, exposing the
//!   ground-truth gap and relative speed the radar measures.
//! * [`lateral`] — the paper's §7 future work: a kinematic bicycle model
//!   with a Stanley lane-keeping controller for planar scenarios.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod follower;
pub mod idm;
pub mod kinematics;
pub mod lateral;
pub mod leader;
pub mod pair;

pub use follower::AccFollower;
pub use idm::IdmParams;
pub use kinematics::LongitudinalState;
pub use lateral::{BicycleModel, LaneKeeping, PlanarState};
pub use leader::LeaderProfile;
pub use pair::VehiclePair;
