//! Property-based tests for the vehicle models.

use argus_sim::time::Step;
use argus_sim::units::*;
use argus_vehicle::idm::IdmParams;
use argus_vehicle::kinematics::LongitudinalState;
use argus_vehicle::leader::LeaderProfile;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Position never decreases and speed never goes negative, whatever
    /// acceleration sequence is applied.
    #[test]
    fn kinematics_forward_only(
        v0 in 0.0f64..40.0,
        accels in proptest::collection::vec(-8.0f64..4.0, 1..100),
    ) {
        let mut s = LongitudinalState::new(Meters(0.0), MetersPerSecond(v0));
        let mut prev_pos = 0.0;
        for &a in &accels {
            s.step(MetersPerSecondSquared(a), Seconds(1.0));
            prop_assert!(s.velocity.value() >= 0.0);
            prop_assert!(s.position.value() >= prev_pos - 1e-12);
            prev_pos = s.position.value();
        }
    }

    /// Constant-acceleration kinematics match the closed form while the
    /// vehicle keeps moving.
    #[test]
    fn kinematics_closed_form(v0 in 1.0f64..40.0, a in -0.2f64..2.0, n in 1usize..50) {
        let mut s = LongitudinalState::new(Meters(0.0), MetersPerSecond(v0));
        prop_assume!(v0 + a * n as f64 > 0.0);
        for _ in 0..n {
            s.step(MetersPerSecondSquared(a), Seconds(1.0));
        }
        let t = n as f64;
        prop_assert!((s.velocity.value() - (v0 + a * t)).abs() < 1e-9);
        prop_assert!((s.position.value() - (v0 * t + 0.5 * a * t * t)).abs() < 1e-9);
    }

    /// The IDM desired gap is never below the jam distance and grows with
    /// closing speed.
    #[test]
    fn idm_desired_gap_properties(v in 0.0f64..40.0, v_lead in 0.0f64..40.0) {
        let p = IdmParams::passenger_car(MetersPerSecond(33.0));
        let gap = p.desired_gap(MetersPerSecond(v), MetersPerSecond(v_lead));
        prop_assert!(gap.value() >= p.jam_distance.value() - 1e-12);
        // Slower leader (more closing) at same own speed ⇒ larger s*.
        if v_lead >= 1.0 {
            let tighter = p.desired_gap(MetersPerSecond(v), MetersPerSecond(v_lead - 1.0));
            prop_assert!(tighter.value() >= gap.value() - 1e-9);
        }
    }

    /// IDM acceleration is bounded above by a_max and decreases as the gap
    /// shrinks.
    #[test]
    fn idm_acceleration_monotone_in_gap(
        v in 0.5f64..35.0,
        g1 in 5.0f64..200.0,
        extra in 1.0f64..100.0,
    ) {
        let p = IdmParams::passenger_car(MetersPerSecond(33.0));
        let tight = p.acceleration(MetersPerSecond(v), Meters(g1), MetersPerSecond(v));
        let loose = p.acceleration(MetersPerSecond(v), Meters(g1 + extra), MetersPerSecond(v));
        prop_assert!(tight.value() <= loose.value() + 1e-12);
        prop_assert!(loose.value() <= p.max_accel.value() + 1e-12);
    }

    /// Phased leader profiles select the phase whose start is the largest
    /// one not exceeding k.
    #[test]
    fn leader_profile_phase_selection(
        breaks in proptest::collection::btree_set(1u64..299, 1..5),
        k in 0u64..300,
    ) {
        let mut phases = vec![(Step(0), MetersPerSecondSquared(0.0))];
        for (i, &b) in breaks.iter().enumerate() {
            phases.push((Step(b), MetersPerSecondSquared(i as f64 + 1.0)));
        }
        let profile = LeaderProfile::Phased(phases.clone());
        let expected = phases
            .iter()
            .rev()
            .find(|(from, _)| Step(k) >= *from)
            .map(|(_, a)| a.value())
            .unwrap();
        prop_assert_eq!(profile.acceleration_at(Step(k)).value(), expected);
    }
}
