//! Per-vehicle serving sessions.
//!
//! A session owns one pipeline configured at `Hello` time: the paper's
//! single-radar [`SecurePipeline`], or — when the handshake negotiates a
//! [`FusionMode`] — the attack-aware [`FusedPipeline`] (predictor kind and
//! fusion mode negotiated per session; schedule, threshold and sample
//! period fixed by the server). It validates step monotonicity, converts
//! wire observations back into [`RadarObservation`]s — re-running the DSP
//! extraction on a shard-owned [`FrameScratch`] arena for raw-baseband
//! frames — and can export/import its full state as a [`SnapshotMsg`], which
//! is what lets a client survive eviction and reconnect without losing the
//! pipeline's learned state. A fused session accepts a v1 (CRA-only)
//! snapshot and restores with fusion state at defaults, so pre-fusion
//! clients can upgrade across a reconnect.

use argus_core::{
    AuxObservation, FusedOutput, FusedPipeline, FusionMode, FusionParams, MeasurementSource,
    PipelineOutput, SecurePipeline,
};
use argus_cra::CraDetector;
use argus_dsp::{Complex, FrameScratch};
use argus_radar::fmcw::BeatPair;
use argus_radar::receiver::{Radar, RadarMeasurement, RadarObservation};
use argus_sim::time::Step;
use argus_sim::units::{Hertz, Meters, MetersPerSecond, Seconds, Watts};

use crate::wire::{
    ErrorCode, FusedState, Hello, Observation, ObservationBody, RawFrame, SafeMeasurement,
    SnapshotMsg, VerdictMsg,
};

/// Everything a session needs that is not negotiated per connection: the
/// CRA schedule and threshold (they must match the client's radar), the
/// dead-reckoning sample period, and the radar model used to re-extract
/// raw-baseband frames server-side.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Challenge schedule shared with every client radar.
    pub schedule: argus_cra::ChallengeSchedule,
    /// Detection threshold for Algorithm 2's comparator.
    pub detection_threshold: Watts,
    /// Sample period for dead reckoning.
    pub dt: Seconds,
}

impl SessionConfig {
    /// The paper's configuration (schedule, LRR2 threshold, 1 s sampling).
    pub fn paper() -> Self {
        Self {
            schedule: argus_cra::ChallengeSchedule::paper(),
            detection_threshold: argus_radar::RadarConfig::bosch_lrr2().detection_threshold,
            dt: Seconds(1.0),
        }
    }
}

/// A session-level failure, carrying the wire error code and whether the
/// connection can survive it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionError {
    /// The code reported to the peer.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
    /// `false` when the session can continue after reporting the error.
    pub fatal: bool,
}

impl SessionError {
    fn fatal(code: ErrorCode, detail: impl Into<String>) -> Self {
        Self {
            code,
            detail: detail.into(),
            fatal: true,
        }
    }

    fn recoverable(code: ErrorCode, detail: impl Into<String>) -> Self {
        Self {
            code,
            detail: detail.into(),
            fatal: false,
        }
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.detail)
    }
}

impl std::error::Error for SessionError {}

/// The per-session defense stack, negotiated by the `Hello`'s fusion byte.
// Inline on purpose: the fused arm is ~1 KiB and sits in the per-step
// hot path of every fused session; boxing it would trade that for a
// heap indirection on each observation.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Pipeline {
    /// The paper's single-radar CRA + RLS pipeline.
    Secure(SecurePipeline),
    /// The attack-aware fusion stack wrapped around it.
    Fused(FusedPipeline),
}

/// One vehicle's serving state.
#[derive(Debug)]
pub struct Session {
    vehicle_id: u64,
    pipeline: Pipeline,
    next_step: u64,
}

impl Session {
    /// Builds a fresh session from a handshake.
    pub fn new(hello: &Hello, cfg: &SessionConfig) -> Result<Self, SessionError> {
        let predictor = hello
            .predictor
            .build()
            .map_err(|e| SessionError::fatal(ErrorCode::UnsupportedPredictor, e.to_string()))?;
        let detector = CraDetector::new(cfg.schedule.clone(), cfg.detection_threshold);
        let cra = SecurePipeline::new(detector, predictor, cfg.dt);
        let pipeline = match hello.fusion {
            FusionMode::CraOnly => Pipeline::Secure(cra),
            mode => Pipeline::Fused(FusedPipeline::new(cra, FusionParams::paper(mode), cfg.dt)),
        };
        Ok(Self {
            vehicle_id: hello.vehicle_id,
            pipeline,
            next_step: 0,
        })
    }

    /// The vehicle label from the handshake.
    pub fn vehicle_id(&self) -> u64 {
        self.vehicle_id
    }

    /// The step the session expects next.
    pub fn next_step(&self) -> u64 {
        self.next_step
    }

    /// The fusion mode this session negotiated at `Hello`.
    pub fn fusion(&self) -> FusionMode {
        match &self.pipeline {
            Pipeline::Secure(_) => FusionMode::CraOnly,
            Pipeline::Fused(p) => p.mode(),
        }
    }

    /// Exports the full session state for the client to hold across
    /// reconnects.
    pub fn snapshot(&self) -> SnapshotMsg {
        let (state, fused) = match &self.pipeline {
            Pipeline::Secure(p) => (p.snapshot(), None),
            Pipeline::Fused(p) => {
                let s = p.snapshot();
                let fused = FusedState::from_snapshot(&s);
                (s.cra, Some(fused))
            }
        };
        SnapshotMsg {
            vehicle_id: self.vehicle_id,
            next_step: self.next_step,
            state,
            fused,
        }
    }

    /// Restores a previously exported state. On failure the session is
    /// unchanged (the pipeline restore is transactional).
    ///
    /// A fused session accepts a snapshot without a fusion tail — the v1
    /// shape — and resets its fusion state to defaults; a CRA-only session
    /// rejects a fused snapshot because it cannot honor the extra state.
    pub fn restore(&mut self, snap: &SnapshotMsg) -> Result<(), SessionError> {
        if snap.vehicle_id != self.vehicle_id {
            return Err(SessionError::fatal(
                ErrorCode::BadHandshake,
                format!(
                    "snapshot belongs to vehicle {}, session is vehicle {}",
                    snap.vehicle_id, self.vehicle_id
                ),
            ));
        }
        fn malformed(e: impl std::fmt::Display) -> SessionError {
            SessionError::fatal(ErrorCode::Malformed, e.to_string())
        }
        match (&mut self.pipeline, &snap.fused) {
            (Pipeline::Secure(p), None) => p.restore(&snap.state).map_err(malformed)?,
            (Pipeline::Secure(_), Some(_)) => {
                return Err(SessionError::fatal(
                    ErrorCode::BadHandshake,
                    "snapshot carries fusion state but the session negotiated cra_only",
                ));
            }
            (Pipeline::Fused(p), Some(f)) => p
                .restore(&f.clone().into_snapshot(snap.state.clone()))
                .map_err(malformed)?,
            (Pipeline::Fused(p), None) => p.restore_v1(&snap.state).map_err(malformed)?,
        }
        self.next_step = snap.next_step;
        Ok(())
    }

    /// Processes one wire observation into the (verdict, safe measurement)
    /// response pair. `radar` and `scratch` are shard-owned: the radar model
    /// re-extracts raw-baseband frames, and with bit-exact scratch options
    /// the result is independent of whatever frames other sessions ran
    /// through the same arena.
    pub fn observe(
        &mut self,
        obs: &Observation,
        radar: &Radar,
        scratch: &mut FrameScratch,
    ) -> Result<(VerdictMsg, SafeMeasurement), SessionError> {
        if obs.step < self.next_step {
            return Err(SessionError::recoverable(
                ErrorCode::BadStep,
                format!(
                    "observation step {} is behind the session's next step {}",
                    obs.step, self.next_step
                ),
            ));
        }
        let measurement = match &obs.body {
            ObservationBody::Empty => None,
            ObservationBody::Extracted(m) => Some(RadarMeasurement {
                distance: Meters(m.distance),
                range_rate: MetersPerSecond(m.range_rate),
                beats: BeatPair {
                    up: Hertz(m.beat_up),
                    down: Hertz(m.beat_down),
                },
                snr: m.snr,
            }),
            ObservationBody::Raw(raw) => Some(self.extract_raw(raw, radar, scratch)?),
        };
        let radar_obs = RadarObservation {
            measurement,
            received_power: Watts(obs.received_power),
            jammed: obs.jammed,
        };
        let response = match &mut self.pipeline {
            Pipeline::Secure(p) => {
                let out = p.process(Step(obs.step), &radar_obs, MetersPerSecond(obs.own_speed));
                respond(obs.step, &out)
            }
            Pipeline::Fused(p) => {
                let aux = AuxObservation {
                    camera_range: obs.aux_camera,
                    v2v_leader_speed: obs.aux_v2v,
                };
                let out = p.process(
                    Step(obs.step),
                    &radar_obs,
                    &aux,
                    MetersPerSecond(obs.own_speed),
                );
                respond_fused(obs.step, &out)
            }
        };
        self.next_step = obs.step + 1;
        Ok(response)
    }

    /// Server-side DSP offload: refill the shard arena's sweep buffers from
    /// the wire samples, rerun the extraction, then apply the client's
    /// measurement-noise realization — the same two additions the client
    /// performs, on the same operands, so the result is bit-identical.
    fn extract_raw(
        &self,
        raw: &RawFrame,
        radar: &Radar,
        scratch: &mut FrameScratch,
    ) -> Result<RadarMeasurement, SessionError> {
        let expected = 2 * radar.config().samples_per_sweep;
        if raw.up.len() != expected || raw.down.len() != expected {
            return Err(SessionError::fatal(
                ErrorCode::Malformed,
                format!(
                    "raw frame has {}/{} interleaved samples, radar expects {expected}",
                    raw.up.len(),
                    raw.down.len()
                ),
            ));
        }
        fill_sweep(&mut scratch.up, &raw.up);
        fill_sweep(&mut scratch.down, &raw.down);
        let mut m = radar.measurement_from_baseband(raw.snr, scratch);
        m.distance += Meters(raw.noise_distance);
        m.range_rate += MetersPerSecond(raw.noise_range_rate);
        Ok(m)
    }
}

/// De-interleaves `re, im, re, im, …` into the arena's complex sweep buffer.
fn fill_sweep(buf: &mut Vec<Complex<f64>>, interleaved: &[f64]) {
    buf.clear();
    buf.extend(
        interleaved
            .chunks_exact(2)
            .map(|pair| Complex::new(pair[0], pair[1])),
    );
}

/// Packs one fused-pipeline output into its response frame pair. The CRA
/// verdict stays authoritative; the served values are the fused ones. The
/// source tag reports `Radar` when the distance is measurement-backed
/// (at least one channel passed the fusion gate this step), `Estimated`
/// when it is dead-reckoned or CRA-fallback, `Unavailable` when cold.
pub fn respond_fused(step: u64, out: &FusedOutput) -> (VerdictMsg, SafeMeasurement) {
    let source = if out.distance.is_none() {
        MeasurementSource::Unavailable
    } else if out.fused.is_some() {
        MeasurementSource::Radar
    } else {
        MeasurementSource::Estimated
    };
    (
        VerdictMsg {
            step,
            verdict: out.cra.verdict,
        },
        SafeMeasurement {
            step,
            source,
            distance: out.distance.map(|d| d.value()),
            relative_speed: out.relative_speed.value(),
            control_distance: out.control_distance.map(|d| d.value()),
        },
    )
}

/// Packs one pipeline output into its response frame pair.
fn respond(step: u64, out: &PipelineOutput) -> (VerdictMsg, SafeMeasurement) {
    (
        VerdictMsg {
            step,
            verdict: out.verdict,
        },
        SafeMeasurement {
            step,
            source: out.source,
            distance: out.distance.map(|d| d.value()),
            relative_speed: out.relative_speed.value(),
            control_distance: out.control_distance.map(|d| d.value()),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ExtractedMeasurement;
    use argus_core::PredictorKind;
    use argus_dsp::ScratchOptions;

    fn hello(kind: PredictorKind) -> Hello {
        Hello {
            vehicle_id: 11,
            predictor: kind,
            max_inflight: 0,
            resume: false,
            fusion: FusionMode::CraOnly,
        }
    }

    fn fused_hello(mode: FusionMode) -> Hello {
        Hello {
            fusion: mode,
            ..hello(PredictorKind::RlsTrend)
        }
    }

    fn clean_obs(step: u64, distance: f64) -> Observation {
        Observation {
            step,
            own_speed: 29.0,
            received_power: 1e-12,
            jammed: false,
            body: ObservationBody::Extracted(ExtractedMeasurement {
                distance,
                range_rate: -0.2,
                beat_up: 66_000.0,
                beat_down: 67_000.0,
                snr: 100.0,
            }),
            aux_camera: None,
            aux_v2v: None,
        }
    }

    /// A fused observation: honest camera/V2V channels tracking the same
    /// truth as the radar (leader at ego speed minus 0.2 m/s).
    fn fused_obs(step: u64, distance: f64) -> Observation {
        Observation {
            aux_camera: Some(distance + 0.25),
            aux_v2v: Some(29.0 - 0.2),
            ..clean_obs(step, distance)
        }
    }

    fn harness() -> (Session, Radar, FrameScratch) {
        let session = Session::new(&hello(PredictorKind::RlsTrend), &SessionConfig::paper())
            .expect("session builds");
        let radar = Radar::new(argus_radar::RadarConfig::bosch_lrr2_signal());
        let scratch = FrameScratch::new(ScratchOptions::bit_exact());
        (session, radar, scratch)
    }

    #[test]
    fn session_matches_direct_pipeline() {
        let (mut session, radar, mut scratch) = harness();
        let cfg = SessionConfig::paper();
        let detector = CraDetector::new(cfg.schedule.clone(), cfg.detection_threshold);
        let mut direct =
            SecurePipeline::new(detector, PredictorKind::RlsTrend.build().unwrap(), cfg.dt);
        for k in 0..40u64 {
            let challenge = cfg.schedule.is_challenge(Step(k));
            let obs = if challenge {
                Observation {
                    step: k,
                    own_speed: 29.0,
                    received_power: 0.0,
                    jammed: false,
                    body: ObservationBody::Empty,
                    aux_camera: None,
                    aux_v2v: None,
                }
            } else {
                clean_obs(k, 100.0 - 0.2 * k as f64)
            };
            let (verdict, safe) = session.observe(&obs, &radar, &mut scratch).expect("ok");
            let radar_obs = RadarObservation {
                measurement: match &obs.body {
                    ObservationBody::Empty => None,
                    ObservationBody::Extracted(m) => Some(RadarMeasurement {
                        distance: Meters(m.distance),
                        range_rate: MetersPerSecond(m.range_rate),
                        beats: BeatPair {
                            up: Hertz(m.beat_up),
                            down: Hertz(m.beat_down),
                        },
                        snr: m.snr,
                    }),
                    ObservationBody::Raw(_) => unreachable!(),
                },
                received_power: Watts(obs.received_power),
                jammed: obs.jammed,
            };
            let out = direct.process(Step(k), &radar_obs, MetersPerSecond(obs.own_speed));
            assert_eq!(verdict.verdict, out.verdict, "step {k}");
            assert_eq!(safe.distance, out.distance.map(|d| d.value()), "step {k}");
            assert_eq!(
                safe.control_distance,
                out.control_distance.map(|d| d.value()),
                "step {k}"
            );
        }
        assert_eq!(session.next_step(), 40);
    }

    #[test]
    fn stale_step_is_recoverable() {
        let (mut session, radar, mut scratch) = harness();
        session
            .observe(&clean_obs(0, 100.0), &radar, &mut scratch)
            .expect("first step ok");
        let err = session
            .observe(&clean_obs(0, 100.0), &radar, &mut scratch)
            .expect_err("replayed step rejected");
        assert_eq!(err.code, ErrorCode::BadStep);
        assert!(!err.fatal);
        // The session is intact and accepts the next step.
        session
            .observe(&clean_obs(1, 99.8), &radar, &mut scratch)
            .expect("session survives");
    }

    #[test]
    fn snapshot_restore_roundtrips_through_the_wire_codec() {
        let (mut session, radar, mut scratch) = harness();
        for k in 0..25u64 {
            let _ = session.observe(&clean_obs(k, 100.0 - 0.2 * k as f64), &radar, &mut scratch);
        }
        let snap = session.snapshot();

        // Through the codec, into a fresh session.
        let mut buf = Vec::new();
        crate::wire::encode_into(&crate::wire::Message::Snapshot(snap.clone()), &mut buf);
        let (decoded, _) = crate::wire::decode_frame(&buf).expect("decodes");
        let crate::wire::Message::Snapshot(snap2) = decoded else {
            panic!("wrong message");
        };
        assert_eq!(snap, snap2);

        let mut resumed =
            Session::new(&hello(PredictorKind::RlsTrend), &SessionConfig::paper()).unwrap();
        resumed.restore(&snap2).expect("restores");
        assert_eq!(resumed.next_step(), session.next_step());

        // Both continue identically.
        for k in 25..60u64 {
            let obs = clean_obs(k, 100.0 - 0.2 * k as f64);
            let a = session.observe(&obs, &radar, &mut scratch).expect("ok");
            let b = resumed.observe(&obs, &radar, &mut scratch).expect("ok");
            assert_eq!(a, b, "step {k}");
        }
        assert_eq!(session.snapshot(), resumed.snapshot());
    }

    #[test]
    fn restore_rejects_foreign_vehicle() {
        let (mut session, _, _) = harness();
        let mut snap = session.snapshot();
        snap.vehicle_id += 1;
        let err = session.restore(&snap).expect_err("must reject");
        assert_eq!(err.code, ErrorCode::BadHandshake);
    }

    #[test]
    fn malformed_raw_frame_is_rejected() {
        let (mut session, radar, mut scratch) = harness();
        let obs = Observation {
            step: 0,
            own_speed: 29.0,
            received_power: 1e-12,
            jammed: false,
            body: ObservationBody::Raw(RawFrame {
                snr: 10.0,
                noise_distance: 0.0,
                noise_range_rate: 0.0,
                up: vec![1.0; 10],
                down: vec![1.0; 10],
            }),
            aux_camera: None,
            aux_v2v: None,
        };
        let err = session
            .observe(&obs, &radar, &mut scratch)
            .expect_err("short frame rejected");
        assert_eq!(err.code, ErrorCode::Malformed);
    }

    /// Builds the local twin of a fused gateway session.
    fn local_fused(mode: FusionMode) -> FusedPipeline {
        let cfg = SessionConfig::paper();
        let detector = CraDetector::new(cfg.schedule.clone(), cfg.detection_threshold);
        let cra = SecurePipeline::new(detector, PredictorKind::RlsTrend.build().unwrap(), cfg.dt);
        FusedPipeline::new(cra, FusionParams::paper(mode), cfg.dt)
    }

    #[test]
    fn fused_session_matches_direct_fused_pipeline() {
        for mode in [FusionMode::Fused, FusionMode::FusedIds] {
            let mut session =
                Session::new(&fused_hello(mode), &SessionConfig::paper()).expect("builds");
            assert_eq!(session.fusion(), mode);
            let radar = Radar::new(argus_radar::RadarConfig::bosch_lrr2_signal());
            let mut scratch = FrameScratch::new(argus_dsp::ScratchOptions::bit_exact());
            let mut direct = local_fused(mode);
            let schedule = SessionConfig::paper().schedule;
            for k in 0..60u64 {
                let d = 100.0 - 0.2 * k as f64;
                let mut obs = fused_obs(k, d);
                if schedule.is_challenge(Step(k)) {
                    obs.received_power = 0.0;
                    obs.body = ObservationBody::Empty;
                }
                let (verdict, safe) = session.observe(&obs, &radar, &mut scratch).expect("ok");
                let radar_obs = RadarObservation {
                    measurement: match &obs.body {
                        ObservationBody::Empty => None,
                        ObservationBody::Extracted(m) => Some(RadarMeasurement {
                            distance: Meters(m.distance),
                            range_rate: MetersPerSecond(m.range_rate),
                            beats: BeatPair {
                                up: Hertz(m.beat_up),
                                down: Hertz(m.beat_down),
                            },
                            snr: m.snr,
                        }),
                        ObservationBody::Raw(_) => unreachable!(),
                    },
                    received_power: Watts(obs.received_power),
                    jammed: obs.jammed,
                };
                let aux = AuxObservation {
                    camera_range: obs.aux_camera,
                    v2v_leader_speed: obs.aux_v2v,
                };
                let out = direct.process(Step(k), &radar_obs, &aux, MetersPerSecond(29.0));
                let (want_verdict, want_safe) = respond_fused(k, &out);
                assert_eq!(verdict, want_verdict, "{mode:?} step {k}");
                assert_eq!(safe, want_safe, "{mode:?} step {k}");
            }
            // The session snapshot equals the direct pipeline's, split at
            // the wire boundary.
            let snap = session.snapshot();
            let direct_snap = direct.snapshot();
            assert_eq!(snap.state, direct_snap.cra);
            assert_eq!(snap.fused, Some(FusedState::from_snapshot(&direct_snap)));
        }
    }

    #[test]
    fn fused_snapshot_restore_roundtrips_through_the_wire_codec() {
        let cfg = SessionConfig::paper();
        let mut session = Session::new(&fused_hello(FusionMode::FusedIds), &cfg).expect("builds");
        let radar = Radar::new(argus_radar::RadarConfig::bosch_lrr2_signal());
        let mut scratch = FrameScratch::new(argus_dsp::ScratchOptions::bit_exact());
        for k in 0..30u64 {
            // A camera bias in 20..30 so monitor/trust/policy state is
            // non-trivial at the snapshot point.
            let mut obs = fused_obs(k, 100.0 - 0.2 * k as f64);
            if k >= 20 {
                obs.aux_camera = obs.aux_camera.map(|d| d + 12.0);
            }
            let _ = session.observe(&obs, &radar, &mut scratch);
        }
        let snap = session.snapshot();
        assert!(
            snap.fused.is_some(),
            "fused session must export fusion state"
        );

        // Through the codec, into a fresh fused session.
        let mut buf = Vec::new();
        crate::wire::encode_into(&crate::wire::Message::Snapshot(snap.clone()), &mut buf);
        let (decoded, _) = crate::wire::decode_frame(&buf).expect("decodes");
        let crate::wire::Message::Snapshot(snap2) = decoded else {
            panic!("wrong message");
        };
        assert_eq!(snap, snap2);

        let mut resumed = Session::new(&fused_hello(FusionMode::FusedIds), &cfg).unwrap();
        resumed.restore(&snap2).expect("restores");
        assert_eq!(resumed.next_step(), session.next_step());

        // Both continue identically through the recovery.
        for k in 30..90u64 {
            let obs = fused_obs(k, 100.0 - 0.2 * k as f64);
            let a = session.observe(&obs, &radar, &mut scratch).expect("ok");
            let b = resumed.observe(&obs, &radar, &mut scratch).expect("ok");
            assert_eq!(a, b, "step {k}");
        }
        assert_eq!(session.snapshot(), resumed.snapshot());
    }

    #[test]
    fn v1_snapshot_restores_into_fused_session_with_fusion_defaults() {
        let cfg = SessionConfig::paper();
        // A CRA-only session runs for a while and snapshots (v1 shape).
        let (mut old, radar, mut scratch) = harness();
        for k in 0..25u64 {
            let _ = old.observe(&clean_obs(k, 100.0 - 0.2 * k as f64), &radar, &mut scratch);
        }
        let v1 = old.snapshot();
        assert_eq!(v1.fused, None);

        // It drops into a fused session: CRA state carried over, fusion
        // state at defaults.
        let mut upgraded = Session::new(&fused_hello(FusionMode::FusedIds), &cfg).unwrap();
        upgraded.restore(&v1).expect("v1 snapshot restores");
        assert_eq!(upgraded.next_step(), v1.next_step);
        let snap = upgraded.snapshot();
        assert_eq!(snap.state, v1.state);
        let fused = snap.fused.expect("fused session exports fusion state");
        assert_eq!(fused.trusts, vec![1.0, 1.0, 1.0]);
        assert_eq!(fused.policy, argus_core::PolicySnapshot::default());
        assert_eq!(fused.ids_detection, None);
        assert!(fused
            .monitors
            .iter()
            .all(|m| *m == argus_core::MonitorState::default()));
    }

    #[test]
    fn cra_session_rejects_fused_snapshot() {
        let cfg = SessionConfig::paper();
        let mut fused_session =
            Session::new(&fused_hello(FusionMode::Fused), &cfg).expect("builds");
        let radar = Radar::new(argus_radar::RadarConfig::bosch_lrr2_signal());
        let mut scratch = FrameScratch::new(argus_dsp::ScratchOptions::bit_exact());
        for k in 0..10u64 {
            let _ = fused_session.observe(&fused_obs(k, 100.0), &radar, &mut scratch);
        }
        let snap = fused_session.snapshot();
        assert!(snap.fused.is_some());

        let (mut cra_session, _, _) = harness();
        let err = cra_session.restore(&snap).expect_err("must reject");
        assert_eq!(err.code, ErrorCode::BadHandshake);
    }
}
