//! Per-vehicle serving sessions.
//!
//! A session owns one [`SecurePipeline`] configured at `Hello` time
//! (predictor kind negotiated per session; schedule, threshold and sample
//! period fixed by the server). It validates step monotonicity, converts
//! wire observations back into [`RadarObservation`]s — re-running the DSP
//! extraction on a shard-owned [`FrameScratch`] arena for raw-baseband
//! frames — and can export/import its full state as a [`SnapshotMsg`], which
//! is what lets a client survive eviction and reconnect without losing the
//! pipeline's learned state.

use argus_core::{PipelineOutput, SecurePipeline};
use argus_cra::CraDetector;
use argus_dsp::{Complex, FrameScratch};
use argus_radar::fmcw::BeatPair;
use argus_radar::receiver::{Radar, RadarMeasurement, RadarObservation};
use argus_sim::time::Step;
use argus_sim::units::{Hertz, Meters, MetersPerSecond, Seconds, Watts};

use crate::wire::{
    ErrorCode, Hello, Observation, ObservationBody, RawFrame, SafeMeasurement, SnapshotMsg,
    VerdictMsg,
};

/// Everything a session needs that is not negotiated per connection: the
/// CRA schedule and threshold (they must match the client's radar), the
/// dead-reckoning sample period, and the radar model used to re-extract
/// raw-baseband frames server-side.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Challenge schedule shared with every client radar.
    pub schedule: argus_cra::ChallengeSchedule,
    /// Detection threshold for Algorithm 2's comparator.
    pub detection_threshold: Watts,
    /// Sample period for dead reckoning.
    pub dt: Seconds,
}

impl SessionConfig {
    /// The paper's configuration (schedule, LRR2 threshold, 1 s sampling).
    pub fn paper() -> Self {
        Self {
            schedule: argus_cra::ChallengeSchedule::paper(),
            detection_threshold: argus_radar::RadarConfig::bosch_lrr2().detection_threshold,
            dt: Seconds(1.0),
        }
    }
}

/// A session-level failure, carrying the wire error code and whether the
/// connection can survive it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionError {
    /// The code reported to the peer.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
    /// `false` when the session can continue after reporting the error.
    pub fatal: bool,
}

impl SessionError {
    fn fatal(code: ErrorCode, detail: impl Into<String>) -> Self {
        Self {
            code,
            detail: detail.into(),
            fatal: true,
        }
    }

    fn recoverable(code: ErrorCode, detail: impl Into<String>) -> Self {
        Self {
            code,
            detail: detail.into(),
            fatal: false,
        }
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.detail)
    }
}

impl std::error::Error for SessionError {}

/// One vehicle's serving state.
#[derive(Debug)]
pub struct Session {
    vehicle_id: u64,
    pipeline: SecurePipeline,
    next_step: u64,
}

impl Session {
    /// Builds a fresh session from a handshake.
    pub fn new(hello: &Hello, cfg: &SessionConfig) -> Result<Self, SessionError> {
        let predictor = hello
            .predictor
            .build()
            .map_err(|e| SessionError::fatal(ErrorCode::UnsupportedPredictor, e.to_string()))?;
        let detector = CraDetector::new(cfg.schedule.clone(), cfg.detection_threshold);
        Ok(Self {
            vehicle_id: hello.vehicle_id,
            pipeline: SecurePipeline::new(detector, predictor, cfg.dt),
            next_step: 0,
        })
    }

    /// The vehicle label from the handshake.
    pub fn vehicle_id(&self) -> u64 {
        self.vehicle_id
    }

    /// The step the session expects next.
    pub fn next_step(&self) -> u64 {
        self.next_step
    }

    /// Exports the full session state for the client to hold across
    /// reconnects.
    pub fn snapshot(&self) -> SnapshotMsg {
        SnapshotMsg {
            vehicle_id: self.vehicle_id,
            next_step: self.next_step,
            state: self.pipeline.snapshot(),
        }
    }

    /// Restores a previously exported state. On failure the session is
    /// unchanged (the pipeline restore is transactional).
    pub fn restore(&mut self, snap: &SnapshotMsg) -> Result<(), SessionError> {
        if snap.vehicle_id != self.vehicle_id {
            return Err(SessionError::fatal(
                ErrorCode::BadHandshake,
                format!(
                    "snapshot belongs to vehicle {}, session is vehicle {}",
                    snap.vehicle_id, self.vehicle_id
                ),
            ));
        }
        self.pipeline
            .restore(&snap.state)
            .map_err(|e| SessionError::fatal(ErrorCode::Malformed, e.to_string()))?;
        self.next_step = snap.next_step;
        Ok(())
    }

    /// Processes one wire observation into the (verdict, safe measurement)
    /// response pair. `radar` and `scratch` are shard-owned: the radar model
    /// re-extracts raw-baseband frames, and with bit-exact scratch options
    /// the result is independent of whatever frames other sessions ran
    /// through the same arena.
    pub fn observe(
        &mut self,
        obs: &Observation,
        radar: &Radar,
        scratch: &mut FrameScratch,
    ) -> Result<(VerdictMsg, SafeMeasurement), SessionError> {
        if obs.step < self.next_step {
            return Err(SessionError::recoverable(
                ErrorCode::BadStep,
                format!(
                    "observation step {} is behind the session's next step {}",
                    obs.step, self.next_step
                ),
            ));
        }
        let measurement = match &obs.body {
            ObservationBody::Empty => None,
            ObservationBody::Extracted(m) => Some(RadarMeasurement {
                distance: Meters(m.distance),
                range_rate: MetersPerSecond(m.range_rate),
                beats: BeatPair {
                    up: Hertz(m.beat_up),
                    down: Hertz(m.beat_down),
                },
                snr: m.snr,
            }),
            ObservationBody::Raw(raw) => Some(self.extract_raw(raw, radar, scratch)?),
        };
        let radar_obs = RadarObservation {
            measurement,
            received_power: Watts(obs.received_power),
            jammed: obs.jammed,
        };
        let out = self
            .pipeline
            .process(Step(obs.step), &radar_obs, MetersPerSecond(obs.own_speed));
        self.next_step = obs.step + 1;
        Ok(respond(obs.step, &out))
    }

    /// Server-side DSP offload: refill the shard arena's sweep buffers from
    /// the wire samples, rerun the extraction, then apply the client's
    /// measurement-noise realization — the same two additions the client
    /// performs, on the same operands, so the result is bit-identical.
    fn extract_raw(
        &self,
        raw: &RawFrame,
        radar: &Radar,
        scratch: &mut FrameScratch,
    ) -> Result<RadarMeasurement, SessionError> {
        let expected = 2 * radar.config().samples_per_sweep;
        if raw.up.len() != expected || raw.down.len() != expected {
            return Err(SessionError::fatal(
                ErrorCode::Malformed,
                format!(
                    "raw frame has {}/{} interleaved samples, radar expects {expected}",
                    raw.up.len(),
                    raw.down.len()
                ),
            ));
        }
        fill_sweep(&mut scratch.up, &raw.up);
        fill_sweep(&mut scratch.down, &raw.down);
        let mut m = radar.measurement_from_baseband(raw.snr, scratch);
        m.distance += Meters(raw.noise_distance);
        m.range_rate += MetersPerSecond(raw.noise_range_rate);
        Ok(m)
    }
}

/// De-interleaves `re, im, re, im, …` into the arena's complex sweep buffer.
fn fill_sweep(buf: &mut Vec<Complex<f64>>, interleaved: &[f64]) {
    buf.clear();
    buf.extend(
        interleaved
            .chunks_exact(2)
            .map(|pair| Complex::new(pair[0], pair[1])),
    );
}

/// Packs one pipeline output into its response frame pair.
fn respond(step: u64, out: &PipelineOutput) -> (VerdictMsg, SafeMeasurement) {
    (
        VerdictMsg {
            step,
            verdict: out.verdict,
        },
        SafeMeasurement {
            step,
            source: out.source,
            distance: out.distance.map(|d| d.value()),
            relative_speed: out.relative_speed.value(),
            control_distance: out.control_distance.map(|d| d.value()),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ExtractedMeasurement;
    use argus_core::PredictorKind;
    use argus_dsp::ScratchOptions;

    fn hello(kind: PredictorKind) -> Hello {
        Hello {
            vehicle_id: 11,
            predictor: kind,
            max_inflight: 0,
            resume: false,
        }
    }

    fn clean_obs(step: u64, distance: f64) -> Observation {
        Observation {
            step,
            own_speed: 29.0,
            received_power: 1e-12,
            jammed: false,
            body: ObservationBody::Extracted(ExtractedMeasurement {
                distance,
                range_rate: -0.2,
                beat_up: 66_000.0,
                beat_down: 67_000.0,
                snr: 100.0,
            }),
        }
    }

    fn harness() -> (Session, Radar, FrameScratch) {
        let session = Session::new(&hello(PredictorKind::RlsTrend), &SessionConfig::paper())
            .expect("session builds");
        let radar = Radar::new(argus_radar::RadarConfig::bosch_lrr2_signal());
        let scratch = FrameScratch::new(ScratchOptions::bit_exact());
        (session, radar, scratch)
    }

    #[test]
    fn session_matches_direct_pipeline() {
        let (mut session, radar, mut scratch) = harness();
        let cfg = SessionConfig::paper();
        let detector = CraDetector::new(cfg.schedule.clone(), cfg.detection_threshold);
        let mut direct =
            SecurePipeline::new(detector, PredictorKind::RlsTrend.build().unwrap(), cfg.dt);
        for k in 0..40u64 {
            let challenge = cfg.schedule.is_challenge(Step(k));
            let obs = if challenge {
                Observation {
                    step: k,
                    own_speed: 29.0,
                    received_power: 0.0,
                    jammed: false,
                    body: ObservationBody::Empty,
                }
            } else {
                clean_obs(k, 100.0 - 0.2 * k as f64)
            };
            let (verdict, safe) = session.observe(&obs, &radar, &mut scratch).expect("ok");
            let radar_obs = RadarObservation {
                measurement: match &obs.body {
                    ObservationBody::Empty => None,
                    ObservationBody::Extracted(m) => Some(RadarMeasurement {
                        distance: Meters(m.distance),
                        range_rate: MetersPerSecond(m.range_rate),
                        beats: BeatPair {
                            up: Hertz(m.beat_up),
                            down: Hertz(m.beat_down),
                        },
                        snr: m.snr,
                    }),
                    ObservationBody::Raw(_) => unreachable!(),
                },
                received_power: Watts(obs.received_power),
                jammed: obs.jammed,
            };
            let out = direct.process(Step(k), &radar_obs, MetersPerSecond(obs.own_speed));
            assert_eq!(verdict.verdict, out.verdict, "step {k}");
            assert_eq!(safe.distance, out.distance.map(|d| d.value()), "step {k}");
            assert_eq!(
                safe.control_distance,
                out.control_distance.map(|d| d.value()),
                "step {k}"
            );
        }
        assert_eq!(session.next_step(), 40);
    }

    #[test]
    fn stale_step_is_recoverable() {
        let (mut session, radar, mut scratch) = harness();
        session
            .observe(&clean_obs(0, 100.0), &radar, &mut scratch)
            .expect("first step ok");
        let err = session
            .observe(&clean_obs(0, 100.0), &radar, &mut scratch)
            .expect_err("replayed step rejected");
        assert_eq!(err.code, ErrorCode::BadStep);
        assert!(!err.fatal);
        // The session is intact and accepts the next step.
        session
            .observe(&clean_obs(1, 99.8), &radar, &mut scratch)
            .expect("session survives");
    }

    #[test]
    fn snapshot_restore_roundtrips_through_the_wire_codec() {
        let (mut session, radar, mut scratch) = harness();
        for k in 0..25u64 {
            let _ = session.observe(&clean_obs(k, 100.0 - 0.2 * k as f64), &radar, &mut scratch);
        }
        let snap = session.snapshot();

        // Through the codec, into a fresh session.
        let mut buf = Vec::new();
        crate::wire::encode_into(&crate::wire::Message::Snapshot(snap.clone()), &mut buf);
        let (decoded, _) = crate::wire::decode_frame(&buf).expect("decodes");
        let crate::wire::Message::Snapshot(snap2) = decoded else {
            panic!("wrong message");
        };
        assert_eq!(snap, snap2);

        let mut resumed =
            Session::new(&hello(PredictorKind::RlsTrend), &SessionConfig::paper()).unwrap();
        resumed.restore(&snap2).expect("restores");
        assert_eq!(resumed.next_step(), session.next_step());

        // Both continue identically.
        for k in 25..60u64 {
            let obs = clean_obs(k, 100.0 - 0.2 * k as f64);
            let a = session.observe(&obs, &radar, &mut scratch).expect("ok");
            let b = resumed.observe(&obs, &radar, &mut scratch).expect("ok");
            assert_eq!(a, b, "step {k}");
        }
        assert_eq!(session.snapshot(), resumed.snapshot());
    }

    #[test]
    fn restore_rejects_foreign_vehicle() {
        let (mut session, _, _) = harness();
        let mut snap = session.snapshot();
        snap.vehicle_id += 1;
        let err = session.restore(&snap).expect_err("must reject");
        assert_eq!(err.code, ErrorCode::BadHandshake);
    }

    #[test]
    fn malformed_raw_frame_is_rejected() {
        let (mut session, radar, mut scratch) = harness();
        let obs = Observation {
            step: 0,
            own_speed: 29.0,
            received_power: 1e-12,
            jammed: false,
            body: ObservationBody::Raw(RawFrame {
                snr: 10.0,
                noise_distance: 0.0,
                noise_range_rate: 0.0,
                up: vec![1.0; 10],
                down: vec![1.0; 10],
            }),
        };
        let err = session
            .observe(&obs, &radar, &mut scratch)
            .expect_err("short frame rejected");
        assert_eq!(err.code, ErrorCode::Malformed);
    }
}
