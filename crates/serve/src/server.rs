//! The TCP gateway: one acceptor thread, N reactor shards — total thread
//! count independent of connection count.
//!
//! Each shard owns an epoll (or `poll`) instance, a slab of non-blocking
//! connections, a timer wheel, and one bit-exact [`FrameScratch`] arena +
//! radar model + encode buffer — so steady-state serving decodes frames,
//! runs the DSP, and queues responses without heap allocation or
//! cross-thread handoff. Frames arrive through per-connection inbox rings
//! and a resumable [`Decoder`] (partial frames across reads are normal);
//! responses leave through per-connection outbox rings flushed on
//! write-readiness.
//!
//! Flow control is the kernel socket buffer plus a bounded outbox: when a
//! connection's outbox passes `outbox_cap`, the shard stops reading and
//! decoding for that connection (one advisory `Backpressure` frame per
//! stall) and resumes below the low-water mark — frames are never dropped.
//! Sessions idle past the eviction deadline are told (`Evicted`) and
//! disconnected once their outbox drains; a client that kept a snapshot
//! resumes on a fresh connection with byte-identical state. Shutdown
//! decodes what is buffered, tells every peer (`ShuttingDown`), and drains
//! outboxes up to `drain_timeout` before closing sockets.
//!
//! Many sessions can share one socket via `MSG_MUX` framing: each mux
//! channel is an independent session (plain frames are channel 0), and a
//! response is wrapped for exactly the channel its request rode on. Fatal
//! protocol errors remain connection-scoped; `Evicted`/`ShuttingDown`/
//! `Backpressure` advisories are connection-scoped and sent plain.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use argus_dsp::{FrameScratch, ScratchOptions};
use argus_radar::receiver::Radar;
use argus_radar::RadarConfig;

use crate::net;
use crate::reactor::{new_poller, waker, Interest, Poller, PollerKind, WakeReceiver, Waker};
use crate::ring::ByteRing;
use crate::session::{Session, SessionConfig};
use crate::timer::{TimerKind, TimerWheel};
use crate::wire::{self, DecodedFrame, Decoder, ErrorCode, ErrorMsg, Message, Welcome, WireError};

/// Poller token reserved for the shard's wakeup channel.
const TOKEN_WAKE: u64 = u64::MAX;
/// Bytes asked of the kernel per `read` call.
const READ_CHUNK: usize = 8 * 1024;
/// Per-connection read budget per readiness event; past this the shard
/// moves on (level-triggered readiness re-fires), so one firehose peer
/// cannot starve its shard-mates.
const MAX_BURST: usize = 128 * 1024;

/// Gateway tuning plus the session configuration shared by every shard.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Session parameters (schedule, threshold, sample period).
    pub session: SessionConfig,
    /// Radar model used for server-side raw-baseband extraction.
    pub radar: RadarConfig,
    /// Number of reactor shards (one per core is the intended shape).
    pub workers: usize,
    /// Advisory inflight window echoed in `Welcome` for wire
    /// compatibility; actual flow control is `outbox_cap` + the kernel
    /// socket buffer.
    pub max_inflight: u16,
    /// Idle duration after which a session is evicted.
    pub idle_timeout: Duration,
    /// Timer-wheel granularity: eviction and drain deadlines are quantized
    /// to this.
    pub sweep_interval: Duration,
    /// Outbox byte count past which the shard stops reading a connection
    /// (pause threshold, not a hard cap — one response may overshoot).
    pub outbox_cap: usize,
    /// How long a closing connection gets to drain its outbox before the
    /// socket is closed anyway.
    pub drain_timeout: Duration,
    /// Readiness backend. `Auto` picks epoll on Linux, `poll` elsewhere.
    pub poller: PollerKind,
    /// Kernel send-buffer cap (`SO_SNDBUF`) per accepted socket. `None`
    /// leaves kernel autotuning alone (the serving default); tests set a
    /// small value to exercise backpressure deterministically.
    pub sndbuf: Option<usize>,
}

impl GatewayConfig {
    /// The paper configuration with serving defaults: 4 shards, a 256 KiB
    /// outbox pause threshold and a 30 s idle eviction deadline.
    pub fn paper() -> Self {
        Self {
            session: SessionConfig::paper(),
            radar: RadarConfig::bosch_lrr2_signal(),
            workers: 4,
            max_inflight: 32,
            idle_timeout: Duration::from_secs(30),
            sweep_interval: Duration::from_secs(1),
            outbox_cap: 256 * 1024,
            drain_timeout: Duration::from_secs(2),
            poller: PollerKind::Auto,
            sndbuf: None,
        }
    }
}

/// What the acceptor hands a shard.
#[derive(Debug)]
enum ShardCmd {
    /// A freshly accepted, already non-blocking connection.
    NewConn(TcpStream),
    /// Begin the draining shutdown.
    Shutdown,
}

/// The acceptor's handle to one shard: a command queue plus the waker that
/// pulls the shard out of `wait`.
#[derive(Debug, Clone)]
struct ShardHandle {
    queue: Arc<Mutex<Vec<ShardCmd>>>,
    waker: Waker,
}

impl ShardHandle {
    fn send(&self, cmd: ShardCmd) {
        self.queue.lock().expect("shard queue").push(cmd);
        self.waker.wake();
    }
}

/// One mux channel's session state (plain frames are channel 0).
struct Channel {
    session: Session,
    /// Set after a resume Hello until the snapshot arrives.
    resume_pending: bool,
}

/// One connection as a shard sees it.
struct Conn {
    stream: TcpStream,
    /// Raw bytes read but not yet decoded (partial frames, or everything
    /// after a backpressure pause).
    inbox: ByteRing,
    /// Encoded responses not yet accepted by the kernel.
    outbox: ByteRing,
    decoder: Decoder,
    channels: HashMap<u32, Channel>,
    last_active: Instant,
    /// What the poller is currently armed for.
    interest: Interest,
    /// Reading/decoding paused by outbox backpressure.
    paused: bool,
    /// Backpressure advisory already sent for the current stall.
    advised: bool,
    /// Flush the outbox, then close.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Self {
            stream,
            inbox: ByteRing::default(),
            outbox: ByteRing::default(),
            decoder: Decoder::new(),
            channels: HashMap::new(),
            last_active: now,
            interest: Interest::READ,
            paused: false,
            advised: false,
            closing: false,
        }
    }
}

/// Connection storage with generation-tagged tokens: a token is
/// `generation << 32 | slot`, so a readiness event for a slot that was
/// freed and reused is recognized as stale and dropped.
struct Slab {
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl Slab {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn live(&self) -> usize {
        self.live
    }

    fn token_of(idx: u32, gen: u32) -> u64 {
        (u64::from(gen) << 32) | u64::from(idx)
    }

    fn insert(&mut self, conn: Conn) -> u64 {
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.gens.push(0);
            (self.slots.len() - 1) as u32
        });
        self.slots[idx as usize] = Some(conn);
        self.live += 1;
        Self::token_of(idx, self.gens[idx as usize])
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut Conn> {
        let idx = (token & u64::from(u32::MAX)) as usize;
        let gen = (token >> 32) as u32;
        if idx >= self.slots.len() || self.gens[idx] != gen {
            return None;
        }
        self.slots[idx].as_mut()
    }

    fn remove(&mut self, token: u64) -> Option<Conn> {
        let idx = (token & u64::from(u32::MAX)) as usize;
        let gen = (token >> 32) as u32;
        if idx >= self.slots.len() || self.gens[idx] != gen {
            return None;
        }
        let conn = self.slots[idx].take();
        if conn.is_some() {
            // Invalidate outstanding tokens/timers for this slot. (A
            // collision with TOKEN_WAKE would need 2^32 slots in one
            // shard; slots are bounded by fds long before that.)
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.free.push(idx as u32);
            self.live -= 1;
        }
        conn
    }

    fn tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| Self::token_of(i as u32, self.gens[i]))
            .collect()
    }
}

/// Shard-owned steady-state arenas: everything a response needs, reused
/// across frames and sessions.
struct ShardScratch {
    radar: Radar,
    frame: FrameScratch,
    encode: Vec<u8>,
}

/// A running gateway. Dropping it without [`Gateway::shutdown`] aborts the
/// acceptor only when the process exits; call `shutdown` for a clean drain.
#[derive(Debug)]
pub struct Gateway {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    handles: Vec<ShardHandle>,
    shards: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Binds the listener and starts the acceptor and reactor shards.
    ///
    /// # Errors
    ///
    /// Propagates socket-binding and poller-setup failures.
    pub fn bind(addr: impl ToSocketAddrs, config: GatewayConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = config.workers.max(1);

        let mut handles = Vec::with_capacity(workers);
        let mut shards = Vec::with_capacity(workers);
        for shard_id in 0..workers {
            let poller = new_poller(config.poller)?;
            let (wake_tx, wake_rx) = waker()?;
            let queue = Arc::new(Mutex::new(Vec::new()));
            handles.push(ShardHandle {
                queue: Arc::clone(&queue),
                waker: wake_tx,
            });
            let cfg = config.clone();
            shards.push(
                std::thread::Builder::new()
                    .name(format!("argus-serve-shard-{shard_id}"))
                    .spawn(move || shard_main(&cfg, poller, wake_rx, &queue))
                    .expect("spawn shard worker"),
            );
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            let handles = handles.clone();
            let sndbuf = config.sndbuf;
            std::thread::Builder::new()
                .name("argus-serve-acceptor".to_string())
                .spawn(move || acceptor_main(&listener, &stop, &handles, sndbuf))
                .expect("spawn acceptor")
        };

        Ok(Self {
            local_addr,
            stop,
            acceptor: Some(acceptor),
            handles,
            shards,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, decode what is buffered, tell
    /// every peer, drain outboxes (bounded by `drain_timeout`), close
    /// every connection, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor panicked");
        }
        for handle in &self.handles {
            handle.send(ShardCmd::Shutdown);
        }
        for shard in self.shards.drain(..) {
            shard.join().expect("shard panicked");
        }
    }
}

fn acceptor_main(
    listener: &TcpListener,
    stop: &AtomicBool,
    handles: &[ShardHandle],
    sndbuf: Option<usize>,
) {
    let mut next_conn = 0u64;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Err(e) = net::configure_stream(&stream) {
            eprintln!("argus-serve: dropping connection, socket options failed: {e}");
            continue;
        }
        if let Some(bytes) = sndbuf {
            if let Err(e) = net::set_send_buffer(&stream, bytes) {
                eprintln!("argus-serve: dropping connection, SO_SNDBUF failed: {e}");
                continue;
            }
        }
        if let Err(e) = stream.set_nonblocking(true) {
            eprintln!("argus-serve: dropping connection, set_nonblocking failed: {e}");
            continue;
        }
        let shard = (next_conn % handles.len() as u64) as usize;
        next_conn += 1;
        handles[shard].send(ShardCmd::NewConn(stream));
    }
}

/// One reactor shard's whole mutable world.
struct Shard<'a> {
    cfg: &'a GatewayConfig,
    poller: Box<dyn Poller>,
    wake_rx: WakeReceiver,
    queue: &'a Mutex<Vec<ShardCmd>>,
    slab: Slab,
    wheel: TimerWheel,
    scratch: ShardScratch,
    /// Reused timer-expiry scratch.
    fired: Vec<(u64, TimerKind)>,
    draining: bool,
}

fn shard_main(
    cfg: &GatewayConfig,
    poller: Box<dyn Poller>,
    wake_rx: WakeReceiver,
    queue: &Mutex<Vec<ShardCmd>>,
) {
    let mut shard = Shard {
        cfg,
        poller,
        wake_rx,
        queue,
        slab: Slab::new(),
        wheel: TimerWheel::new(cfg.sweep_interval, Instant::now()),
        scratch: ShardScratch {
            radar: Radar::new(cfg.radar),
            // Bit-exact options: extraction depends only on the samples, so
            // one arena can serve every session without cross-talk.
            frame: FrameScratch::new(ScratchOptions::bit_exact()),
            encode: Vec::new(),
        },
        fired: Vec::new(),
        draining: false,
    };
    shard
        .poller
        .register(shard.wake_rx.raw_fd(), TOKEN_WAKE, Interest::READ)
        .expect("register shard waker");

    let mut events = Vec::new();
    loop {
        let now = Instant::now();
        let timeout = shard
            .wheel
            .next_deadline(now)
            .map(|d| d.saturating_duration_since(now));
        if let Err(e) = shard.poller.wait(&mut events, timeout) {
            eprintln!("argus-serve: poller wait failed: {e}");
            continue;
        }
        for ev in &events {
            if ev.token == TOKEN_WAKE {
                shard.wake_rx.drain();
                shard.run_commands();
            } else if ev.hangup {
                shard.kill(ev.token);
            } else {
                if ev.writable {
                    shard.on_writable(ev.token);
                }
                if ev.readable {
                    shard.on_readable(ev.token);
                }
            }
        }
        shard.fire_timers();
        if shard.draining && shard.slab.live() == 0 {
            break;
        }
    }
}

impl Shard<'_> {
    fn run_commands(&mut self) {
        let cmds: Vec<ShardCmd> = {
            let mut queue = self.queue.lock().expect("shard queue");
            std::mem::take(&mut *queue)
        };
        for cmd in cmds {
            match cmd {
                ShardCmd::NewConn(stream) => self.add_conn(stream),
                ShardCmd::Shutdown => self.begin_drain(),
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        if self.draining {
            // Too late; the acceptor races shutdown by design.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let now = Instant::now();
        let fd = stream.as_raw_fd();
        let token = self.slab.insert(Conn::new(stream, now));
        if self.poller.register(fd, token, Interest::READ).is_err() {
            self.slab.remove(token);
            return;
        }
        self.wheel
            .schedule(now + self.cfg.idle_timeout, token, TimerKind::IdleCheck);
    }

    /// Removes and closes a connection immediately, queued bytes and all.
    fn kill(&mut self, token: u64) {
        if let Some(conn) = self.slab.remove(token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }

    /// Encodes `msg` (mux-wrapped when `channel` is set) onto the
    /// connection's outbox.
    fn queue_msg(&mut self, token: u64, channel: Option<u32>, msg: &Message) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        self.scratch.encode.clear();
        match channel {
            None => wire::encode_into(msg, &mut self.scratch.encode),
            Some(c) => wire::encode_mux_into(c, msg, &mut self.scratch.encode),
        }
        conn.outbox.extend_from_slice(&self.scratch.encode);
    }

    /// Re-arms the poller to match the connection's state: read while not
    /// paused/closing, write while the outbox holds bytes.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        let want = Interest {
            readable: !conn.paused && !conn.closing,
            writable: !conn.outbox.is_empty(),
        };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            conn.interest = want;
            let _ = self.poller.reregister(fd, token, want);
        }
    }

    /// Writes queued bytes until the kernel blocks; closes a draining
    /// connection whose outbox just emptied. Returns false when the
    /// connection died here.
    fn flush(&mut self, token: u64) -> bool {
        let Some(conn) = self.slab.get_mut(token) else {
            return false;
        };
        if conn.outbox.write_to(&mut conn.stream).is_err() {
            self.kill(token);
            return false;
        }
        if conn.outbox.is_empty() && conn.closing {
            self.kill(token);
            return false;
        }
        self.update_interest(token);
        true
    }

    /// Starts the flush-then-close sequence, optionally after one last
    /// plain advisory frame.
    fn begin_close(&mut self, token: u64, advisory: Option<&Message>) {
        if let Some(msg) = advisory {
            self.queue_msg(token, None, msg);
        }
        let now = Instant::now();
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        if !conn.closing {
            conn.closing = true;
            self.wheel.schedule(
                now + self.cfg.drain_timeout,
                token,
                TimerKind::DrainDeadline,
            );
        }
        let _ = self.flush(token);
    }

    /// A protocol-fatal condition: queue the typed error (wrapped for the
    /// offending channel) and close the connection. Returns false so frame
    /// handlers can `return self.fatal(...)`.
    fn fatal(
        &mut self,
        token: u64,
        channel: Option<u32>,
        code: ErrorCode,
        detail: impl Into<String>,
    ) -> bool {
        self.queue_msg(
            token,
            channel,
            &Message::Error(ErrorMsg {
                code,
                detail: detail.into(),
            }),
        );
        self.begin_close(token, None);
        false
    }

    /// The connection's bytes stopped parsing; answer with a typed error
    /// and close.
    fn fatal_wire_error(&mut self, token: u64, err: &WireError) {
        let code = match err {
            WireError::VersionMismatch { .. } => ErrorCode::Version,
            _ => ErrorCode::Malformed,
        };
        self.fatal(token, None, code, err.to_string());
    }

    /// Drains the socket in bounded bursts, decoding as bytes land.
    fn on_readable(&mut self, token: u64) {
        let mut total = 0usize;
        loop {
            let read = {
                let Some(conn) = self.slab.get_mut(token) else {
                    return;
                };
                if conn.paused || conn.closing {
                    break;
                }
                match conn.inbox.read_from(&mut conn.stream, READ_CHUNK) {
                    Ok(n) => Ok(n),
                    Err(ref e) if net::is_would_block(e) => break,
                    Err(_) => Err(()),
                }
            };
            match read {
                Ok(0) => {
                    // Peer EOF: decode what arrived, answer it, then close
                    // once the outbox drains.
                    if self.process_inbox(token) {
                        self.begin_close(token, None);
                    }
                    return;
                }
                Ok(n) => {
                    if !self.process_inbox(token) {
                        return;
                    }
                    total += n;
                    if total >= MAX_BURST {
                        break;
                    }
                }
                Err(()) => {
                    self.kill(token);
                    return;
                }
            }
        }
        let _ = self.flush(token);
    }

    /// The kernel made room: flush, and resume a paused connection once
    /// its outbox falls under the low-water mark (half of `outbox_cap`).
    fn on_writable(&mut self, token: u64) {
        if !self.flush(token) {
            return;
        }
        let low_water = self.cfg.outbox_cap / 2;
        let resumed = match self.slab.get_mut(token) {
            Some(conn) if conn.paused && conn.outbox.len() <= low_water => {
                conn.paused = false;
                conn.advised = false;
                true
            }
            _ => false,
        };
        if resumed {
            // Decode the bytes that were already buffered when the pause
            // hit; new reads follow via the re-armed read interest.
            if self.process_inbox(token) {
                let _ = self.flush(token);
            }
        }
    }

    /// Decodes every complete frame buffered in the inbox, stopping at a
    /// pause or close. Returns false when the connection died.
    fn process_inbox(&mut self, token: u64) -> bool {
        loop {
            let now = Instant::now();
            let step = {
                let Some(conn) = self.slab.get_mut(token) else {
                    return false;
                };
                if conn.paused || conn.closing {
                    break;
                }
                let (front, _) = conn.inbox.as_slices();
                if front.is_empty() {
                    break;
                }
                match conn.decoder.feed(front) {
                    Ok((used, frame)) => {
                        conn.inbox.consume(used);
                        conn.last_active = now;
                        Ok(frame)
                    }
                    Err(e) => Err(e),
                }
            };
            match step {
                Ok(None) => continue,
                Ok(Some(frame)) => {
                    if !self.handle_frame(token, frame) {
                        return false;
                    }
                    self.maybe_pause(token);
                }
                Err(e) => {
                    self.fatal_wire_error(token, &e);
                    return false;
                }
            }
        }
        true
    }

    /// Applies outbox backpressure after a frame was handled: if the
    /// outbox is past the cap even after a flush, stop reading and
    /// decoding, and tell the client once per stall.
    fn maybe_pause(&mut self, token: u64) {
        let over = match self.slab.get_mut(token) {
            Some(conn) => conn.outbox.len() > self.cfg.outbox_cap,
            None => return,
        };
        if !over || !self.flush(token) {
            return;
        }
        let cap = self.cfg.outbox_cap;
        let advise = match self.slab.get_mut(token) {
            Some(conn) if conn.outbox.len() > cap && !conn.closing => {
                conn.paused = true;
                let first = !conn.advised;
                conn.advised = true;
                first
            }
            _ => return,
        };
        if advise {
            self.queue_msg(
                token,
                None,
                &Message::Error(ErrorMsg {
                    code: ErrorCode::Backpressure,
                    detail: format!("outbox of {cap} bytes is full; reads paused"),
                }),
            );
        }
        self.update_interest(token);
    }

    /// Processes one decoded frame. Returns false when the connection
    /// died (or began closing) and decoding must stop.
    fn handle_frame(&mut self, token: u64, frame: DecodedFrame) -> bool {
        let channel = frame.channel;
        let key = channel.unwrap_or(0);
        match frame.msg {
            Message::Hello(hello) => {
                let Some(conn) = self.slab.get_mut(token) else {
                    return false;
                };
                if conn.channels.contains_key(&key) {
                    return self.fatal(token, channel, ErrorCode::Malformed, "duplicate Hello");
                }
                match Session::new(&hello, &self.cfg.session) {
                    Ok(session) => {
                        let resume = hello.resume;
                        conn.channels.insert(
                            key,
                            Channel {
                                session,
                                resume_pending: resume,
                            },
                        );
                        if resume {
                            // Welcome is deferred until the snapshot
                            // restores.
                            return true;
                        }
                        self.queue_welcome(token, channel, key);
                        true
                    }
                    Err(e) => self.fatal(token, channel, e.code, e.detail),
                }
            }
            Message::Snapshot(snap) => {
                let Some(conn) = self.slab.get_mut(token) else {
                    return false;
                };
                let Some(ch) = conn.channels.get_mut(&key) else {
                    return self.fatal(
                        token,
                        channel,
                        ErrorCode::Malformed,
                        "Snapshot is only valid directly after a resume Hello",
                    );
                };
                if !ch.resume_pending {
                    return self.fatal(
                        token,
                        channel,
                        ErrorCode::Malformed,
                        "Snapshot is only valid directly after a resume Hello",
                    );
                }
                if let Err(e) = ch.session.restore(&snap) {
                    return self.fatal(token, channel, e.code, e.detail);
                }
                ch.resume_pending = false;
                self.queue_welcome(token, channel, key);
                true
            }
            Message::Observation(obs) => {
                let Some(conn) = self.slab.get_mut(token) else {
                    return false;
                };
                let Some(ch) = conn.channels.get_mut(&key) else {
                    return self.fatal(
                        token,
                        channel,
                        ErrorCode::BadHandshake,
                        "Observation before Hello",
                    );
                };
                if ch.resume_pending {
                    return self.fatal(
                        token,
                        channel,
                        ErrorCode::BadHandshake,
                        "Observation before resume Snapshot",
                    );
                }
                match ch
                    .session
                    .observe(&obs, &self.scratch.radar, &mut self.scratch.frame)
                {
                    Ok((verdict, safe)) => {
                        // Both response frames in one outbox append.
                        self.scratch.encode.clear();
                        encode_response(
                            channel,
                            &Message::Verdict(verdict),
                            &mut self.scratch.encode,
                        );
                        encode_response(
                            channel,
                            &Message::SafeMeasurement(safe),
                            &mut self.scratch.encode,
                        );
                        conn.outbox.extend_from_slice(&self.scratch.encode);
                        true
                    }
                    Err(e) => {
                        if e.fatal {
                            return self.fatal(token, channel, e.code, e.detail);
                        }
                        let msg = Message::Error(ErrorMsg {
                            code: e.code,
                            detail: e.detail,
                        });
                        self.queue_msg(token, channel, &msg);
                        true
                    }
                }
            }
            Message::SnapshotRequest => {
                let Some(conn) = self.slab.get_mut(token) else {
                    return false;
                };
                let Some(ch) = conn.channels.get(&key) else {
                    return self.fatal(
                        token,
                        channel,
                        ErrorCode::BadHandshake,
                        "SnapshotRequest before Hello",
                    );
                };
                let snap = ch.session.snapshot();
                self.queue_msg(token, channel, &Message::Snapshot(snap));
                true
            }
            Message::Welcome(_)
            | Message::Verdict(_)
            | Message::SafeMeasurement(_)
            | Message::Error(_) => self.fatal(
                token,
                channel,
                ErrorCode::Malformed,
                "server-to-client message from a client",
            ),
        }
    }

    fn queue_welcome(&mut self, token: u64, channel: Option<u32>, key: u32) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        let Some(ch) = conn.channels.get(&key) else {
            return;
        };
        let msg = Message::Welcome(Welcome {
            vehicle_id: ch.session.vehicle_id(),
            next_step: ch.session.next_step(),
            max_inflight: self.cfg.max_inflight.max(1),
        });
        self.queue_msg(token, channel, &msg);
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        self.wheel.fire(now, &mut fired);
        for &(token, kind) in &fired {
            match kind {
                TimerKind::IdleCheck => {
                    let deadline = match self.slab.get_mut(token) {
                        // Stale token, or already draining its close.
                        None => continue,
                        Some(conn) if conn.closing => continue,
                        Some(conn) => conn.last_active + self.cfg.idle_timeout,
                    };
                    if deadline <= now {
                        self.begin_close(
                            token,
                            Some(&Message::Error(ErrorMsg {
                                code: ErrorCode::Evicted,
                                detail: "session idle past the eviction deadline".to_string(),
                            })),
                        );
                    } else {
                        self.wheel.schedule(deadline, token, TimerKind::IdleCheck);
                    }
                }
                TimerKind::DrainDeadline => {
                    let still_closing =
                        matches!(self.slab.get_mut(token), Some(conn) if conn.closing);
                    if still_closing {
                        self.kill(token);
                    }
                }
            }
        }
        self.fired = fired;
    }

    /// Shutdown: decode what every connection already buffered, tell the
    /// peers, and let the drain deadlines bound the rest.
    fn begin_drain(&mut self) {
        self.draining = true;
        let shutting_down = Message::Error(ErrorMsg {
            code: ErrorCode::ShuttingDown,
            detail: "gateway is shutting down".to_string(),
        });
        for token in self.slab.tokens() {
            if !self.process_inbox(token) {
                continue;
            }
            let already_closing = matches!(self.slab.get_mut(token), Some(conn) if conn.closing);
            if already_closing {
                continue;
            }
            self.begin_close(token, Some(&shutting_down));
        }
    }
}

/// Encodes `msg` plain or mux-wrapped, appending to `buf` (not cleared —
/// response pairs batch into one outbox append).
fn encode_response(channel: Option<u32>, msg: &Message, buf: &mut Vec<u8>) {
    match channel {
        None => wire::encode_into(msg, buf),
        Some(c) => wire::encode_mux_into(c, msg, buf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_conn() -> Conn {
        // A socket nobody reads; only the slab bookkeeping is under test.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        Conn::new(stream, Instant::now())
    }

    #[test]
    fn slab_tokens_survive_slot_reuse() {
        let mut slab = Slab::new();
        let a = slab.insert(dummy_conn());
        let b = slab.insert(dummy_conn());
        assert_eq!(slab.live(), 2);
        assert!(slab.get_mut(a).is_some());

        // Free `a`, reuse its slot for `c`: the stale token must miss.
        assert!(slab.remove(a).is_some());
        let c = slab.insert(dummy_conn());
        assert_ne!(a, c, "generation bump makes a fresh token");
        assert!(slab.get_mut(a).is_none(), "stale token is rejected");
        assert!(slab.get_mut(c).is_some());
        assert!(slab.remove(a).is_none(), "stale remove is a no-op");
        assert_eq!(slab.live(), 2);

        let mut tokens = slab.tokens();
        tokens.sort_unstable();
        let mut expect = vec![b, c];
        expect.sort_unstable();
        assert_eq!(tokens, expect);
    }

    #[test]
    fn slab_remove_returns_the_connection_once() {
        let mut slab = Slab::new();
        let t = slab.insert(dummy_conn());
        assert!(slab.remove(t).is_some());
        assert!(slab.remove(t).is_none());
        assert_eq!(slab.live(), 0);
    }
}
