//! The TCP gateway: one acceptor thread, N worker shards.
//!
//! Each accepted connection gets a dedicated reader thread that decodes
//! frames and forwards them to the shard owning the connection
//! (`conn_id % workers`). A shard worker owns its sessions plus one
//! bit-exact [`FrameScratch`] arena, one radar model and one encode buffer —
//! so steady-state serving runs the DSP and response path without heap
//! allocation, and raw-baseband extraction is bit-identical no matter which
//! session last used the arena.
//!
//! Flow control is a per-session inflight window: the reader blocks once
//! `max_inflight` observations are queued unprocessed, after sending the
//! client a single advisory `Backpressure` error per stall — frames are
//! never dropped. Sessions idle past the eviction deadline are told
//! (`Evicted`) and disconnected; a client that kept a snapshot resumes on a
//! fresh connection with byte-identical state. Shutdown drains every queued
//! frame before closing sockets.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use argus_dsp::{FrameScratch, ScratchOptions};
use argus_radar::receiver::Radar;
use argus_radar::RadarConfig;

use crate::session::{Session, SessionConfig, SessionError};
use crate::wire::{self, ErrorCode, ErrorMsg, FrameReader, Message, ReadError, Welcome, WireError};

/// Gateway tuning plus the session configuration shared by every shard.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Session parameters (schedule, threshold, sample period).
    pub session: SessionConfig,
    /// Radar model used for server-side raw-baseband extraction.
    pub radar: RadarConfig,
    /// Number of worker shards.
    pub workers: usize,
    /// Per-session inflight-observation cap granted when the client asks
    /// for 0 or more than this.
    pub max_inflight: u16,
    /// Idle duration after which a session is evicted.
    pub idle_timeout: Duration,
    /// How often each shard sweeps for idle sessions.
    pub sweep_interval: Duration,
}

impl GatewayConfig {
    /// The paper configuration with serving defaults: 4 shards, a 32-frame
    /// inflight window and a 30 s idle eviction deadline.
    pub fn paper() -> Self {
        Self {
            session: SessionConfig::paper(),
            radar: RadarConfig::bosch_lrr2_signal(),
            workers: 4,
            max_inflight: 32,
            idle_timeout: Duration::from_secs(30),
            sweep_interval: Duration::from_secs(1),
        }
    }
}

/// Per-session flow-control window, shared between the connection's reader
/// thread (increments, blocks at the cap) and its shard worker (decrements).
#[derive(Debug)]
struct Inflight {
    state: Mutex<InflightState>,
    cv: Condvar,
}

#[derive(Debug)]
struct InflightState {
    queued: u32,
    /// Set when the shard closes the connection, so a blocked reader wakes
    /// and exits instead of waiting forever.
    closed: bool,
}

impl Inflight {
    fn new() -> Self {
        Self {
            state: Mutex::new(InflightState {
                queued: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Counts one queued observation, blocking while the window is full.
    /// Returns `false` if the connection closed (caller should exit), and
    /// whether this call hit the cap (so the caller can send one advisory).
    fn acquire(&self, cap: u32) -> (bool, bool) {
        let mut st = self.state.lock().expect("inflight lock");
        let stalled = st.queued >= cap;
        while st.queued >= cap && !st.closed {
            st = self.cv.wait(st).expect("inflight wait");
        }
        if st.closed {
            return (false, stalled);
        }
        st.queued += 1;
        (true, stalled)
    }

    fn release(&self) {
        let mut st = self.state.lock().expect("inflight lock");
        st.queued = st.queued.saturating_sub(1);
        self.cv.notify_all();
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("inflight lock");
        st.closed = true;
        self.cv.notify_all();
    }
}

/// What reader threads forward to shard workers.
// `Frame` dominates the size; boxing it would put an allocation on the
// per-frame hot path to shrink a channel slot that is moved, not copied.
#[allow(clippy::large_enum_variant)]
enum ShardMsg {
    /// A new connection owned by this shard.
    Connected {
        conn: u64,
        stream: TcpStream,
        inflight: Arc<Inflight>,
        write_lock: Arc<Mutex<()>>,
    },
    /// One decoded frame.
    Frame { conn: u64, msg: Message },
    /// The connection's bytes stopped parsing.
    Bad { conn: u64, err: WireError },
    /// The peer hung up or the transport failed.
    Disconnected { conn: u64 },
    /// Drain everything already queued, then exit.
    Shutdown,
}

/// One connection as a shard sees it.
struct Conn {
    stream: TcpStream,
    inflight: Arc<Inflight>,
    /// Serializes writes with the reader thread's backpressure advisories.
    write_lock: Arc<Mutex<()>>,
    session: Option<Session>,
    /// Set after a resume Hello until the snapshot arrives.
    resume_pending: bool,
    last_active: Instant,
}

impl Conn {
    fn close(&mut self) {
        self.inflight.close();
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// A running gateway. Dropping it without [`Gateway::shutdown`] aborts the
/// acceptor only when the process exits; call `shutdown` for a clean drain.
#[derive(Debug)]
pub struct Gateway {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    shard_txs: Vec<Sender<ShardMsg>>,
    shards: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Binds the listener and starts the acceptor and shard workers.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind(addr: impl ToSocketAddrs, config: GatewayConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = config.workers.max(1);

        let mut shard_txs = Vec::with_capacity(workers);
        let mut shards = Vec::with_capacity(workers);
        for shard_id in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel();
            shard_txs.push(tx);
            let cfg = config.clone();
            shards.push(
                std::thread::Builder::new()
                    .name(format!("argus-serve-shard-{shard_id}"))
                    .spawn(move || shard_main(rx, &cfg))
                    .expect("spawn shard worker"),
            );
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            let shard_txs = shard_txs.clone();
            let max_inflight = config.max_inflight.max(1) as u32;
            std::thread::Builder::new()
                .name("argus-serve-acceptor".to_string())
                .spawn(move || acceptor_main(&listener, &stop, &shard_txs, max_inflight))
                .expect("spawn acceptor")
        };

        Ok(Self {
            local_addr,
            stop,
            acceptor: Some(acceptor),
            shard_txs,
            shards,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, drain every queued frame, close
    /// every connection, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let readers = self
            .acceptor
            .take()
            .map(|h| h.join().expect("acceptor panicked"))
            .unwrap_or_default();
        for tx in &self.shard_txs {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        for shard in self.shards.drain(..) {
            shard.join().expect("shard panicked");
        }
        for reader in readers {
            reader.join().expect("reader panicked");
        }
    }
}

fn acceptor_main(
    listener: &TcpListener,
    stop: &AtomicBool,
    shard_txs: &[Sender<ShardMsg>],
    server_cap: u32,
) -> Vec<JoinHandle<()>> {
    let mut readers = Vec::new();
    let mut next_conn = 0u64;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let conn = next_conn;
        next_conn += 1;
        let shard_tx = shard_txs[(conn % shard_txs.len() as u64) as usize].clone();
        let inflight = Arc::new(Inflight::new());
        let write_lock = Arc::new(Mutex::new(()));

        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        if shard_tx
            .send(ShardMsg::Connected {
                conn,
                stream,
                inflight: Arc::clone(&inflight),
                write_lock: Arc::clone(&write_lock),
            })
            .is_err()
        {
            break;
        }
        let reader = std::thread::Builder::new()
            .name(format!("argus-serve-reader-{conn}"))
            .spawn(move || {
                reader_main(
                    conn,
                    read_half,
                    &shard_tx,
                    &inflight,
                    &write_lock,
                    server_cap,
                )
            })
            .expect("spawn reader");
        readers.push(reader);
    }
    readers
}

/// Decodes frames off one socket, enforcing the inflight window before each
/// observation is queued.
fn reader_main(
    conn: u64,
    mut stream: TcpStream,
    shard_tx: &Sender<ShardMsg>,
    inflight: &Inflight,
    write_lock: &Mutex<()>,
    server_cap: u32,
) {
    let mut reader = FrameReader::new();
    let mut cap = server_cap;
    let mut advisory = Vec::new();
    loop {
        match reader.read_from(&mut stream) {
            Ok(msg) => {
                if let Message::Hello(h) = &msg {
                    // Negotiate the window: the client may shrink it, never
                    // grow it past the server cap.
                    if h.max_inflight > 0 {
                        cap = u32::from(h.max_inflight).min(server_cap);
                    }
                }
                let is_observation = matches!(msg, Message::Observation(_));
                if is_observation {
                    let (alive, stalled) = inflight.acquire(cap);
                    if stalled {
                        // One advisory per stall, under the connection's
                        // write lock so it lands between shard frames.
                        let _guard = write_lock.lock().expect("write lock");
                        let _ = wire::write_frame(
                            &mut (&stream),
                            &Message::Error(ErrorMsg {
                                code: ErrorCode::Backpressure,
                                detail: format!("inflight window of {cap} is full"),
                            }),
                            &mut advisory,
                        );
                    }
                    if !alive {
                        return;
                    }
                }
                if shard_tx.send(ShardMsg::Frame { conn, msg }).is_err() {
                    return;
                }
            }
            Err(ReadError::Eof) | Err(ReadError::Io(_)) => {
                let _ = shard_tx.send(ShardMsg::Disconnected { conn });
                return;
            }
            Err(ReadError::Wire(err)) => {
                let _ = shard_tx.send(ShardMsg::Bad { conn, err });
                return;
            }
        }
    }
}

/// Shard-owned steady-state arenas: everything a response needs, reused
/// across frames and sessions.
struct ShardScratch {
    radar: Radar,
    frame: FrameScratch,
    encode: Vec<u8>,
}

fn shard_main(rx: Receiver<ShardMsg>, cfg: &GatewayConfig) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut scratch = ShardScratch {
        radar: Radar::new(cfg.radar),
        // Bit-exact options: extraction depends only on the samples, so one
        // arena can serve every session without cross-talk.
        frame: FrameScratch::new(ScratchOptions::bit_exact()),
        encode: Vec::new(),
    };
    let mut last_sweep = Instant::now();
    loop {
        match rx.recv_timeout(cfg.sweep_interval) {
            Ok(ShardMsg::Shutdown) => break,
            Ok(msg) => handle_msg(msg, &mut conns, &mut scratch, cfg),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if last_sweep.elapsed() >= cfg.sweep_interval {
            evict_idle(&mut conns, &mut scratch.encode, cfg.idle_timeout);
            last_sweep = Instant::now();
        }
    }
    // Drain every frame that was queued before the shutdown marker, then
    // tell the peers and close.
    while let Ok(msg) = rx.try_recv() {
        if !matches!(msg, ShardMsg::Shutdown) {
            handle_msg(msg, &mut conns, &mut scratch, cfg);
        }
    }
    for (_, mut conn) in conns.drain() {
        let _ = wire::write_frame(
            &mut (&conn.stream),
            &Message::Error(ErrorMsg {
                code: ErrorCode::ShuttingDown,
                detail: "gateway is shutting down".to_string(),
            }),
            &mut scratch.encode,
        );
        conn.close();
    }
}

fn evict_idle(conns: &mut HashMap<u64, Conn>, encode: &mut Vec<u8>, idle_timeout: Duration) {
    let evicted: Vec<u64> = conns
        .iter()
        .filter(|(_, c)| c.last_active.elapsed() >= idle_timeout)
        .map(|(&id, _)| id)
        .collect();
    for id in evicted {
        let mut conn = conns.remove(&id).expect("listed above");
        let _ = wire::write_frame(
            &mut (&conn.stream),
            &Message::Error(ErrorMsg {
                code: ErrorCode::Evicted,
                detail: "session idle past the eviction deadline".to_string(),
            }),
            encode,
        );
        conn.close();
    }
}

fn handle_msg(
    msg: ShardMsg,
    conns: &mut HashMap<u64, Conn>,
    scratch: &mut ShardScratch,
    cfg: &GatewayConfig,
) {
    match msg {
        ShardMsg::Connected {
            conn,
            stream,
            inflight,
            write_lock,
        } => {
            conns.insert(
                conn,
                Conn {
                    stream,
                    inflight,
                    write_lock,
                    session: None,
                    resume_pending: false,
                    last_active: Instant::now(),
                },
            );
        }
        ShardMsg::Disconnected { conn } => {
            if let Some(mut c) = conns.remove(&conn) {
                c.close();
            }
        }
        // Filtered out by both call sites; nothing to do.
        ShardMsg::Shutdown => {}
        ShardMsg::Bad { conn, err } => {
            if let Some(mut c) = conns.remove(&conn) {
                let code = match err {
                    WireError::VersionMismatch { .. } => ErrorCode::Version,
                    _ => ErrorCode::Malformed,
                };
                send(
                    &mut c,
                    &error_msg(code, err.to_string()),
                    &mut scratch.encode,
                );
                c.close();
            }
        }
        ShardMsg::Frame { conn, msg } => {
            let Some(c) = conns.get_mut(&conn) else {
                return;
            };
            c.last_active = Instant::now();
            if handle_frame(c, msg, scratch, cfg).is_err() {
                if let Some(mut c) = conns.remove(&conn) {
                    c.close();
                }
            }
        }
    }
}

/// Processes one client frame. `Err(())` closes the connection.
fn handle_frame(
    conn: &mut Conn,
    msg: Message,
    scratch: &mut ShardScratch,
    cfg: &GatewayConfig,
) -> Result<(), ()> {
    match msg {
        Message::Hello(hello) => {
            if conn.session.is_some() {
                send(
                    conn,
                    &error_msg(ErrorCode::Malformed, "duplicate Hello"),
                    &mut scratch.encode,
                );
                return Err(());
            }
            let session = match Session::new(&hello, &cfg.session) {
                Ok(s) => s,
                Err(e) => {
                    send(conn, &session_error_msg(&e), &mut scratch.encode);
                    return Err(());
                }
            };
            conn.session = Some(session);
            if hello.resume {
                // Welcome is deferred until the snapshot restores.
                conn.resume_pending = true;
                return Ok(());
            }
            welcome(conn, scratch, cfg)
        }
        Message::Snapshot(snap) => {
            if !conn.resume_pending {
                send(
                    conn,
                    &error_msg(
                        ErrorCode::Malformed,
                        "Snapshot is only valid directly after a resume Hello",
                    ),
                    &mut scratch.encode,
                );
                return Err(());
            }
            let session = conn
                .session
                .as_mut()
                .expect("resume_pending implies session");
            if let Err(e) = session.restore(&snap) {
                send(conn, &session_error_msg(&e), &mut scratch.encode);
                return Err(());
            }
            conn.resume_pending = false;
            welcome(conn, scratch, cfg)
        }
        Message::Observation(obs) => {
            // The reader counted this frame into the inflight window when it
            // was queued; release as it is processed.
            conn.inflight.release();
            let Some(session) = conn.session.as_mut() else {
                send(
                    conn,
                    &error_msg(ErrorCode::BadHandshake, "Observation before Hello"),
                    &mut scratch.encode,
                );
                return Err(());
            };
            if conn.resume_pending {
                send(
                    conn,
                    &error_msg(
                        ErrorCode::BadHandshake,
                        "Observation before resume Snapshot",
                    ),
                    &mut scratch.encode,
                );
                return Err(());
            }
            match session.observe(&obs, &scratch.radar, &mut scratch.frame) {
                Ok((verdict, safe)) => {
                    // Both response frames in one write.
                    scratch.encode.clear();
                    wire::encode_into(&Message::Verdict(verdict), &mut scratch.encode);
                    wire::encode_into(&Message::SafeMeasurement(safe), &mut scratch.encode);
                    write_all(conn, &scratch.encode)
                }
                Err(e) => {
                    send(conn, &session_error_msg(&e), &mut scratch.encode);
                    if e.fatal {
                        Err(())
                    } else {
                        Ok(())
                    }
                }
            }
        }
        Message::SnapshotRequest => {
            let Some(session) = conn.session.as_ref() else {
                send(
                    conn,
                    &error_msg(ErrorCode::BadHandshake, "SnapshotRequest before Hello"),
                    &mut scratch.encode,
                );
                return Err(());
            };
            let snap = session.snapshot();
            send(conn, &Message::Snapshot(snap), &mut scratch.encode);
            Ok(())
        }
        Message::Welcome(_)
        | Message::Verdict(_)
        | Message::SafeMeasurement(_)
        | Message::Error(_) => {
            send(
                conn,
                &error_msg(
                    ErrorCode::Malformed,
                    "server-to-client message from a client",
                ),
                &mut scratch.encode,
            );
            Err(())
        }
    }
}

fn welcome(conn: &mut Conn, scratch: &mut ShardScratch, cfg: &GatewayConfig) -> Result<(), ()> {
    let session = conn.session.as_ref().expect("welcome requires a session");
    let msg = Message::Welcome(Welcome {
        vehicle_id: session.vehicle_id(),
        next_step: session.next_step(),
        max_inflight: cfg.max_inflight.max(1),
    });
    send(conn, &msg, &mut scratch.encode);
    Ok(())
}

fn error_msg(code: ErrorCode, detail: impl Into<String>) -> Message {
    Message::Error(ErrorMsg {
        code,
        detail: detail.into(),
    })
}

fn session_error_msg(e: &SessionError) -> Message {
    Message::Error(ErrorMsg {
        code: e.code,
        detail: e.detail.clone(),
    })
}

fn send(conn: &mut Conn, msg: &Message, encode: &mut Vec<u8>) {
    // A write failure surfaces as Disconnected via the reader; nothing to
    // do here.
    let guard = Arc::clone(&conn.write_lock);
    let _guard = guard.lock().expect("write lock");
    let _ = wire::write_frame(&mut (&conn.stream), msg, encode);
}

fn write_all(conn: &mut Conn, bytes: &[u8]) -> Result<(), ()> {
    let guard = Arc::clone(&conn.write_lock);
    let _guard = guard.lock().expect("write lock");
    (&conn.stream).write_all(bytes).map_err(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_blocks_at_cap_and_wakes_on_release() {
        let inflight = Arc::new(Inflight::new());
        let (ok, stalled) = inflight.acquire(2);
        assert!(ok && !stalled);
        let (ok, stalled) = inflight.acquire(2);
        assert!(ok && !stalled);

        let blocked = {
            let inflight = Arc::clone(&inflight);
            std::thread::spawn(move || inflight.acquire(2))
        };
        // The third acquire must stall until a release.
        std::thread::sleep(Duration::from_millis(30));
        assert!(!blocked.is_finished());
        inflight.release();
        let (ok, stalled) = blocked.join().expect("join");
        assert!(ok && stalled, "stalled acquire reports the stall");
    }

    #[test]
    fn inflight_close_unblocks_a_stalled_reader() {
        let inflight = Arc::new(Inflight::new());
        assert!(inflight.acquire(1).0);
        let blocked = {
            let inflight = Arc::clone(&inflight);
            std::thread::spawn(move || inflight.acquire(1))
        };
        std::thread::sleep(Duration::from_millis(30));
        inflight.close();
        let (ok, _) = blocked.join().expect("join");
        assert!(!ok, "closed window reports dead connection");
    }
}
