//! A growable byte ring buffer — the per-connection inbox/outbox storage
//! for the reactor.
//!
//! The ring is a power-of-two array indexed with a wrapping head; contents
//! are exposed as at most two contiguous slices ([`ByteRing::as_slices`]),
//! so the reactor can decode frames and issue vectored-style socket writes
//! without ever compacting. Growth copies the live bytes once into a larger
//! power-of-two array; steady state (bytes drained as fast as they arrive)
//! never allocates after the first burst sizes the ring.

use std::io::{Read, Write};

/// Smallest ring allocation; below this the bookkeeping dominates.
const MIN_CAPACITY: usize = 64;

/// A growable ring of bytes with two-slice access.
#[derive(Debug)]
pub struct ByteRing {
    buf: Box<[u8]>,
    /// Index of the first live byte.
    head: usize,
    /// Number of live bytes.
    len: usize,
}

impl Default for ByteRing {
    fn default() -> Self {
        Self::with_capacity(MIN_CAPACITY)
    }
}

impl ByteRing {
    /// Creates a ring holding at least `cap` bytes before its first growth.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(MIN_CAPACITY).next_power_of_two();
        Self {
            buf: vec![0u8; cap].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Live byte count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bytes are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current allocation size.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    fn mask(&self) -> usize {
        self.buf.len() - 1
    }

    /// The live bytes as (front, back) slices; `back` is empty unless the
    /// contents wrap.
    pub fn as_slices(&self) -> (&[u8], &[u8]) {
        let cap = self.buf.len();
        let end = self.head + self.len;
        if end <= cap {
            (&self.buf[self.head..end], &[][..])
        } else {
            (&self.buf[self.head..], &self.buf[..end - cap])
        }
    }

    /// Drops the first `n` live bytes.
    ///
    /// # Panics
    ///
    /// If `n` exceeds [`ByteRing::len`].
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len, "consume past end of ring");
        self.head = (self.head + n) & self.mask();
        self.len -= n;
        if self.len == 0 {
            // Re-anchor so the next fill is one contiguous slice.
            self.head = 0;
        }
    }

    /// Grows to hold at least `len + extra` bytes, preserving order.
    fn reserve(&mut self, extra: usize) {
        let need = self.len + extra;
        if need <= self.buf.len() {
            return;
        }
        let new_cap = need.next_power_of_two().max(MIN_CAPACITY);
        let mut next = vec![0u8; new_cap].into_boxed_slice();
        let (a, b) = self.as_slices();
        next[..a.len()].copy_from_slice(a);
        next[a.len()..a.len() + b.len()].copy_from_slice(b);
        self.buf = next;
        self.head = 0;
    }

    /// Appends `data`, growing if needed.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.reserve(data.len());
        let cap = self.buf.len();
        let tail = (self.head + self.len) & self.mask();
        let first = data.len().min(cap - tail);
        self.buf[tail..tail + first].copy_from_slice(&data[..first]);
        self.buf[..data.len() - first].copy_from_slice(&data[first..]);
        self.len += data.len();
    }

    /// One `read` from `r` into the ring's spare room (growing so at least
    /// `min_spare` bytes can land). Returns `Ok(0)` only at EOF; a
    /// `WouldBlock` from a non-blocking source surfaces as the error.
    ///
    /// # Errors
    ///
    /// Propagates the reader's error, `WouldBlock` included.
    pub fn read_from<R: Read>(&mut self, r: &mut R, min_spare: usize) -> std::io::Result<usize> {
        self.reserve(min_spare.max(1));
        let cap = self.buf.len();
        let tail = (self.head + self.len) & self.mask();
        // One contiguous spare slice per call; the next call takes the wrap.
        let spare_end = if self.head > tail { self.head } else { cap };
        let n = r.read(&mut self.buf[tail..spare_end])?;
        self.len += n;
        Ok(n)
    }

    /// Writes queued bytes to `w` until the ring empties or the writer
    /// blocks; returns how many bytes left the ring. A `WouldBlock` is a
    /// normal stop, not an error.
    ///
    /// # Errors
    ///
    /// Transport failures other than `WouldBlock`.
    pub fn write_to<W: Write>(&mut self, w: &mut W) -> std::io::Result<usize> {
        let mut total = 0;
        while !self.is_empty() {
            let (a, _) = self.as_slices();
            match w.write(a) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.consume(n);
                    total += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(ring: &mut ByteRing) -> Vec<u8> {
        let (a, b) = ring.as_slices();
        let mut out = a.to_vec();
        out.extend_from_slice(b);
        let n = out.len();
        ring.consume(n);
        out
    }

    #[test]
    fn bytes_roundtrip_in_order_across_wraps() {
        let mut ring = ByteRing::with_capacity(64);
        let mut expect = Vec::new();
        let mut next = 0u8;
        // Push/pop in a pattern that forces the head past the wrap point
        // many times without growing.
        for round in 0..50 {
            let push = 7 + (round % 11);
            for _ in 0..push {
                ring.extend_from_slice(&[next]);
                expect.push(next);
                next = next.wrapping_add(1);
            }
            let pop = 5 + (round % 9);
            let pop = pop.min(ring.len());
            let (a, b) = ring.as_slices();
            let got: Vec<u8> = a.iter().chain(b).copied().take(pop).collect();
            assert_eq!(got, expect[..pop].to_vec());
            ring.consume(pop);
            expect.drain(..pop);
        }
        assert_eq!(drain(&mut ring), expect);
    }

    #[test]
    fn growth_preserves_wrapped_contents() {
        let mut ring = ByteRing::with_capacity(64);
        ring.extend_from_slice(&[0xAA; 48]);
        ring.consume(40); // head now mid-buffer
        let tail: Vec<u8> = (0..100).collect();
        ring.extend_from_slice(&tail); // wraps, then grows
        let mut expect = vec![0xAA; 8];
        expect.extend_from_slice(&tail);
        assert_eq!(drain(&mut ring), expect);
        assert!(ring.capacity() >= 108);
    }

    #[test]
    fn write_to_stops_cleanly_at_would_block() {
        struct Choked {
            budget: usize,
            sunk: Vec<u8>,
        }
        impl Write for Choked {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.budget == 0 {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = buf.len().min(self.budget).min(3);
                self.budget -= n;
                self.sunk.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut ring = ByteRing::default();
        let payload: Vec<u8> = (0..40).collect();
        ring.extend_from_slice(&payload);
        let mut w = Choked {
            budget: 10,
            sunk: Vec::new(),
        };
        assert_eq!(ring.write_to(&mut w).expect("partial write"), 10);
        assert_eq!(ring.len(), 30);
        w.budget = usize::MAX;
        assert_eq!(ring.write_to(&mut w).expect("rest"), 30);
        assert!(ring.is_empty());
        assert_eq!(w.sunk, payload);
    }

    #[test]
    fn read_from_fills_and_reports_eof() {
        let src: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let mut cursor = std::io::Cursor::new(src.clone());
        let mut ring = ByteRing::with_capacity(64);
        let mut got = Vec::new();
        loop {
            let n = ring.read_from(&mut cursor, 64).expect("read");
            if n == 0 {
                break;
            }
            got.extend_from_slice(&drain(&mut ring));
        }
        assert_eq!(got, src);
    }
}
