//! A blocking gateway client — the reference protocol driver used by the
//! load generator and the integration tests.

use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{
    self, ErrorCode, ErrorMsg, FrameReader, Hello, Message, Observation, ReadError,
    SafeMeasurement, SnapshotMsg, VerdictMsg, Welcome,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's bytes did not parse.
    Wire(wire::WireError),
    /// The server reported a fatal error.
    Remote(ErrorMsg),
    /// The server answered with an unexpected message.
    Protocol(String),
    /// The server hung up.
    Eof,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Remote(e) => write!(f, "server error {:?}: {}", e.code, e.detail),
            ClientError::Protocol(s) => write!(f, "protocol violation: {s}"),
            ClientError::Eof => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ReadError> for ClientError {
    fn from(e: ReadError) -> Self {
        match e {
            ReadError::Eof => ClientError::Eof,
            ReadError::Io(e) => ClientError::Io(e),
            ReadError::Wire(e) => ClientError::Wire(e),
        }
    }
}

/// A blocking, lock-step gateway session.
#[derive(Debug)]
pub struct GatewayClient {
    stream: TcpStream,
    reader: FrameReader,
    encode: Vec<u8>,
}

impl GatewayClient {
    /// Connects and performs the fresh-session handshake.
    ///
    /// # Errors
    ///
    /// Transport failures, or a server `Error` frame instead of `Welcome`.
    pub fn connect(addr: impl ToSocketAddrs, hello: Hello) -> Result<(Self, Welcome), ClientError> {
        let mut client = Self::open(addr)?;
        client.send(&Message::Hello(hello))?;
        let welcome = client.expect_welcome()?;
        Ok((client, welcome))
    }

    /// Connects and restores a previous session from a client-held
    /// snapshot; the returned `Welcome` carries the resumed `next_step`.
    ///
    /// # Errors
    ///
    /// Transport failures, or a server `Error` frame instead of `Welcome`.
    pub fn connect_resume(
        addr: impl ToSocketAddrs,
        mut hello: Hello,
        snapshot: &SnapshotMsg,
    ) -> Result<(Self, Welcome), ClientError> {
        hello.resume = true;
        let mut client = Self::open(addr)?;
        client.send(&Message::Hello(hello))?;
        client.send(&Message::Snapshot(snapshot.clone()))?;
        let welcome = client.expect_welcome()?;
        Ok((client, welcome))
    }

    fn open(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        crate::net::configure_stream(&stream)?;
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            encode: Vec::new(),
        })
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send(&mut self, msg: &Message) -> Result<(), ClientError> {
        wire::write_frame(&mut self.stream, msg, &mut self.encode)?;
        Ok(())
    }

    /// Reads one frame, advisory backpressure frames included.
    ///
    /// # Errors
    ///
    /// Transport or decode failures.
    pub fn recv(&mut self) -> Result<Message, ClientError> {
        Ok(self.reader.read_from(&mut self.stream)?)
    }

    /// Reads the next non-advisory frame; fatal server errors become
    /// [`ClientError::Remote`].
    ///
    /// # Errors
    ///
    /// Transport/decode failures or a fatal server error.
    pub fn recv_significant(&mut self) -> Result<Message, ClientError> {
        loop {
            match self.recv()? {
                Message::Error(e) if e.code == ErrorCode::Backpressure => continue,
                Message::Error(e) => return Err(ClientError::Remote(e)),
                msg => return Ok(msg),
            }
        }
    }

    /// Lock-step observation: sends one frame and blocks for its
    /// (verdict, safe measurement) response pair.
    ///
    /// # Errors
    ///
    /// Transport/decode failures, a fatal server error, or out-of-order
    /// responses.
    pub fn observe(
        &mut self,
        obs: &Observation,
    ) -> Result<(VerdictMsg, SafeMeasurement), ClientError> {
        self.send(&Message::Observation(obs.clone()))?;
        let verdict = match self.recv_significant()? {
            Message::Verdict(v) => v,
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected Verdict, got {other:?}"
                )))
            }
        };
        let safe = match self.recv_significant()? {
            Message::SafeMeasurement(s) => s,
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected SafeMeasurement, got {other:?}"
                )))
            }
        };
        Ok((verdict, safe))
    }

    /// Asks the server to export the session state.
    ///
    /// # Errors
    ///
    /// Transport/decode failures or a fatal server error.
    pub fn snapshot(&mut self) -> Result<SnapshotMsg, ClientError> {
        self.send(&Message::SnapshotRequest)?;
        match self.recv_significant()? {
            Message::Snapshot(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected Snapshot, got {other:?}"
            ))),
        }
    }

    fn expect_welcome(&mut self) -> Result<Welcome, ClientError> {
        match self.recv_significant()? {
            Message::Welcome(w) => Ok(w),
            other => Err(ClientError::Protocol(format!(
                "expected Welcome, got {other:?}"
            ))),
        }
    }
}
