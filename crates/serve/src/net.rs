//! Socket-option policy, in one place for both ends of the wire.
//!
//! The gateway's request/response pairs are tiny (tens of bytes) and
//! latency-gated, so Nagle's algorithm is pure harm here: it would hold a
//! verdict frame hostage waiting for a coalescing window. Server and
//! client therefore both disable it through this helper — and a failure
//! is reported, not swallowed, since a socket that silently kept Nagle on
//! shows up later as an inexplicable p99 regression.

use std::io;
use std::net::TcpStream;

/// Applies the gateway's socket options (currently `TCP_NODELAY`).
///
/// # Errors
///
/// Propagates `setsockopt` failures.
pub fn configure_stream(stream: &TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)
}

/// True when an I/O error is the non-blocking "try again later" signal
/// rather than a real failure.
pub(crate) fn is_would_block(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::WouldBlock
}

/// Caps the kernel send buffer (`SO_SNDBUF`) for `stream`.
///
/// The gateway leaves this alone by default — kernel autotuning is the
/// right call for throughput — but a deterministic, small buffer is how
/// the backpressure tests force the write-readiness path without
/// megabytes of flood traffic.
///
/// # Errors
///
/// Propagates `setsockopt` failures.
#[cfg(unix)]
pub fn set_send_buffer(stream: &TcpStream, bytes: usize) -> io::Result<()> {
    use std::os::fd::AsRawFd;
    sys::set_sndbuf(stream.as_raw_fd(), bytes.min(i32::MAX as usize) as i32)
}

/// Raw `setsockopt` shim — the only `unsafe` in this module, confined to
/// one well-typed syscall.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::ffi::{c_int, c_void};
    use std::io;
    use std::os::fd::RawFd;

    #[cfg(any(target_os = "macos", target_os = "freebsd"))]
    const SOL_SOCKET: c_int = 0xffff;
    #[cfg(not(any(target_os = "macos", target_os = "freebsd")))]
    const SOL_SOCKET: c_int = 1;

    #[cfg(any(target_os = "macos", target_os = "freebsd"))]
    const SO_SNDBUF: c_int = 0x1001;
    #[cfg(not(any(target_os = "macos", target_os = "freebsd")))]
    const SO_SNDBUF: c_int = 7;

    extern "C" {
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
    }

    pub fn set_sndbuf(fd: RawFd, bytes: i32) -> io::Result<()> {
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_SNDBUF,
                std::ptr::addr_of!(bytes).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }
}
