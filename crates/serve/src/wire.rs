//! The gateway's versioned binary wire protocol.
//!
//! Every frame is a fixed 12-byte header followed by a length-prefixed
//! payload, all little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        "ARGS"
//! 4       2     version      u16, currently 1
//! 6       1     msg_type     u8 (see the MSG_* constants)
//! 7       1     flags        u8, reserved — always 0, ignored on decode
//! 8       4     payload_len  u32, at most MAX_PAYLOAD
//! 12      ...   payload
//! ```
//!
//! Scalars are fixed-width little-endian; `f64` travels as its IEEE-754 bit
//! pattern (`to_bits`/`from_bits`), so values — including NaN payloads —
//! roundtrip bit-exactly. `Option<T>` is a `u8` presence tag followed by the
//! value; sequences are a `u32` count followed by the elements; strings are
//! a `u16` byte length followed by UTF-8.
//!
//! Decoding is pure slice inspection: every malformed input maps to a typed
//! [`WireError`], never a panic, and a frame must consume its payload
//! exactly ([`WireError::TrailingBytes`] otherwise). The codec has no
//! dependencies beyond `std` and the workspace's own data types, and no
//! `unsafe`.
//!
//! Two framing layers sit on top of the message codec:
//!
//! * **Multiplexing** — a [`MSG_MUX`] frame carries a `u32` channel id
//!   followed by one complete nested frame, so many sessions share one
//!   socket (the fd budget of the 100k ramp demands it). Mux is a framing
//!   concept, not a [`Message`] variant: [`decode_any_frame`] and the
//!   [`Decoder`] return the channel alongside the inner message, and
//!   nesting a mux inside a mux is rejected.
//! * **Incremental decoding** — the resumable [`Decoder`] accepts frames
//!   split at arbitrary byte boundaries across reads, which is what a
//!   readiness-driven reactor sees on the wire.
//!
//! # Fusion extensions
//!
//! Version 1 frames grew three **optional tails** for the attack-aware
//! fusion stack (DESIGN.md §10). Each tail is appended only when it
//! carries non-default content and is decoded only when payload bytes
//! remain, so a pre-fusion peer's frames decode unchanged (fields at
//! their defaults) and non-fused frames are byte-identical to the
//! pre-fusion encoding:
//!
//! * [`Hello`] — one trailing [`FusionMode`] byte (absent = `CraOnly`);
//! * [`Observation`] — two trailing `Option<f64>`s: camera range and
//!   V2V leader speed (absent = both dropped out);
//! * [`SnapshotMsg`] — a trailing [`FusedState`] blob (absent = a v1
//!   CRA-only snapshot, which restores into a fused session with fusion
//!   state at defaults).

use std::io::{Read, Write};

use argus_core::{
    CheckpointState, DetectorState, FusedSnapshot, FusionMode, MeasurementSource, MonitorState,
    PipelineSnapshot, PolicySnapshot, PolicyState, PredictorKind, PredictorState,
};
use argus_cra::Verdict;

/// Frame magic: `b"ARGS"`.
pub const MAGIC: [u8; 4] = *b"ARGS";
/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 12;
/// Upper bound on a payload; anything larger is rejected before buffering.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Message-type byte for [`Message::Hello`].
pub const MSG_HELLO: u8 = 1;
/// Message-type byte for [`Message::Welcome`].
pub const MSG_WELCOME: u8 = 2;
/// Message-type byte for [`Message::Observation`].
pub const MSG_OBSERVATION: u8 = 3;
/// Message-type byte for [`Message::Verdict`].
pub const MSG_VERDICT: u8 = 4;
/// Message-type byte for [`Message::SafeMeasurement`].
pub const MSG_SAFE_MEASUREMENT: u8 = 5;
/// Message-type byte for [`Message::Snapshot`].
pub const MSG_SNAPSHOT: u8 = 6;
/// Message-type byte for [`Message::SnapshotRequest`].
pub const MSG_SNAPSHOT_REQUEST: u8 = 7;
/// Message-type byte for [`Message::Error`].
pub const MSG_ERROR: u8 = 8;
/// Frame-type byte for a multiplexed frame: a `u32` channel id followed by
/// one complete nested frame. A framing-layer concept — there is no
/// corresponding [`Message`] variant, and [`decode_payload`] rejects it so
/// a mux can never nest inside a mux.
pub const MSG_MUX: u8 = 9;

/// A structural decoding failure. Every variant is a property of the bytes,
/// so the peer can be answered with a precise [`ErrorCode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame does. `needed` is the total byte
    /// count required to make progress.
    Truncated {
        /// Bytes required to decode further.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version the peer sent.
        got: u16,
    },
    /// The message-type byte is not one of the `MSG_*` constants.
    UnknownMessage(u8),
    /// An enum tag inside a payload is out of range.
    UnknownTag {
        /// Which field carried the tag.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// The header declares a payload larger than [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        len: u32,
    },
    /// The payload contains bytes past the end of the message.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A length-prefixed string is not valid UTF-8.
    BadString,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, have {got}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::VersionMismatch { got } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks {got}, this build speaks {VERSION}"
                )
            }
            WireError::UnknownMessage(t) => write!(f, "unknown message type {t}"),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::Oversized { len } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
                )
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message payload")
            }
            WireError::BadString => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Typed error codes carried by [`Message::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer's protocol version is not spoken here; fatal.
    Version,
    /// The peer sent bytes this codec cannot decode, or a message that is
    /// invalid in the current protocol state; fatal.
    Malformed,
    /// The Hello named a predictor kind this server cannot build; fatal.
    UnsupportedPredictor,
    /// A message arrived before the handshake established a session; fatal.
    BadHandshake,
    /// An observation's step went backwards; the frame is dropped but the
    /// session survives.
    BadStep,
    /// Advisory: the session's inflight window is full and the server has
    /// stopped reading until it drains. Not fatal; no response is owed.
    Backpressure,
    /// The session sat idle past the server's eviction deadline; the
    /// connection is closed and server-side state discarded.
    Evicted,
    /// The server is draining for shutdown; fatal.
    ShuttingDown,
    /// Internal server failure; fatal.
    Internal,
}

impl ErrorCode {
    /// Wire encoding of the code.
    pub fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Version => 1,
            ErrorCode::Malformed => 2,
            ErrorCode::UnsupportedPredictor => 3,
            ErrorCode::BadHandshake => 4,
            ErrorCode::BadStep => 5,
            ErrorCode::Backpressure => 6,
            ErrorCode::Evicted => 7,
            ErrorCode::ShuttingDown => 8,
            ErrorCode::Internal => 9,
        }
    }

    /// Inverse of [`ErrorCode::to_u8`].
    pub fn from_u8(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            1 => ErrorCode::Version,
            2 => ErrorCode::Malformed,
            3 => ErrorCode::UnsupportedPredictor,
            4 => ErrorCode::BadHandshake,
            5 => ErrorCode::BadStep,
            6 => ErrorCode::Backpressure,
            7 => ErrorCode::Evicted,
            8 => ErrorCode::ShuttingDown,
            9 => ErrorCode::Internal,
            tag => {
                return Err(WireError::UnknownTag {
                    what: "error code",
                    tag,
                })
            }
        })
    }
}

/// Session handshake, client → server, first frame on a connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Caller-chosen vehicle label, echoed in snapshots.
    pub vehicle_id: u64,
    /// Which estimator free-runs the leader-speed stream during attacks.
    pub predictor: PredictorKind,
    /// Requested inflight-observation window; `0` accepts the server
    /// default. The server replies with the granted value in [`Welcome`].
    pub max_inflight: u16,
    /// When set, the client follows up with a [`Message::Snapshot`] to
    /// restore a previous session before the server sends [`Welcome`].
    pub resume: bool,
    /// How much defense machinery the session runs: the paper's
    /// single-radar pipeline or the fused stack. Encoded as an optional
    /// trailing byte — a pre-fusion Hello decodes as `CraOnly`.
    pub fusion: FusionMode,
}

/// Handshake acknowledgement, server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Welcome {
    /// Echo of the Hello's vehicle label.
    pub vehicle_id: u64,
    /// The step the server expects next (0 fresh, the snapshot's step on
    /// resume).
    pub next_step: u64,
    /// Granted inflight-observation window.
    pub max_inflight: u16,
}

/// One radar observation, client → server.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Sample instant; must be ≥ the session's expected next step.
    pub step: u64,
    /// Trusted ego (follower) speed, m/s.
    pub own_speed: f64,
    /// Total received in-band power, W — the CRA detector's input.
    pub received_power: f64,
    /// Whether the receiver was captured by interference.
    pub jammed: bool,
    /// The measurement itself, in one of three shapes.
    pub body: ObservationBody,
    /// Camera range to the leader, m (`None` = frame dropped). Part of the
    /// optional aux tail — absent on the wire when both aux fields are
    /// `None`, so non-fused observations encode exactly as before.
    pub aux_camera: Option<f64>,
    /// V2V-broadcast leader speed, m/s (`None` = packet lost).
    pub aux_v2v: Option<f64>,
}

/// The measurement part of an [`Observation`].
#[derive(Debug, Clone, PartialEq)]
pub enum ObservationBody {
    /// No echo above the detection threshold (e.g. a challenge instant).
    Empty,
    /// The client ran the DSP chain itself and ships the extracted values.
    Extracted(ExtractedMeasurement),
    /// The client ships the raw baseband; the server runs the extraction
    /// on its own arenas ([DESIGN.md §8](../../../DESIGN.md)).
    Raw(RawFrame),
}

/// A client-side extracted radar measurement (post measurement-noise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractedMeasurement {
    /// Measured distance, m.
    pub distance: f64,
    /// Measured range rate, m/s (positive = gap opening).
    pub range_rate: f64,
    /// Up-chirp beat frequency, Hz.
    pub beat_up: f64,
    /// Down-chirp beat frequency, Hz.
    pub beat_down: f64,
    /// Linear SNR of the strongest echo.
    pub snr: f64,
}

/// Raw complex baseband of one triangular FMCW frame, plus the scalars the
/// server cannot reconstruct: the echo SNR (computed from the link budget
/// client-side) and the additive measurement-noise realization, applied
/// post-extraction so the result is bit-identical to client-side extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct RawFrame {
    /// Linear SNR of the strongest echo.
    pub snr: f64,
    /// Additive distance-noise draw, m.
    pub noise_distance: f64,
    /// Additive range-rate-noise draw, m/s.
    pub noise_range_rate: f64,
    /// Up-sweep samples, interleaved re/im — length `2 · samples_per_sweep`.
    pub up: Vec<f64>,
    /// Down-sweep samples, interleaved re/im.
    pub down: Vec<f64>,
}

/// Detector verdict for one step, server → client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerdictMsg {
    /// The observation step this answers.
    pub step: u64,
    /// Algorithm 2's verdict.
    pub verdict: Verdict,
}

/// The safe measurement for one step, server → client — the pipeline output
/// the ACC controller consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafeMeasurement {
    /// The observation step this answers.
    pub step: u64,
    /// Where the values came from (radar passthrough vs estimator).
    pub source: MeasurementSource,
    /// Distance estimate, m.
    pub distance: Option<f64>,
    /// Relative speed estimate, m/s.
    pub relative_speed: f64,
    /// Margin-adjusted distance for the controller, m.
    pub control_distance: Option<f64>,
}

/// A full serialized session state. Server → client in answer to
/// [`Message::SnapshotRequest`]; client → server after a resume [`Hello`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMsg {
    /// Vehicle label of the session the state belongs to.
    pub vehicle_id: u64,
    /// The step the restored session expects next.
    pub next_step: u64,
    /// The embedded CRA pipeline's state — the whole state of a
    /// single-radar session.
    pub state: PipelineSnapshot,
    /// Fusion-layer state of a fused session, appended as an optional
    /// tail. `None` is the v1 shape: it restores into a fused session
    /// with every fusion field at its default
    /// ([`FusedSnapshot::from_v1`] semantics).
    pub fused: Option<FusedState>,
}

/// The fusion-layer half of a fused session's state: everything in a
/// [`FusedSnapshot`] except the embedded CRA snapshot, which travels as
/// [`SnapshotMsg::state`] so the wire never duplicates it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FusedState {
    /// Fused leader-speed trend predictor state.
    pub predictor: PredictorState,
    /// Fused dead-reckoning anchor.
    pub last_distance: Option<f64>,
    /// Consecutive steps without a measurement-backed fused distance.
    pub free_run: u64,
    /// Per-channel monitor states in `ChannelId::ALL` order.
    pub monitors: Vec<MonitorState>,
    /// Per-channel trust scores in `ChannelId::ALL` order.
    pub trusts: Vec<f64>,
    /// Mitigation policy state.
    pub policy: PolicySnapshot,
    /// First IDS alarm step, if any.
    pub ids_detection: Option<u64>,
}

impl FusedState {
    /// Splits a [`FusedSnapshot`] into its wire form (the CRA half is
    /// carried separately as [`SnapshotMsg::state`]).
    pub fn from_snapshot(s: &FusedSnapshot) -> Self {
        Self {
            predictor: s.predictor.clone(),
            last_distance: s.last_distance,
            free_run: s.free_run,
            monitors: s.monitors.clone(),
            trusts: s.trusts.clone(),
            policy: s.policy,
            ids_detection: s.ids_detection,
        }
    }

    /// Rejoins the wire halves into the [`FusedSnapshot`] the pipeline
    /// restores from.
    pub fn into_snapshot(self, cra: PipelineSnapshot) -> FusedSnapshot {
        FusedSnapshot {
            cra,
            predictor: self.predictor,
            last_distance: self.last_distance,
            free_run: self.free_run,
            monitors: self.monitors,
            trusts: self.trusts,
            policy: self.policy,
            ids_detection: self.ids_detection,
        }
    }
}

/// An error report. Fatal unless the code says otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorMsg {
    /// What went wrong.
    pub code: ErrorCode,
    /// Human-readable detail; may be empty.
    pub detail: String,
}

/// Any protocol frame.
// `Snapshot` dwarfs the other frames now that it can carry a fused-state
// blob, but a `Message` is decoded, handled, and dropped within one
// frame turn — it is never stored in bulk, so the size skew is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Session handshake (client → server).
    Hello(Hello),
    /// Handshake acknowledgement (server → client).
    Welcome(Welcome),
    /// One radar observation (client → server).
    Observation(Observation),
    /// Detector verdict (server → client).
    Verdict(VerdictMsg),
    /// Safe measurement (server → client).
    SafeMeasurement(SafeMeasurement),
    /// Serialized session state (both directions).
    Snapshot(SnapshotMsg),
    /// Ask the server to export the session state (client → server).
    SnapshotRequest,
    /// Error report (server → client).
    Error(ErrorMsg),
}

impl Message {
    /// The frame's `msg_type` byte.
    pub fn msg_type(&self) -> u8 {
        match self {
            Message::Hello(_) => MSG_HELLO,
            Message::Welcome(_) => MSG_WELCOME,
            Message::Observation(_) => MSG_OBSERVATION,
            Message::Verdict(_) => MSG_VERDICT,
            Message::SafeMeasurement(_) => MSG_SAFE_MEASUREMENT,
            Message::Snapshot(_) => MSG_SNAPSHOT,
            Message::SnapshotRequest => MSG_SNAPSHOT_REQUEST,
            Message::Error(_) => MSG_ERROR,
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar codecs.

fn predictor_kind_to_u8(k: PredictorKind) -> u8 {
    match k {
        PredictorKind::RlsTrend => 0,
        PredictorKind::RlsAr4 => 1,
        PredictorKind::Holt => 2,
    }
}

fn predictor_kind_from_u8(tag: u8) -> Result<PredictorKind, WireError> {
    Ok(match tag {
        0 => PredictorKind::RlsTrend,
        1 => PredictorKind::RlsAr4,
        2 => PredictorKind::Holt,
        tag => {
            return Err(WireError::UnknownTag {
                what: "predictor kind",
                tag,
            })
        }
    })
}

fn fusion_mode_from_u8(tag: u8) -> Result<FusionMode, WireError> {
    // Strict on the wire: `FusionMode::from_wire` degrades unknown bytes
    // to `CraOnly`, but a codec must surface malformed input, not launder
    // it into a mode the peer never asked for.
    match tag {
        0..=2 => Ok(FusionMode::from_wire(tag)),
        tag => Err(WireError::UnknownTag {
            what: "fusion mode",
            tag,
        }),
    }
}

fn policy_state_from_u8(tag: u8) -> Result<PolicyState, WireError> {
    match tag {
        0..=3 => Ok(PolicyState::from_wire(tag)),
        tag => Err(WireError::UnknownTag {
            what: "policy state",
            tag,
        }),
    }
}

fn verdict_to_u8(v: Verdict) -> u8 {
    match v {
        Verdict::NotChallenged {
            under_attack: false,
        } => 0,
        Verdict::NotChallenged { under_attack: true } => 1,
        Verdict::ChallengePassed => 2,
        Verdict::AttackDetected => 3,
    }
}

fn verdict_from_u8(tag: u8) -> Result<Verdict, WireError> {
    Ok(match tag {
        0 => Verdict::NotChallenged {
            under_attack: false,
        },
        1 => Verdict::NotChallenged { under_attack: true },
        2 => Verdict::ChallengePassed,
        3 => Verdict::AttackDetected,
        tag => {
            return Err(WireError::UnknownTag {
                what: "verdict",
                tag,
            })
        }
    })
}

fn source_to_u8(s: MeasurementSource) -> u8 {
    match s {
        MeasurementSource::Radar => 0,
        MeasurementSource::Estimated => 1,
        MeasurementSource::Unavailable => 2,
    }
}

fn source_from_u8(tag: u8) -> Result<MeasurementSource, WireError> {
    Ok(match tag {
        0 => MeasurementSource::Radar,
        1 => MeasurementSource::Estimated,
        2 => MeasurementSource::Unavailable,
        tag => {
            return Err(WireError::UnknownTag {
                what: "measurement source",
                tag,
            })
        }
    })
}

// ---------------------------------------------------------------------------
// Payload writer: plain pushes into a caller-owned Vec.

fn put_u16(out: &mut Vec<u8>, x: u16) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, x: bool) {
    out.push(u8::from(x));
}

fn put_opt_f64(out: &mut Vec<u8>, x: Option<f64>) {
    match x {
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
        None => out.push(0),
    }
}

fn put_opt_u64(out: &mut Vec<u8>, x: Option<u64>) {
    match x {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    put_u32(out, xs.len() as u32);
    for &x in xs {
        put_f64(out, x);
    }
}

fn put_u64s(out: &mut Vec<u8>, xs: &[u64]) {
    put_u32(out, xs.len() as u32);
    for &x in xs {
        put_u64(out, x);
    }
}

/// Strings are detail text only; anything past the u16 range is clipped at
/// a char boundary rather than rejected.
fn put_str(out: &mut Vec<u8>, s: &str) {
    let mut end = s.len().min(u16::MAX as usize);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    put_u16(out, end as u16);
    out.extend_from_slice(&s.as_bytes()[..end]);
}

// ---------------------------------------------------------------------------
// Payload reader: pure slice cursor, typed errors, no panics.

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated {
            needed: usize::MAX,
            got: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(WireError::Truncated {
                needed: end,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::UnknownTag { what: "bool", tag }),
        }
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            tag => Err(WireError::UnknownTag {
                what: "option",
                tag,
            }),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            tag => Err(WireError::UnknownTag {
                what: "option",
                tag,
            }),
        }
    }

    /// Length-checked before allocation: the declared count must fit in the
    /// remaining bytes, so a hostile length prefix cannot force a huge
    /// reservation.
    fn f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.u32()? as usize;
        let needed = n.checked_mul(8).ok_or(WireError::Truncated {
            needed: usize::MAX,
            got: self.buf.len(),
        })?;
        if self.buf.len() - self.pos < needed {
            return Err(WireError::Truncated {
                needed: self.pos + needed,
                got: self.buf.len(),
            });
        }
        (0..n).map(|_| self.f64()).collect()
    }

    fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.u32()? as usize;
        let needed = n.checked_mul(8).ok_or(WireError::Truncated {
            needed: usize::MAX,
            got: self.buf.len(),
        })?;
        if self.buf.len() - self.pos < needed {
            return Err(WireError::Truncated {
                needed: self.pos + needed,
                got: self.buf.len(),
            });
        }
        (0..n).map(|_| self.u64()).collect()
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadString)
    }

    /// Whether any payload bytes remain — the presence test for the
    /// optional fusion tails.
    fn has_remaining(&self) -> bool {
        self.pos < self.buf.len()
    }

    fn done(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Pipeline-state codec (shared by the Snapshot message).

fn put_predictor_state(out: &mut Vec<u8>, s: &PredictorState) {
    put_u64s(out, &s.counters);
    put_f64s(out, &s.values);
}

fn read_predictor_state(r: &mut Reader<'_>) -> Result<PredictorState, WireError> {
    let counters = r.u64s()?;
    let values = r.f64s()?;
    Ok(PredictorState { counters, values })
}

fn put_snapshot_state(out: &mut Vec<u8>, s: &PipelineSnapshot) {
    put_bool(out, s.detector.latched);
    put_opt_u64(out, s.detector.first_detection);
    put_u64s(out, &s.detector.detections);
    put_predictor_state(out, &s.predictor);
    put_opt_f64(out, s.last_distance);
    put_u64(out, s.estimation_steps);
    put_u64(out, s.consecutive_estimates);
    put_bool(out, s.was_attacked);
    match &s.checkpoint {
        Some(cp) => {
            out.push(1);
            put_predictor_state(out, &cp.predictor);
            put_opt_f64(out, cp.last_distance);
        }
        None => out.push(0),
    }
    put_f64s(out, &s.speeds_since_checkpoint);
}

fn read_snapshot_state(r: &mut Reader<'_>) -> Result<PipelineSnapshot, WireError> {
    let latched = r.bool()?;
    let first_detection = r.opt_u64()?;
    let detections = r.u64s()?;
    let detector = DetectorState {
        latched,
        first_detection,
        detections,
    };
    let predictor = read_predictor_state(r)?;
    let last_distance = r.opt_f64()?;
    let estimation_steps = r.u64()?;
    let consecutive_estimates = r.u64()?;
    let was_attacked = r.bool()?;
    let checkpoint = match r.u8()? {
        0 => None,
        1 => {
            let predictor = read_predictor_state(r)?;
            let last_distance = r.opt_f64()?;
            Some(CheckpointState {
                predictor,
                last_distance,
            })
        }
        tag => {
            return Err(WireError::UnknownTag {
                what: "checkpoint",
                tag,
            })
        }
    };
    let speeds_since_checkpoint = r.f64s()?;
    Ok(PipelineSnapshot {
        detector,
        predictor,
        last_distance,
        estimation_steps,
        consecutive_estimates,
        was_attacked,
        checkpoint,
        speeds_since_checkpoint,
    })
}

// ---------------------------------------------------------------------------
// Fusion-state codec (the Snapshot message's optional tail).

fn put_monitor_state(out: &mut Vec<u8>, s: &MonitorState) {
    put_f64s(out, &s.chi2_terms);
    put_f64(out, s.chi2_statistic);
    put_f64(out, s.last_nis);
    put_bool(out, s.chi2_alarmed);
    put_u64(out, s.chi2_alarms);
    put_f64(out, s.ewma);
    put_f64(out, s.cusum);
    put_u64(out, s.samples);
}

fn read_monitor_state(r: &mut Reader<'_>) -> Result<MonitorState, WireError> {
    Ok(MonitorState {
        chi2_terms: r.f64s()?,
        chi2_statistic: r.f64()?,
        last_nis: r.f64()?,
        chi2_alarmed: r.bool()?,
        chi2_alarms: r.u64()?,
        ewma: r.f64()?,
        cusum: r.f64()?,
        samples: r.u64()?,
    })
}

/// Smallest possible encoded [`MonitorState`]: empty-terms length prefix,
/// five `f64`s, one bool, two `u64`s. Used to length-check a hostile
/// monitor count before any allocation.
const MONITOR_STATE_MIN_LEN: usize = 4 + 8 * 5 + 1 + 8 * 2;

fn put_fused_state(out: &mut Vec<u8>, s: &FusedState) {
    put_predictor_state(out, &s.predictor);
    put_opt_f64(out, s.last_distance);
    put_u64(out, s.free_run);
    put_u32(out, s.monitors.len() as u32);
    for m in &s.monitors {
        put_monitor_state(out, m);
    }
    put_f64s(out, &s.trusts);
    out.push(s.policy.state.to_wire());
    put_u64(out, s.policy.quiet);
    put_u64(out, s.policy.safe_mode_steps);
    put_opt_u64(out, s.ids_detection);
}

fn read_fused_state(r: &mut Reader<'_>) -> Result<FusedState, WireError> {
    let predictor = read_predictor_state(r)?;
    let last_distance = r.opt_f64()?;
    let free_run = r.u64()?;
    let n = r.u32()? as usize;
    let needed = n
        .checked_mul(MONITOR_STATE_MIN_LEN)
        .ok_or(WireError::Truncated {
            needed: usize::MAX,
            got: r.buf.len(),
        })?;
    if r.buf.len() - r.pos < needed {
        return Err(WireError::Truncated {
            needed: r.pos + needed,
            got: r.buf.len(),
        });
    }
    let mut monitors = Vec::with_capacity(n);
    for _ in 0..n {
        monitors.push(read_monitor_state(r)?);
    }
    let trusts = r.f64s()?;
    let policy = PolicySnapshot {
        state: policy_state_from_u8(r.u8()?)?,
        quiet: r.u64()?,
        safe_mode_steps: r.u64()?,
    };
    let ids_detection = r.opt_u64()?;
    Ok(FusedState {
        predictor,
        last_distance,
        free_run,
        monitors,
        trusts,
        policy,
        ids_detection,
    })
}

// ---------------------------------------------------------------------------
// Frame encode/decode.

fn encode_payload(msg: &Message, out: &mut Vec<u8>) {
    match msg {
        Message::Hello(h) => {
            put_u64(out, h.vehicle_id);
            out.push(predictor_kind_to_u8(h.predictor));
            put_u16(out, h.max_inflight);
            put_bool(out, h.resume);
            // Optional tail: a CraOnly Hello stays byte-identical to the
            // pre-fusion encoding.
            if h.fusion != FusionMode::CraOnly {
                out.push(h.fusion.to_wire());
            }
        }
        Message::Welcome(w) => {
            put_u64(out, w.vehicle_id);
            put_u64(out, w.next_step);
            put_u16(out, w.max_inflight);
        }
        Message::Observation(o) => {
            put_u64(out, o.step);
            put_f64(out, o.own_speed);
            put_f64(out, o.received_power);
            put_bool(out, o.jammed);
            match &o.body {
                ObservationBody::Empty => out.push(0),
                ObservationBody::Extracted(m) => {
                    out.push(1);
                    put_f64(out, m.distance);
                    put_f64(out, m.range_rate);
                    put_f64(out, m.beat_up);
                    put_f64(out, m.beat_down);
                    put_f64(out, m.snr);
                }
                ObservationBody::Raw(raw) => {
                    out.push(2);
                    put_f64(out, raw.snr);
                    put_f64(out, raw.noise_distance);
                    put_f64(out, raw.noise_range_rate);
                    put_f64s(out, &raw.up);
                    put_f64s(out, &raw.down);
                }
            }
            // Optional aux tail: both fields travel together, and a
            // fully-dropped-out (or non-fused) observation encodes exactly
            // as a pre-fusion one.
            if o.aux_camera.is_some() || o.aux_v2v.is_some() {
                put_opt_f64(out, o.aux_camera);
                put_opt_f64(out, o.aux_v2v);
            }
        }
        Message::Verdict(v) => {
            put_u64(out, v.step);
            out.push(verdict_to_u8(v.verdict));
        }
        Message::SafeMeasurement(s) => {
            put_u64(out, s.step);
            out.push(source_to_u8(s.source));
            put_opt_f64(out, s.distance);
            put_f64(out, s.relative_speed);
            put_opt_f64(out, s.control_distance);
        }
        Message::Snapshot(s) => {
            put_u64(out, s.vehicle_id);
            put_u64(out, s.next_step);
            put_snapshot_state(out, &s.state);
            // Optional tail: a CRA-only snapshot keeps the v1 encoding.
            if let Some(fused) = &s.fused {
                put_fused_state(out, fused);
            }
        }
        Message::SnapshotRequest => {}
        Message::Error(e) => {
            out.push(e.code.to_u8());
            put_str(out, &e.detail);
        }
    }
}

/// Decodes one payload of the given message type. Exposed for streaming
/// readers that parse the header themselves.
pub fn decode_payload(msg_type: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(payload);
    let msg = match msg_type {
        MSG_HELLO => {
            let vehicle_id = r.u64()?;
            let predictor = predictor_kind_from_u8(r.u8()?)?;
            let max_inflight = r.u16()?;
            let resume = r.bool()?;
            let fusion = if r.has_remaining() {
                fusion_mode_from_u8(r.u8()?)?
            } else {
                FusionMode::CraOnly
            };
            Message::Hello(Hello {
                vehicle_id,
                predictor,
                max_inflight,
                resume,
                fusion,
            })
        }
        MSG_WELCOME => Message::Welcome(Welcome {
            vehicle_id: r.u64()?,
            next_step: r.u64()?,
            max_inflight: r.u16()?,
        }),
        MSG_OBSERVATION => {
            let step = r.u64()?;
            let own_speed = r.f64()?;
            let received_power = r.f64()?;
            let jammed = r.bool()?;
            let body = match r.u8()? {
                0 => ObservationBody::Empty,
                1 => ObservationBody::Extracted(ExtractedMeasurement {
                    distance: r.f64()?,
                    range_rate: r.f64()?,
                    beat_up: r.f64()?,
                    beat_down: r.f64()?,
                    snr: r.f64()?,
                }),
                2 => ObservationBody::Raw(RawFrame {
                    snr: r.f64()?,
                    noise_distance: r.f64()?,
                    noise_range_rate: r.f64()?,
                    up: r.f64s()?,
                    down: r.f64s()?,
                }),
                tag => {
                    return Err(WireError::UnknownTag {
                        what: "observation body",
                        tag,
                    })
                }
            };
            let (aux_camera, aux_v2v) = if r.has_remaining() {
                (r.opt_f64()?, r.opt_f64()?)
            } else {
                (None, None)
            };
            Message::Observation(Observation {
                step,
                own_speed,
                received_power,
                jammed,
                body,
                aux_camera,
                aux_v2v,
            })
        }
        MSG_VERDICT => Message::Verdict(VerdictMsg {
            step: r.u64()?,
            verdict: verdict_from_u8(r.u8()?)?,
        }),
        MSG_SAFE_MEASUREMENT => Message::SafeMeasurement(SafeMeasurement {
            step: r.u64()?,
            source: source_from_u8(r.u8()?)?,
            distance: r.opt_f64()?,
            relative_speed: r.f64()?,
            control_distance: r.opt_f64()?,
        }),
        MSG_SNAPSHOT => {
            let vehicle_id = r.u64()?;
            let next_step = r.u64()?;
            let state = read_snapshot_state(&mut r)?;
            let fused = if r.has_remaining() {
                Some(read_fused_state(&mut r)?)
            } else {
                None
            };
            Message::Snapshot(SnapshotMsg {
                vehicle_id,
                next_step,
                state,
                fused,
            })
        }
        MSG_SNAPSHOT_REQUEST => Message::SnapshotRequest,
        MSG_ERROR => Message::Error(ErrorMsg {
            code: ErrorCode::from_u8(r.u8()?)?,
            detail: r.str()?,
        }),
        t => return Err(WireError::UnknownMessage(t)),
    };
    r.done()?;
    Ok(msg)
}

/// Appends one complete frame (header + payload) for `msg` to `out`.
/// Appending lets a server batch several frames into one write.
pub fn encode_into(msg: &Message, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    put_u16(out, VERSION);
    out.push(msg.msg_type());
    out.push(0); // flags, reserved
    put_u32(out, 0); // payload length, patched below
    encode_payload(msg, out);
    let len = (out.len() - start - HEADER_LEN) as u32;
    debug_assert!(len <= MAX_PAYLOAD, "encoded payload exceeds MAX_PAYLOAD");
    out[start + 8..start + HEADER_LEN].copy_from_slice(&len.to_le_bytes());
}

/// A validated frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The `msg_type` byte (validity is checked at payload decode).
    pub msg_type: u8,
    /// The reserved flags byte (ignored in version 1).
    pub flags: u8,
    /// Declared payload length, ≤ [`MAX_PAYLOAD`].
    pub payload_len: u32,
}

/// Parses and validates the fixed 12-byte header at the start of `buf`.
pub fn parse_header(buf: &[u8]) -> Result<FrameHeader, WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: buf.len(),
        });
    }
    if buf[0..4] != MAGIC {
        return Err(WireError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return Err(WireError::VersionMismatch { got: version });
    }
    let payload_len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversized { len: payload_len });
    }
    Ok(FrameHeader {
        msg_type: buf[6],
        flags: buf[7],
        payload_len,
    })
}

/// Decodes one complete frame from the start of `buf`; returns the message
/// and the number of bytes consumed. Plain frames only — a [`MSG_MUX`]
/// frame is an [`WireError::UnknownMessage`] here; use
/// [`decode_any_frame`] when multiplexing may be in play.
pub fn decode_frame(buf: &[u8]) -> Result<(Message, usize), WireError> {
    let header = parse_header(buf)?;
    let total = HEADER_LEN + header.payload_len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            got: buf.len(),
        });
    }
    let msg = decode_payload(header.msg_type, &buf[HEADER_LEN..total])?;
    Ok((msg, total))
}

// ---------------------------------------------------------------------------
// Multiplexing and incremental decoding.

/// One decoded frame with its framing context: `channel` is `None` for a
/// plain frame and `Some(id)` when the message arrived inside a
/// [`MSG_MUX`] wrapper.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    /// Mux channel the message rode on, if any.
    pub channel: Option<u32>,
    /// The message itself.
    pub msg: Message,
}

/// Decodes one payload whose type byte may be [`MSG_MUX`]; the shared tail
/// of [`decode_any_frame`] and [`Decoder::feed`].
fn decode_framed_payload(msg_type: u8, payload: &[u8]) -> Result<DecodedFrame, WireError> {
    if msg_type != MSG_MUX {
        return Ok(DecodedFrame {
            channel: None,
            msg: decode_payload(msg_type, payload)?,
        });
    }
    let mut r = Reader::new(payload);
    let channel = r.u32()?;
    // One complete nested frame fills the rest of the payload exactly. A
    // nested mux dies inside `decode_frame` (no Message variant exists).
    let inner = &payload[4..];
    let (msg, used) = decode_frame(inner)?;
    if used != inner.len() {
        return Err(WireError::TrailingBytes {
            extra: inner.len() - used,
        });
    }
    Ok(DecodedFrame {
        channel: Some(channel),
        msg,
    })
}

/// Decodes one complete frame — plain or multiplexed — from the start of
/// `buf`; returns the frame and the number of bytes consumed.
///
/// # Errors
///
/// Structural failures, [`WireError::Truncated`] when `buf` holds less
/// than one frame.
pub fn decode_any_frame(buf: &[u8]) -> Result<(DecodedFrame, usize), WireError> {
    let header = parse_header(buf)?;
    let total = HEADER_LEN + header.payload_len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            got: buf.len(),
        });
    }
    let frame = decode_framed_payload(header.msg_type, &buf[HEADER_LEN..total])?;
    Ok((frame, total))
}

/// Appends one multiplexed frame — `msg` wrapped for `channel` — to `out`.
pub fn encode_mux_into(channel: u32, msg: &Message, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    put_u16(out, VERSION);
    out.push(MSG_MUX);
    out.push(0); // flags, reserved
    put_u32(out, 0); // payload length, patched below
    put_u32(out, channel);
    encode_into(msg, out);
    let len = (out.len() - start - HEADER_LEN) as u32;
    debug_assert!(len <= MAX_PAYLOAD, "mux payload exceeds MAX_PAYLOAD");
    out[start + 8..start + HEADER_LEN].copy_from_slice(&len.to_le_bytes());
}

/// A resumable frame decoder: feed it bytes in whatever chunks the socket
/// delivers — split mid-header, mid-payload, or several frames coalesced
/// into one read — and it emits each frame exactly when its last byte
/// arrives. The header array and payload buffer are reused, so steady-state
/// decoding allocates nothing once the high-water payload size is seen.
///
/// After an `Err` the decoder's position in the byte stream is undefined;
/// the connection it was reading is dead anyway (every decode error is
/// fatal at the protocol level), so drop both.
#[derive(Debug, Default)]
pub struct Decoder {
    header: [u8; HEADER_LEN],
    /// Header bytes collected so far (only meaningful before `pending`).
    header_have: usize,
    /// Parsed header once complete; `None` while collecting header bytes.
    pending: Option<FrameHeader>,
    payload: Vec<u8>,
}

impl Decoder {
    /// A decoder positioned at a frame boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no partial frame is buffered.
    pub fn is_idle(&self) -> bool {
        self.header_have == 0 && self.pending.is_none()
    }

    /// Consumes bytes from the front of `buf`; returns how many were used
    /// and the frame completed by those bytes, if any. Call again with the
    /// rest of `buf` (it stops after at most one frame).
    ///
    /// # Errors
    ///
    /// Structural failures, surfaced at the earliest byte that proves them.
    pub fn feed(&mut self, buf: &[u8]) -> Result<(usize, Option<DecodedFrame>), WireError> {
        let mut used = 0;
        if self.pending.is_none() {
            let take = (HEADER_LEN - self.header_have).min(buf.len());
            self.header[self.header_have..self.header_have + take].copy_from_slice(&buf[..take]);
            self.header_have += take;
            used += take;
            if self.header_have < HEADER_LEN {
                return Ok((used, None));
            }
            self.pending = Some(parse_header(&self.header)?);
            self.payload.clear();
        }
        let header = self.pending.expect("set above or on a previous call");
        let want = header.payload_len as usize - self.payload.len();
        let take = want.min(buf.len() - used);
        self.payload.extend_from_slice(&buf[used..used + take]);
        used += take;
        if self.payload.len() < header.payload_len as usize {
            return Ok((used, None));
        }
        let frame = decode_framed_payload(header.msg_type, &self.payload)?;
        self.header_have = 0;
        self.pending = None;
        Ok((used, Some(frame)))
    }
}

// ---------------------------------------------------------------------------
// Blocking stream adapters.

/// Why a streaming read stopped.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection (possibly mid-frame).
    Eof,
    /// Transport failure.
    Io(std::io::Error),
    /// The bytes did not parse.
    Wire(WireError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Eof => write!(f, "connection closed"),
            ReadError::Io(e) => write!(f, "transport error: {e}"),
            ReadError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ReadError::Eof
        } else {
            ReadError::Io(e)
        }
    }
}

impl From<WireError> for ReadError {
    fn from(e: WireError) -> Self {
        ReadError::Wire(e)
    }
}

/// Reads frames off a blocking byte stream, reusing one payload buffer so
/// steady-state reads allocate nothing once the high-water payload size has
/// been seen.
#[derive(Debug, Default)]
pub struct FrameReader {
    payload: Vec<u8>,
}

impl FrameReader {
    /// Creates a reader with an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until one full frame is read and decoded.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> Result<Message, ReadError> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        let h = parse_header(&header)?;
        self.payload.resize(h.payload_len as usize, 0);
        r.read_exact(&mut self.payload)?;
        Ok(decode_payload(h.msg_type, &self.payload)?)
    }

    /// Blocks until one full frame — plain or multiplexed — is read and
    /// decoded. The mux-session client loop in the ramp harness lives on
    /// this.
    pub fn read_any_from<R: Read>(&mut self, r: &mut R) -> Result<DecodedFrame, ReadError> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        let h = parse_header(&header)?;
        self.payload.resize(h.payload_len as usize, 0);
        r.read_exact(&mut self.payload)?;
        Ok(decode_framed_payload(h.msg_type, &self.payload)?)
    }
}

/// Encodes `msg` into `scratch` (cleared first) and writes it as one
/// `write_all`, so concurrent writers interleave only at frame granularity.
pub fn write_frame<W: Write>(
    w: &mut W,
    msg: &Message,
    scratch: &mut Vec<u8>,
) -> std::io::Result<()> {
    scratch.clear();
    encode_into(msg, scratch);
    w.write_all(scratch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> PipelineSnapshot {
        PipelineSnapshot {
            detector: DetectorState {
                latched: true,
                first_detection: Some(182),
                detections: vec![182, 185, 197],
            },
            predictor: PredictorState {
                counters: vec![12, 2],
                values: vec![1.5, -0.25, 0.125, std::f64::consts::PI, 3.25, 9.0],
            },
            last_distance: Some(96.625),
            estimation_steps: 7,
            consecutive_estimates: 3,
            was_attacked: true,
            checkpoint: Some(CheckpointState {
                predictor: PredictorState {
                    counters: vec![10, 2],
                    values: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
                },
                last_distance: None,
            }),
            speeds_since_checkpoint: vec![29.0, 28.75, 28.5],
        }
    }

    fn sample_fused_state() -> FusedState {
        FusedState {
            predictor: PredictorState {
                counters: vec![31, 1],
                values: vec![19.5, -0.125, 0.0625],
            },
            last_distance: Some(98.25),
            free_run: 2,
            monitors: vec![
                MonitorState {
                    chi2_terms: vec![0.25, 1.5, 0.125],
                    chi2_statistic: 1.875,
                    last_nis: 0.125,
                    chi2_alarmed: false,
                    chi2_alarms: 0,
                    ewma: 0.375,
                    cusum: 0.0,
                    samples: 31,
                },
                MonitorState {
                    chi2_terms: vec![44.0, 51.5],
                    chi2_statistic: 95.5,
                    last_nis: 51.5,
                    chi2_alarmed: true,
                    chi2_alarms: 3,
                    ewma: 7.25,
                    cusum: 96.5,
                    samples: 31,
                },
                MonitorState::default(),
            ],
            trusts: vec![1.0, 0.05, 0.875],
            policy: PolicySnapshot {
                state: PolicyState::Demoted,
                quiet: 4,
                safe_mode_steps: 11,
            },
            ids_detection: Some(67),
        }
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello(Hello {
                vehicle_id: 7,
                predictor: PredictorKind::RlsAr4,
                max_inflight: 16,
                resume: true,
                fusion: FusionMode::CraOnly,
            }),
            Message::Hello(Hello {
                vehicle_id: 8,
                predictor: PredictorKind::RlsTrend,
                max_inflight: 0,
                resume: false,
                fusion: FusionMode::FusedIds,
            }),
            Message::Welcome(Welcome {
                vehicle_id: 7,
                next_step: 120,
                max_inflight: 16,
            }),
            Message::Observation(Observation {
                step: 42,
                own_speed: 29.0578,
                received_power: 1.25e-12,
                jammed: false,
                body: ObservationBody::Extracted(ExtractedMeasurement {
                    distance: 99.875,
                    range_rate: -0.40625,
                    beat_up: 66_500.0,
                    beat_down: 67_000.0,
                    snr: 215.5,
                }),
                aux_camera: None,
                aux_v2v: None,
            }),
            Message::Observation(Observation {
                step: 43,
                own_speed: 29.0,
                received_power: 0.0,
                jammed: false,
                body: ObservationBody::Empty,
                aux_camera: Some(100.5),
                aux_v2v: Some(28.625),
            }),
            Message::Observation(Observation {
                step: 45,
                own_speed: 29.0,
                received_power: 0.0,
                jammed: false,
                body: ObservationBody::Empty,
                aux_camera: None,
                aux_v2v: Some(28.5),
            }),
            Message::Observation(Observation {
                step: 44,
                own_speed: 29.0,
                received_power: 3.5e-13,
                jammed: true,
                body: ObservationBody::Raw(RawFrame {
                    snr: 12.5,
                    noise_distance: 0.03125,
                    noise_range_rate: -0.015625,
                    up: vec![1.0, -1.0, 0.5, 0.25],
                    down: vec![0.0, 2.0, -0.5, 0.125],
                }),
                aux_camera: None,
                aux_v2v: None,
            }),
            Message::Verdict(VerdictMsg {
                step: 42,
                verdict: Verdict::AttackDetected,
            }),
            Message::SafeMeasurement(SafeMeasurement {
                step: 42,
                source: MeasurementSource::Estimated,
                distance: Some(98.5),
                relative_speed: -0.375,
                control_distance: Some(96.46),
            }),
            Message::SafeMeasurement(SafeMeasurement {
                step: 0,
                source: MeasurementSource::Unavailable,
                distance: None,
                relative_speed: 0.0,
                control_distance: None,
            }),
            Message::Snapshot(SnapshotMsg {
                vehicle_id: 7,
                next_step: 200,
                state: sample_snapshot(),
                fused: None,
            }),
            Message::Snapshot(SnapshotMsg {
                vehicle_id: 8,
                next_step: 90,
                state: sample_snapshot(),
                fused: Some(sample_fused_state()),
            }),
            Message::SnapshotRequest,
            Message::Error(ErrorMsg {
                code: ErrorCode::BadStep,
                detail: "step 41 after 42".to_string(),
            }),
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in sample_messages() {
            let mut buf = Vec::new();
            encode_into(&msg, &mut buf);
            let (back, used) = decode_frame(&buf).expect("decodes");
            assert_eq!(used, buf.len());
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn frames_concatenate() {
        let msgs = sample_messages();
        let mut buf = Vec::new();
        for m in &msgs {
            encode_into(m, &mut buf);
        }
        let mut off = 0;
        for m in &msgs {
            let (back, used) = decode_frame(&buf[off..]).expect("decodes");
            assert_eq!(&back, m);
            off += used;
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn nan_payloads_roundtrip_bit_exactly() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let msg = Message::SafeMeasurement(SafeMeasurement {
            step: 1,
            source: MeasurementSource::Radar,
            distance: Some(weird),
            relative_speed: f64::NEG_INFINITY,
            control_distance: Some(-0.0),
        });
        let mut buf = Vec::new();
        encode_into(&msg, &mut buf);
        let (back, _) = decode_frame(&buf).expect("decodes");
        let Message::SafeMeasurement(s) = back else {
            panic!("wrong message");
        };
        assert_eq!(s.distance.unwrap().to_bits(), weird.to_bits());
        assert_eq!(s.relative_speed.to_bits(), f64::NEG_INFINITY.to_bits());
        assert_eq!(s.control_distance.unwrap().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for msg in sample_messages() {
            let mut buf = Vec::new();
            encode_into(&msg, &mut buf);
            for cut in 0..buf.len() {
                let err = decode_frame(&buf[..cut]).expect_err("prefix must not decode");
                assert!(
                    matches!(err, WireError::Truncated { .. }),
                    "{msg:?} cut at {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn bad_magic_version_type_and_size_are_rejected() {
        let mut buf = Vec::new();
        encode_into(&Message::SnapshotRequest, &mut buf);

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(decode_frame(&bad), Err(WireError::BadMagic(_))));

        let mut bad = buf.clone();
        bad[4] = 9;
        assert_eq!(
            decode_frame(&bad),
            Err(WireError::VersionMismatch { got: 9 })
        );

        let mut bad = buf.clone();
        bad[6] = 200;
        assert_eq!(decode_frame(&bad), Err(WireError::UnknownMessage(200)));

        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(
            decode_frame(&bad),
            Err(WireError::Oversized {
                len: MAX_PAYLOAD + 1
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_into(&Message::SnapshotRequest, &mut buf);
        buf.push(0xAA);
        buf[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn hostile_sequence_length_cannot_force_allocation() {
        // An Observation raw body whose up-vector claims u32::MAX elements.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        put_f64(&mut payload, 29.0);
        put_f64(&mut payload, 1e-12);
        payload.push(0); // jammed = false
        payload.push(2); // raw body
        put_f64(&mut payload, 1.0);
        put_f64(&mut payload, 0.0);
        put_f64(&mut payload, 0.0);
        put_u32(&mut payload, u32::MAX); // hostile length, no data
        let err = decode_payload(MSG_OBSERVATION, &payload).expect_err("must fail");
        assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn v1_hello_without_fusion_byte_decodes_as_cra_only() {
        // Hand-build the exact pre-fusion Hello payload.
        let mut payload = Vec::new();
        put_u64(&mut payload, 7);
        payload.push(predictor_kind_to_u8(PredictorKind::Holt));
        put_u16(&mut payload, 4);
        payload.push(1); // resume
        let Message::Hello(h) = decode_payload(MSG_HELLO, &payload).expect("v1 decodes") else {
            panic!("wrong message");
        };
        assert_eq!(h.fusion, FusionMode::CraOnly);
        assert!(h.resume);
        // And a CraOnly Hello encodes back to exactly those bytes.
        let mut again = Vec::new();
        encode_payload(&Message::Hello(h), &mut again);
        assert_eq!(again, payload);
    }

    #[test]
    fn unknown_fusion_mode_byte_is_rejected() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 7);
        payload.push(predictor_kind_to_u8(PredictorKind::RlsTrend));
        put_u16(&mut payload, 0);
        payload.push(0);
        payload.push(9); // fusion tail with an out-of-range mode
        assert_eq!(
            decode_payload(MSG_HELLO, &payload),
            Err(WireError::UnknownTag {
                what: "fusion mode",
                tag: 9
            })
        );
    }

    #[test]
    fn v1_snapshot_without_fused_tail_decodes_with_fusion_defaults() {
        // Hand-build the exact pre-fusion Snapshot payload.
        let mut payload = Vec::new();
        put_u64(&mut payload, 7);
        put_u64(&mut payload, 200);
        put_snapshot_state(&mut payload, &sample_snapshot());
        let Message::Snapshot(s) = decode_payload(MSG_SNAPSHOT, &payload).expect("v1 decodes")
        else {
            panic!("wrong message");
        };
        assert_eq!(s.state, sample_snapshot());
        assert_eq!(s.fused, None);
        // A CRA-only snapshot encodes back to exactly those bytes.
        let mut again = Vec::new();
        encode_payload(&Message::Snapshot(s), &mut again);
        assert_eq!(again, payload);
    }

    #[test]
    fn non_fused_observation_encoding_is_byte_identical_to_v1() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 43);
        put_f64(&mut payload, 29.0);
        put_f64(&mut payload, 0.0);
        payload.push(0); // jammed
        payload.push(0); // empty body
        let Message::Observation(o) =
            decode_payload(MSG_OBSERVATION, &payload).expect("v1 decodes")
        else {
            panic!("wrong message");
        };
        assert_eq!((o.aux_camera, o.aux_v2v), (None, None));
        let mut again = Vec::new();
        encode_payload(&Message::Observation(o), &mut again);
        assert_eq!(again, payload);
    }

    #[test]
    fn fused_state_round_trips_through_snapshot_conversions() {
        let fused = sample_fused_state();
        let snap = fused.clone().into_snapshot(sample_snapshot());
        assert_eq!(FusedState::from_snapshot(&snap), fused);
        assert_eq!(snap.cra, sample_snapshot());
    }

    #[test]
    fn hostile_monitor_count_cannot_force_allocation() {
        // A fused snapshot tail whose monitor vector claims u32::MAX
        // entries with no data behind them.
        let mut payload = Vec::new();
        put_u64(&mut payload, 8);
        put_u64(&mut payload, 90);
        put_snapshot_state(&mut payload, &sample_snapshot());
        put_predictor_state(&mut payload, &PredictorState::default());
        put_opt_f64(&mut payload, None);
        put_u64(&mut payload, 0);
        put_u32(&mut payload, u32::MAX); // hostile monitor count
        let err = decode_payload(MSG_SNAPSHOT, &payload).expect_err("must fail");
        assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn garbage_never_panics() {
        // Deterministic pseudo-random garbage, plus valid headers over
        // garbage payloads.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in 0..200usize {
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = decode_frame(&bytes);
            for t in 0..=12u8 {
                let _ = decode_payload(t, &bytes);
            }
        }
    }

    #[test]
    fn frame_reader_roundtrips_over_a_stream() {
        let msgs = sample_messages();
        let mut buf = Vec::new();
        for m in &msgs {
            encode_into(m, &mut buf);
        }
        let mut cursor = std::io::Cursor::new(buf);
        let mut reader = FrameReader::new();
        for m in &msgs {
            let back = reader.read_from(&mut cursor).expect("reads");
            assert_eq!(&back, m);
        }
        assert!(matches!(reader.read_from(&mut cursor), Err(ReadError::Eof)));
    }

    #[test]
    fn mux_frames_roundtrip_with_their_channel() {
        for (i, msg) in sample_messages().into_iter().enumerate() {
            let channel = (i as u32) * 1000 + 7;
            let mut buf = Vec::new();
            encode_mux_into(channel, &msg, &mut buf);
            let (frame, used) = decode_any_frame(&buf).expect("decodes");
            assert_eq!(used, buf.len());
            assert_eq!(frame.channel, Some(channel));
            assert_eq!(frame.msg, msg);
        }
    }

    #[test]
    fn plain_frames_decode_with_no_channel() {
        let mut buf = Vec::new();
        encode_into(&Message::SnapshotRequest, &mut buf);
        let (frame, _) = decode_any_frame(&buf).expect("decodes");
        assert_eq!(frame.channel, None);
        assert_eq!(frame.msg, Message::SnapshotRequest);
    }

    #[test]
    fn nested_mux_is_rejected() {
        // Hand-build mux(mux(SnapshotRequest)): the outer decode must die
        // on the inner frame's type byte.
        let mut inner = Vec::new();
        encode_mux_into(3, &Message::SnapshotRequest, &mut inner);
        let mut outer = Vec::new();
        outer.extend_from_slice(&MAGIC);
        put_u16(&mut outer, VERSION);
        outer.push(MSG_MUX);
        outer.push(0);
        put_u32(&mut outer, (4 + inner.len()) as u32);
        put_u32(&mut outer, 9);
        outer.extend_from_slice(&inner);
        assert_eq!(
            decode_any_frame(&outer),
            Err(WireError::UnknownMessage(MSG_MUX))
        );
        // And the plain decoder never accepts a mux at all.
        let mut plain = Vec::new();
        encode_mux_into(1, &Message::SnapshotRequest, &mut plain);
        assert_eq!(
            decode_frame(&plain),
            Err(WireError::UnknownMessage(MSG_MUX))
        );
    }

    #[test]
    fn mux_with_trailing_bytes_after_inner_frame_is_rejected() {
        let mut buf = Vec::new();
        encode_mux_into(5, &Message::SnapshotRequest, &mut buf);
        // Stretch the outer payload by one byte.
        buf.push(0xEE);
        let len = (buf.len() - HEADER_LEN) as u32;
        buf[8..12].copy_from_slice(&len.to_le_bytes());
        assert_eq!(
            decode_any_frame(&buf),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn decoder_handles_byte_by_byte_delivery() {
        let msgs = sample_messages();
        let mut stream = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            if i % 2 == 0 {
                encode_into(m, &mut stream);
            } else {
                encode_mux_into(i as u32, m, &mut stream);
            }
        }
        let mut decoder = Decoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            let (used, frame) = decoder.feed(&[b]).expect("byte feeds");
            assert_eq!(used, 1);
            if let Some(f) = frame {
                got.push(f);
            }
        }
        assert!(decoder.is_idle());
        assert_eq!(got.len(), msgs.len());
        for (i, (f, m)) in got.iter().zip(&msgs).enumerate() {
            let want = if i % 2 == 0 { None } else { Some(i as u32) };
            assert_eq!(f.channel, want);
            assert_eq!(&f.msg, m);
        }
    }

    #[test]
    fn decoder_handles_coalesced_frames_in_one_buffer() {
        let msgs = sample_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            encode_into(m, &mut stream);
        }
        let mut decoder = Decoder::new();
        let mut got = Vec::new();
        let mut off = 0;
        while off < stream.len() {
            let (used, frame) = decoder.feed(&stream[off..]).expect("feeds");
            assert!(used > 0);
            off += used;
            // One whole frame per call when the bytes are all there.
            got.push(frame.expect("complete input completes a frame"));
        }
        assert_eq!(got.len(), msgs.len());
        for (f, m) in got.iter().zip(&msgs) {
            assert_eq!(&f.msg, m);
        }
    }

    #[test]
    fn decoder_surfaces_errors_at_the_earliest_proving_byte() {
        // A bad magic byte is provable at header completion, before any
        // payload arrives.
        let mut buf = Vec::new();
        encode_into(&Message::SnapshotRequest, &mut buf);
        buf[2] = b'X';
        let mut decoder = Decoder::new();
        let err = decoder
            .feed(&buf[..HEADER_LEN])
            .expect_err("bad magic dies at the header");
        assert!(matches!(err, WireError::BadMagic(_)));

        // An oversized length dies at the header too — no buffering of a
        // hostile payload.
        let mut buf = Vec::new();
        encode_into(&Message::SnapshotRequest, &mut buf);
        buf[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut decoder = Decoder::new();
        let err = decoder.feed(&buf).expect_err("oversized dies");
        assert!(matches!(err, WireError::Oversized { .. }));
    }

    #[test]
    fn frame_reader_reads_mux_frames() {
        let mut buf = Vec::new();
        let msg = Message::Welcome(Welcome {
            vehicle_id: 1,
            next_step: 2,
            max_inflight: 3,
        });
        encode_mux_into(77, &msg, &mut buf);
        encode_into(&Message::SnapshotRequest, &mut buf);
        let mut cursor = std::io::Cursor::new(buf);
        let mut reader = FrameReader::new();
        let first = reader.read_any_from(&mut cursor).expect("mux frame");
        assert_eq!(first.channel, Some(77));
        assert_eq!(first.msg, msg);
        let second = reader.read_any_from(&mut cursor).expect("plain frame");
        assert_eq!(second.channel, None);
        assert_eq!(second.msg, Message::SnapshotRequest);
    }

    #[test]
    fn long_error_detail_is_clipped_not_rejected() {
        let msg = Message::Error(ErrorMsg {
            code: ErrorCode::Internal,
            detail: "x".repeat(100_000),
        });
        let mut buf = Vec::new();
        encode_into(&msg, &mut buf);
        let (back, _) = decode_frame(&buf).expect("decodes");
        let Message::Error(e) = back else {
            panic!("wrong message");
        };
        assert_eq!(e.detail.len(), u16::MAX as usize);
    }
}
