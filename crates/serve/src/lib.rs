//! # argus-serve — the online safe-measurement gateway
//!
//! Runs the paper's defense stack ([`SecurePipeline`]) as a network
//! service: each vehicle opens a TCP session, streams radar observations up
//! (client-extracted values, or the raw FMCW baseband for server-side DSP
//! offload), and receives the CRA verdict plus the safe measurement its ACC
//! controller should consume — exactly the bytes a locally driven pipeline
//! would produce.
//!
//! * [`wire`] — the versioned length-prefixed binary protocol. Pure slice
//!   codec with a resumable incremental [`wire::Decoder`] and session
//!   multiplexing (`MSG_MUX`), typed errors, no dependencies beyond the
//!   workspace's own types.
//! * [`session`] — one vehicle's pipeline state: predictor negotiated at
//!   `Hello`, monotonic step validation, snapshot/restore that survives
//!   reconnects.
//! * [`server`] — acceptor + event-driven reactor shards (one epoll/`poll`
//!   instance and one DSP arena per shard), write-readiness backpressure
//!   with bounded per-connection outboxes, timer-wheel idle eviction and
//!   draining shutdown. Thread count is independent of connection count.
//! * [`reactor`] — the readiness backend: a thin epoll wrapper behind a
//!   stubbable [`reactor::Poller`] trait, with a portable `poll(2)`
//!   fallback.
//! * [`ring`] / [`timer`] — the per-connection byte rings and the hashed
//!   timer wheel the reactor is built from.
//! * [`net`] — shared socket-option policy for both ends of the wire.
//! * [`client`] — the blocking reference client.
//! * [`harness`] — the closed-loop drive-and-verify loops (lock-step and
//!   multiplexed ramp) used by the load generator and the integration
//!   tests.
//!
//! # Quickstart
//!
//! ```
//! use argus_core::{PredictorKind, ScenarioPlan, ScenarioConfig};
//! use argus_serve::harness::{drive_session, Transport};
//! use argus_serve::server::{Gateway, GatewayConfig};
//!
//! let config = GatewayConfig::paper();
//! let gateway = Gateway::bind("127.0.0.1:0", config.clone()).unwrap();
//!
//! let plan = ScenarioPlan::new(ScenarioConfig::paper(
//!     argus_vehicle::LeaderProfile::paper_constant_decel(),
//!     argus_attack::Adversary::paper_dos(),
//!     true,
//! ));
//! let report = drive_session(
//!     gateway.local_addr(),
//!     &plan,
//!     PredictorKind::RlsTrend,
//!     &config.session,
//!     7,    // vehicle id
//!     42,   // seed
//!     60,   // steps
//!     Transport::Extracted,
//! )
//! .unwrap();
//! assert!(report.identical());
//! gateway.shutdown();
//! ```
//!
//! [`SecurePipeline`]: argus_core::SecurePipeline

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// `unsafe` is denied crate-wide and allowed back in exactly three leaf
// syscall shims: `reactor`'s epoll and rlimit wrappers and `net`'s
// `setsockopt`; every other module is unsafe-free.
#![deny(unsafe_code)]

pub mod client;
pub mod harness;
pub mod net;
pub mod reactor;
pub mod ring;
pub mod server;
pub mod session;
pub mod timer;
pub mod wire;

pub use client::{ClientError, GatewayClient};
pub use reactor::PollerKind;
pub use server::{Gateway, GatewayConfig};
pub use session::{Session, SessionConfig, SessionError};
pub use wire::{ErrorCode, Hello, Message, Observation, SafeMeasurement, VerdictMsg, WireError};
