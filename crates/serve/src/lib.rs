//! # argus-serve — the online safe-measurement gateway
//!
//! Runs the paper's defense stack ([`SecurePipeline`]) as a network
//! service: each vehicle opens a TCP session, streams radar observations up
//! (client-extracted values, or the raw FMCW baseband for server-side DSP
//! offload), and receives the CRA verdict plus the safe measurement its ACC
//! controller should consume — exactly the bytes a locally driven pipeline
//! would produce.
//!
//! * [`wire`] — the versioned length-prefixed binary protocol. Pure slice
//!   codec, typed errors, no `unsafe`, no dependencies beyond the
//!   workspace's own types.
//! * [`session`] — one vehicle's pipeline state: predictor negotiated at
//!   `Hello`, monotonic step validation, snapshot/restore that survives
//!   reconnects.
//! * [`server`] — acceptor + sharded workers with per-shard DSP arenas,
//!   bounded per-session inflight windows with explicit backpressure,
//!   idle-session eviction and draining shutdown.
//! * [`client`] — the blocking reference client.
//! * [`harness`] — the closed-loop drive-and-verify loop used by the load
//!   generator and the integration tests.
//!
//! # Quickstart
//!
//! ```
//! use argus_core::{PredictorKind, ScenarioPlan, ScenarioConfig};
//! use argus_serve::harness::{drive_session, Transport};
//! use argus_serve::server::{Gateway, GatewayConfig};
//!
//! let config = GatewayConfig::paper();
//! let gateway = Gateway::bind("127.0.0.1:0", config.clone()).unwrap();
//!
//! let plan = ScenarioPlan::new(ScenarioConfig::paper(
//!     argus_vehicle::LeaderProfile::paper_constant_decel(),
//!     argus_attack::Adversary::paper_dos(),
//!     true,
//! ));
//! let report = drive_session(
//!     gateway.local_addr(),
//!     &plan,
//!     PredictorKind::RlsTrend,
//!     &config.session,
//!     7,    // vehicle id
//!     42,   // seed
//!     60,   // steps
//!     Transport::Extracted,
//! )
//! .unwrap();
//! assert!(report.identical());
//! gateway.shutdown();
//! ```
//!
//! [`SecurePipeline`]: argus_core::SecurePipeline

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod client;
pub mod harness;
pub mod server;
pub mod session;
pub mod wire;

pub use client::{ClientError, GatewayClient};
pub use server::{Gateway, GatewayConfig};
pub use session::{Session, SessionConfig, SessionError};
pub use wire::{ErrorCode, Hello, Message, Observation, SafeMeasurement, VerdictMsg, WireError};
