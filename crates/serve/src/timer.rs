//! A hashed timer wheel for the reactor: idle-eviction deadlines, drain
//! deadlines for closing connections, and the shutdown cutoff all live
//! here, so the event loop's only time source is "sleep until the next
//! wheel tick".
//!
//! Deadlines are quantized to the wheel granularity (the gateway's
//! `sweep_interval`), which is exactly the precision the old sweep loop
//! had. Entries are not cancelled when a connection dies — the reactor
//! revalidates each fired entry against live state (lazy deletion), so
//! scheduling and firing are both O(1) amortized with no lookup structure.

use std::time::{Duration, Instant};

/// Number of wheel slots; deadlines further out than `SLOTS` ticks park in
/// their slot and re-fire on a later revolution.
const SLOTS: usize = 64;

/// What a timer is for, returned on expiry for the reactor to act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Re-check a connection's idle deadline (lazy: the reactor compares
    /// `last_active` and either evicts or re-arms).
    IdleCheck,
    /// A closing connection has had long enough to drain its outbox; force
    /// the close.
    DrainDeadline,
}

/// One scheduled timer.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Absolute tick this entry fires on.
    tick: u64,
    /// Connection token the timer belongs to.
    token: u64,
    kind: TimerKind,
}

/// The wheel itself.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    granularity: Duration,
    epoch: Instant,
    /// Last tick fully fired.
    cursor: u64,
    /// Live entry count (fired entries leave; lazy-dead ones only leave
    /// when they fire).
    len: usize,
}

impl TimerWheel {
    /// Creates a wheel ticking every `granularity` (floored to 1 ms).
    pub fn new(granularity: Duration, now: Instant) -> Self {
        Self {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            granularity: granularity.max(Duration::from_millis(1)),
            epoch: now,
            cursor: 0,
            len: 0,
        }
    }

    /// Scheduled-entry count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.epoch);
        // Round up: an entry never fires before its deadline.
        let g = self.granularity.as_nanos().max(1);
        (since.as_nanos().div_ceil(g)) as u64
    }

    /// Schedules `kind` for `token` at (the tick covering) `deadline`.
    pub fn schedule(&mut self, deadline: Instant, token: u64, kind: TimerKind) {
        // Fire strictly after the cursor so `fire` can't skip it.
        let tick = self.tick_of(deadline).max(self.cursor + 1);
        let slot = (tick % SLOTS as u64) as usize;
        self.slots[slot].push(Entry { tick, token, kind });
        self.len += 1;
    }

    /// When the reactor should wake next: the next tick boundary if
    /// anything is scheduled, else `None` (sleep until I/O).
    pub fn next_deadline(&self, now: Instant) -> Option<Instant> {
        if self.is_empty() {
            return None;
        }
        let next_tick = self.tick_of(now).max(self.cursor) + 1;
        Some(self.epoch + self.granularity * (next_tick as u32))
    }

    /// Pops every entry due at or before `now` into `out` (appended).
    pub fn fire(&mut self, now: Instant, out: &mut Vec<(u64, TimerKind)>) {
        let now_tick = self.tick_of(now);
        if now_tick <= self.cursor {
            return;
        }
        if self.is_empty() || now_tick - self.cursor >= SLOTS as u64 {
            // A full revolution (or an empty wheel): one sweep over every
            // slot covers it, however long the reactor slept.
            for slot in &mut self.slots {
                let mut i = 0;
                while i < slot.len() {
                    if slot[i].tick <= now_tick {
                        let e = slot.swap_remove(i);
                        self.len -= 1;
                        out.push((e.token, e.kind));
                    } else {
                        i += 1;
                    }
                }
            }
            self.cursor = now_tick;
            return;
        }
        while self.cursor < now_tick {
            self.cursor += 1;
            let slot = (self.cursor % SLOTS as u64) as usize;
            let mut i = 0;
            while i < self.slots[slot].len() {
                if self.slots[slot][i].tick <= now_tick {
                    let e = self.slots[slot].swap_remove(i);
                    self.len -= 1;
                    out.push((e.token, e.kind));
                } else {
                    // A later revolution; leave it parked.
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_at_the_deadline_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(ms(10), t0);
        wheel.schedule(t0 + ms(35), 7, TimerKind::IdleCheck);
        let mut fired = Vec::new();
        wheel.fire(t0 + ms(30), &mut fired);
        assert!(fired.is_empty(), "must not fire early");
        wheel.fire(t0 + ms(41), &mut fired);
        assert_eq!(fired, vec![(7, TimerKind::IdleCheck)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn entries_more_than_a_revolution_out_stay_parked() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(ms(1), t0);
        // 200 ticks out: lands in slot (200 % 64) but must survive the
        // first two revolutions.
        wheel.schedule(t0 + ms(200), 1, TimerKind::DrainDeadline);
        wheel.schedule(t0 + ms(8), 2, TimerKind::IdleCheck);
        let mut fired = Vec::new();
        wheel.fire(t0 + ms(100), &mut fired);
        assert_eq!(fired, vec![(2, TimerKind::IdleCheck)]);
        fired.clear();
        wheel.fire(t0 + ms(250), &mut fired);
        assert_eq!(fired, vec![(1, TimerKind::DrainDeadline)]);
    }

    #[test]
    fn next_deadline_tracks_the_next_tick() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(ms(10), t0);
        assert!(wheel.next_deadline(t0).is_none());
        wheel.schedule(t0 + ms(100), 1, TimerKind::IdleCheck);
        let next = wheel.next_deadline(t0 + ms(25)).expect("scheduled");
        assert!(next > t0 + ms(25) && next <= t0 + ms(40));
    }

    #[test]
    fn many_tokens_fire_once_each() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(ms(5), t0);
        for token in 0..500u64 {
            wheel.schedule(t0 + ms(5 + token % 97), token, TimerKind::IdleCheck);
        }
        let mut fired = Vec::new();
        wheel.fire(t0 + ms(300), &mut fired);
        assert_eq!(fired.len(), 500);
        let mut tokens: Vec<u64> = fired.iter().map(|&(t, _)| t).collect();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), 500);
        assert!(wheel.is_empty());
    }
}
