//! A thin readiness engine for the gateway: a [`Poller`] trait with a raw
//! epoll backend on Linux and a portable `poll(2)` fallback, plus the
//! cross-thread [`Waker`] and the `RLIMIT_NOFILE` helper the ramp bench
//! uses.
//!
//! No async runtime and no external crates: the two backends call the libc
//! that `std` already links, through a handful of `extern "C"`
//! declarations confined to this module (the rest of the crate stays
//! `deny(unsafe_code)`-clean). Both backends are level-triggered and the
//! reactor drains sockets until `WouldBlock`, so the gateway behaves
//! identically on either; tests pin [`PollerKind::Poll`] to cover the
//! fallback leg on any host.

use std::io::{self, Read, Write};
use std::os::fd::RawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Which readiness backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerKind {
    /// epoll where the platform has it, `poll(2)` elsewhere.
    Auto,
    /// Force epoll (Linux only; [`new_poller`] errors elsewhere).
    Epoll,
    /// Force the portable `poll(2)` backend.
    Poll,
}

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of a connection whose outbox
    /// is empty.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — armed while an outbox holds queued bytes.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Bytes (or EOF) can be read without blocking.
    pub readable: bool,
    /// The socket buffer has room.
    pub writable: bool,
    /// Error or hangup; the connection is dead either way.
    pub hangup: bool,
}

/// A pluggable readiness backend. Implementations are level-triggered:
/// an event repeats while its condition holds, so a handler that stops
/// early is re-notified rather than stalled.
pub trait Poller: Send + std::fmt::Debug {
    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    ///
    /// Propagates backend registration failures.
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Changes what an already-registered `fd` is watched for.
    ///
    /// # Errors
    ///
    /// Propagates backend failures (e.g. the fd is not registered).
    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks until readiness or `timeout` (forever when `None`), filling
    /// `events` (cleared first).
    ///
    /// # Errors
    ///
    /// Propagates backend wait failures; `EINTR` is retried internally.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;
}

/// Builds the backend for `kind`.
///
/// # Errors
///
/// [`PollerKind::Epoll`] on a platform without epoll, or backend setup
/// failures.
pub fn new_poller(kind: PollerKind) -> io::Result<Box<dyn Poller>> {
    match kind {
        #[cfg(target_os = "linux")]
        PollerKind::Auto | PollerKind::Epoll => Ok(Box::new(epoll::EpollPoller::new()?)),
        #[cfg(not(target_os = "linux"))]
        PollerKind::Epoll => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is Linux-only; use PollerKind::Auto or Poll",
        )),
        #[cfg(not(target_os = "linux"))]
        PollerKind::Auto => Ok(Box::new(poll::PollPoller::new())),
        PollerKind::Poll => Ok(Box::new(poll::PollPoller::new())),
    }
}

/// Milliseconds for a poll-style timeout: `None` → -1 (forever), rounding
/// up so a 0.4 ms deadline doesn't spin at 0.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d.as_millis().max(1).min(i32::MAX as u128) as i32,
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::{timeout_ms, Event, Interest, Poller};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// Raw syscall surface. `std` links libc, so these resolve without any
    /// external crate.
    #[allow(unsafe_code)]
    mod sys {
        use std::ffi::c_int;
        use std::io;

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;
        pub const EINTR: c_int = 4;

        /// Mirrors the kernel's `struct epoll_event`; packed on x86-64
        /// (only there — the padding is real on other architectures).
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            fn close(fd: c_int) -> c_int;
        }

        pub fn create() -> io::Result<c_int> {
            // SAFETY: plain syscall; no pointers involved.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(fd)
        }

        pub fn ctl(
            epfd: c_int,
            op: c_int,
            fd: c_int,
            mut ev: Option<EpollEvent>,
        ) -> io::Result<()> {
            let ptr = ev
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live EpollEvent on
            // this stack frame for the duration of the call.
            let rc = unsafe { epoll_ctl(epfd, op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(epfd: c_int, buf: &mut [EpollEvent], timeout: c_int) -> io::Result<usize> {
            loop {
                // SAFETY: `buf` is a live, writable slice; the kernel fills
                // at most `buf.len()` entries.
                let rc = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout) };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.raw_os_error() == Some(EINTR) {
                    continue;
                }
                return Err(err);
            }
        }

        pub fn close_fd(fd: c_int) {
            // SAFETY: we own `fd` (created by `create`), closed exactly once.
            let _ = unsafe { close(fd) };
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if interest.readable {
            m |= sys::EPOLLIN;
        }
        if interest.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }

    /// The Linux backend: one epoll instance per reactor shard.
    #[derive(Debug)]
    pub struct EpollPoller {
        epfd: RawFd,
        buf: Vec<sys::EpollEvent>,
    }

    impl EpollPoller {
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                epfd: sys::create()?,
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
            })
        }
    }

    impl std::fmt::Debug for sys::EpollEvent {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let events = self.events;
            let data = self.data;
            write!(f, "EpollEvent {{ events: {events:#x}, data: {data} }}")
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }

    impl Poller for EpollPoller {
        fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let ev = sys::EpollEvent {
                events: mask(interest),
                data: token,
            };
            sys::ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, Some(ev))
        }

        fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let ev = sys::EpollEvent {
                events: mask(interest),
                data: token,
            };
            sys::ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, Some(ev))
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, None)
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let n = sys::wait(self.epfd, &mut self.buf, timeout_ms(timeout))?;
            for ev in &self.buf[..n] {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

mod poll {
    use super::{timeout_ms, Event, Interest, Poller};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// Raw `poll(2)` surface; see the epoll module for the linking note.
    #[allow(unsafe_code)]
    mod sys {
        use std::ffi::c_int;
        use std::io;

        pub const POLLIN: i16 = 0x001;
        pub const POLLOUT: i16 = 0x004;
        pub const POLLERR: i16 = 0x008;
        pub const POLLHUP: i16 = 0x010;
        pub const POLLNVAL: i16 = 0x020;
        pub const EINTR: c_int = 4;

        /// Mirrors `struct pollfd` (identical layout on every unix).
        #[repr(C)]
        #[derive(Debug, Clone, Copy)]
        pub struct PollFd {
            pub fd: c_int,
            pub events: i16,
            pub revents: i16,
        }

        // `nfds_t` is `unsigned long` on Linux and `unsigned int` on
        // macOS/BSD; match the width per platform.
        #[cfg(any(target_os = "macos", target_os = "freebsd", target_os = "netbsd"))]
        type Nfds = u32;
        #[cfg(not(any(target_os = "macos", target_os = "freebsd", target_os = "netbsd")))]
        type Nfds = usize;

        extern "C" {
            fn poll(fds: *mut PollFd, nfds: Nfds, timeout: c_int) -> c_int;
        }

        pub fn wait(fds: &mut [PollFd], timeout: c_int) -> io::Result<usize> {
            loop {
                // SAFETY: `fds` is a live, writable slice of `nfds` entries.
                let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout) };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.raw_os_error() == Some(EINTR) {
                    continue;
                }
                return Err(err);
            }
        }
    }

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.readable {
            m |= sys::POLLIN;
        }
        if interest.writable {
            m |= sys::POLLOUT;
        }
        m
    }

    /// The portable backend: one `pollfd` array rebuilt in place; O(n) per
    /// wait, which is exactly what `poll(2)` costs anyway.
    #[derive(Debug)]
    pub struct PollPoller {
        fds: Vec<sys::PollFd>,
        tokens: Vec<u64>,
        index: HashMap<RawFd, usize>,
    }

    impl PollPoller {
        pub fn new() -> Self {
            Self {
                fds: Vec::new(),
                tokens: Vec::new(),
                index: HashMap::new(),
            }
        }
    }

    impl Poller for PollPoller {
        fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.index.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.index.insert(fd, self.fds.len());
            self.fds.push(sys::PollFd {
                fd,
                events: mask(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let &i = self
                .index
                .get(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds[i].events = mask(interest);
            self.tokens[i] = token;
            Ok(())
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self
                .index
                .remove(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            if i < self.fds.len() {
                self.index.insert(self.fds[i].fd, i);
            }
            Ok(())
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            for fd in &mut self.fds {
                fd.revents = 0;
            }
            // `poll` with zero fds is a plain sleep, which is exactly the
            // semantics an empty registration set wants.
            let n = sys::wait(&mut self.fds, timeout_ms(timeout))?;
            if n == 0 {
                return Ok(());
            }
            for (fd, &token) in self.fds.iter().zip(&self.tokens) {
                let re = fd.revents;
                if re == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: re & sys::POLLIN != 0,
                    writable: re & sys::POLLOUT != 0,
                    hangup: re & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-thread wakeup.

/// The reactor-side half of the wakeup channel: a non-blocking pipe read
/// end registered in the poller under a reserved token.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: UnixStream,
}

/// The sender half: any thread calls [`Waker::wake`] to pull the reactor
/// out of `wait`.
#[derive(Debug, Clone)]
pub struct Waker {
    tx: std::sync::Arc<UnixStream>,
}

/// Builds a connected waker pair.
///
/// # Errors
///
/// Propagates socketpair creation failures.
pub fn waker() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((
        Waker {
            tx: std::sync::Arc::new(tx),
        },
        WakeReceiver { rx },
    ))
}

impl Waker {
    /// Nudges the reactor. A full pipe means a wake is already pending, so
    /// `WouldBlock` is success; other transport errors only matter if the
    /// reactor is gone, in which case nobody is listening anyway.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

impl WakeReceiver {
    /// The fd to register in the poller.
    pub fn raw_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Swallows every pending wake byte so a level-triggered poller goes
    /// quiet again.
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.rx.read(&mut buf), Ok(n) if n > 0) {}
    }
}

// ---------------------------------------------------------------------------
// RLIMIT_NOFILE.

#[cfg(unix)]
#[allow(unsafe_code)]
mod rlimit_sys {
    use std::ffi::c_int;
    use std::io;

    #[cfg(any(target_os = "macos", target_os = "freebsd"))]
    const RLIMIT_NOFILE: c_int = 8;
    #[cfg(not(any(target_os = "macos", target_os = "freebsd")))]
    const RLIMIT_NOFILE: c_int = 7;

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    /// Raises the soft fd limit toward `want` (capped at the hard limit)
    /// and returns the resulting soft limit.
    pub fn raise_nofile(want: u64) -> io::Result<u64> {
        let mut lim = Rlimit { cur: 0, max: 0 };
        // SAFETY: `lim` is a live struct the kernel fills.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.cur >= want {
            return Ok(lim.cur);
        }
        let target = want.min(lim.max);
        let next = Rlimit {
            cur: target,
            max: lim.max,
        };
        // SAFETY: `next` is a live struct for the duration of the call.
        if unsafe { setrlimit(RLIMIT_NOFILE, &next) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(target)
    }
}

/// Raises the process's soft `RLIMIT_NOFILE` toward `want` (never past the
/// hard limit) and returns the soft limit now in force. The 100k ramp calls
/// this before opening its socket fleet.
///
/// # Errors
///
/// Propagates `getrlimit`/`setrlimit` failures.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    #[cfg(unix)]
    {
        rlimit_sys::raise_nofile(want)
    }
    #[cfg(not(unix))]
    {
        let _ = want;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "rlimit is unix-only",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn backend_reports_readiness(kind: PollerKind) {
        let mut poller = new_poller(kind).expect("build poller");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        use std::os::fd::AsRawFd;
        poller
            .register(server.as_raw_fd(), 42, Interest::READ_WRITE)
            .expect("register");

        let mut events = Vec::new();
        // Writable immediately (empty socket buffer), not yet readable.
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .expect("wait");
        let ev = events.iter().find(|e| e.token == 42).expect("event");
        assert!(ev.writable && !ev.readable, "{ev:?}");

        // After the peer writes, readable too.
        (&client).write_all(b"ping").expect("client write");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .expect("wait");
            if events.iter().any(|e| e.token == 42 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no readable event");
        }

        // Read interest only: no more writable chatter.
        poller
            .reregister(server.as_raw_fd(), 42, Interest::READ)
            .expect("reregister");
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .expect("wait");
        assert!(events.iter().all(|e| e.token != 42 || !e.writable));

        poller.deregister(server.as_raw_fd()).expect("deregister");
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .expect("wait");
        assert!(events.iter().all(|e| e.token != 42));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_readiness() {
        backend_reports_readiness(PollerKind::Epoll);
    }

    #[test]
    fn poll_backend_reports_readiness() {
        backend_reports_readiness(PollerKind::Poll);
    }

    #[test]
    fn waker_wakes_a_waiting_poller() {
        let mut poller = new_poller(PollerKind::Auto).expect("build poller");
        let (waker, mut rx) = waker().expect("waker pair");
        poller
            .register(rx.raw_fd(), u64::MAX, Interest::READ)
            .expect("register");
        // Keep one sender half alive past the thread, else its drop reads
        // as EOF-readiness below.
        let remote = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake();
            remote.wake(); // coalesces, never errors
        });
        let mut events = Vec::new();
        let t0 = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        assert!(t0.elapsed() < Duration::from_secs(5), "woke via waker");
        assert!(events.iter().any(|e| e.token == u64::MAX && e.readable));
        rx.drain();
        handle.join().expect("join");
        // Drained: the next wait times out quietly.
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert!(events.iter().all(|e| e.token != u64::MAX));
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        let before = raise_nofile_limit(0).expect("query");
        let after = raise_nofile_limit(before).expect("no-op raise");
        assert_eq!(before, after);
    }
}
