//! The closed-loop client harness shared by the load generator and the
//! integration tests: drive one [`VehicleSim`] through the gateway in
//! lock-step, replaying the exact observation stream `ScenarioPlan` would
//! feed a local pipeline, and check the gateway's answers byte-for-byte
//! against a locally driven [`SecurePipeline`].
//!
//! This is the subsystem's correctness anchor: the only difference between
//! the two paths is the transport, so any output divergence — one bit of
//! one distance at one step — is a gateway bug.
//!
//! Two drivers live here: [`drive_session`] (one blocking lock-step session
//! per connection) and [`drive_mux_sessions`] (many sessions multiplexed
//! over one socket with pipelined batches — the shape the 100k-session ramp
//! uses, since loopback runs out of ephemeral ports around 28k
//! connections).

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use argus_core::{
    FusionMode, NoiseDraw, PipelineOutput, PredictorKind, ScenarioPlan, SecurePipeline,
    TrialScratch,
};
use argus_cra::CraDetector;
use argus_radar::receiver::RadarObservation;
use argus_sim::time::Step;
use argus_sim::units::{Meters, MetersPerSecond};

use crate::client::{ClientError, GatewayClient};
use crate::session::SessionConfig;
use crate::wire::{
    self, ErrorCode, ExtractedMeasurement, FrameReader, Hello, Message, Observation,
    ObservationBody, RawFrame, SafeMeasurement, VerdictMsg,
};

/// How the harness ships measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Client-side extraction; ship the measurement values.
    Extracted,
    /// Ship the raw baseband; the server re-runs the extraction. Requires a
    /// signal-mode plan.
    RawBaseband,
}

/// What one driven session produced.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// Frames acknowledged by the gateway.
    pub frames: u64,
    /// Steps whose gateway output differed from the local pipeline.
    pub mismatches: u64,
    /// Whether the final server snapshot equals the local pipeline's.
    pub snapshot_matches: bool,
    /// Per-frame round-trip latencies, seconds, in step order.
    pub latencies: Vec<f64>,
}

impl DriveReport {
    /// True when every step and the final state matched bit-for-bit.
    pub fn identical(&self) -> bool {
        self.mismatches == 0 && self.snapshot_matches
    }
}

/// Builds the local twin of the pipeline a gateway session runs.
pub fn local_pipeline(cfg: &SessionConfig, kind: PredictorKind) -> SecurePipeline {
    let detector = CraDetector::new(cfg.schedule.clone(), cfg.detection_threshold);
    let predictor = kind.build().expect("built-in predictor configs are valid");
    SecurePipeline::new(detector, predictor, cfg.dt)
}

/// Converts one simulator observation into its wire form.
pub fn wire_observation(
    step: u64,
    own_speed: f64,
    obs: &RadarObservation,
    draw: Option<NoiseDraw>,
    raw_baseband: Option<(&[f64], &[f64])>,
) -> Observation {
    let body = match (&obs.measurement, raw_baseband) {
        (None, _) => ObservationBody::Empty,
        (Some(m), Some((up, down))) => {
            let d = draw.unwrap_or(NoiseDraw {
                distance: 0.0,
                range_rate: 0.0,
            });
            ObservationBody::Raw(RawFrame {
                snr: m.snr,
                noise_distance: d.distance,
                noise_range_rate: d.range_rate,
                up: up.to_vec(),
                down: down.to_vec(),
            })
        }
        (Some(m), None) => ObservationBody::Extracted(ExtractedMeasurement {
            distance: m.distance.value(),
            range_rate: m.range_rate.value(),
            beat_up: m.beats.up.value(),
            beat_down: m.beats.down.value(),
            snr: m.snr,
        }),
    };
    Observation {
        step,
        own_speed,
        received_power: obs.received_power.value(),
        jammed: obs.jammed,
        body,
        aux_camera: None,
        aux_v2v: None,
    }
}

/// Compares one gateway response pair against the local pipeline output,
/// bit-for-bit on every float.
pub fn outputs_match(verdict: &VerdictMsg, safe: &SafeMeasurement, local: &PipelineOutput) -> bool {
    fn bits(x: Option<f64>) -> Option<u64> {
        x.map(f64::to_bits)
    }
    verdict.verdict == local.verdict
        && safe.source == local.source
        && bits(safe.distance) == bits(local.distance.map(|d| d.value()))
        && safe.relative_speed.to_bits() == local.relative_speed.value().to_bits()
        && bits(safe.control_distance) == bits(local.control_distance.map(|d| d.value()))
}

/// Drives one full scenario through the gateway, lock-step, and verifies
/// byte-identity against a local pipeline at every step and in the final
/// snapshot.
///
/// # Errors
///
/// Propagates transport and server errors.
#[allow(clippy::too_many_arguments)]
pub fn drive_session(
    addr: SocketAddr,
    plan: &ScenarioPlan,
    kind: PredictorKind,
    session_cfg: &SessionConfig,
    vehicle_id: u64,
    seed: u64,
    steps: u64,
    transport: Transport,
) -> Result<DriveReport, ClientError> {
    let (mut client, _welcome) = GatewayClient::connect(
        addr,
        Hello {
            vehicle_id,
            predictor: kind,
            max_inflight: 0,
            resume: false,
            fusion: FusionMode::CraOnly,
        },
    )?;

    let mut scratch = TrialScratch::for_plan(plan);
    let mut sim = plan.vehicle_sim(seed);
    let mut local = local_pipeline(session_cfg, kind);
    let schedule = session_cfg.schedule.clone();

    let mut report = DriveReport {
        frames: 0,
        mismatches: 0,
        snapshot_matches: false,
        latencies: Vec::with_capacity(steps as usize),
    };

    for k_idx in 0..steps {
        if sim.collided() {
            break;
        }
        let k = Step(k_idx);
        let tx_on = schedule.tx_on(k);
        let own_speed = sim.own_speed();
        let (obs, draw) = sim.observe_traced(k, tx_on, &mut scratch);

        let raw = match transport {
            Transport::RawBaseband if obs.measurement.is_some() => {
                // The arena still holds this frame's sweep samples; ship
                // them interleaved.
                let frame = &scratch.radar_scratch().frame;
                let flat = |buf: &[argus_dsp::Complex<f64>]| -> Vec<f64> {
                    buf.iter().flat_map(|c| [c.re, c.im]).collect()
                };
                Some((flat(&frame.up), flat(&frame.down)))
            }
            _ => None,
        };
        let wire_obs = wire_observation(
            k_idx,
            own_speed.value(),
            &obs,
            draw,
            raw.as_ref().map(|(u, d)| (u.as_slice(), d.as_slice())),
        );

        let t0 = Instant::now();
        let (verdict, safe) = client.observe(&wire_obs)?;
        report.latencies.push(t0.elapsed().as_secs_f64());
        report.frames += 1;

        let local_out = local.process(k, &obs, own_speed);
        if !outputs_match(&verdict, &safe, &local_out) {
            report.mismatches += 1;
        }

        // The plant consumes the *gateway's* answer, like a real deployment.
        sim.advance(
            safe.control_distance.map(Meters),
            MetersPerSecond(safe.relative_speed),
        );
    }

    let snap = client.snapshot()?;
    report.snapshot_matches = snap.state == local.snapshot();
    Ok(report)
}

/// One session to multiplex over a shared connection.
#[derive(Debug, Clone, Copy)]
pub struct MuxSessionSpec {
    /// Mux channel the session rides on (unique per connection).
    pub channel: u32,
    /// Vehicle identity sent in `Hello`.
    pub vehicle_id: u64,
    /// Simulator seed.
    pub seed: u64,
    /// Predictor the session negotiates.
    pub predictor: PredictorKind,
}

/// What one multiplexed connection's worth of sessions produced.
#[derive(Debug, Clone)]
pub struct MuxDriveReport {
    /// Sessions handshaken and driven.
    pub sessions: u64,
    /// Observation frames acknowledged across all sessions.
    pub frames: u64,
    /// Steps whose gateway output differed from the local pipeline.
    pub mismatches: u64,
    /// Sessions whose final server snapshot differed from the local one.
    pub snapshot_mismatches: u64,
    /// Per-response latencies, seconds: batch-send instant to
    /// `SafeMeasurement` receipt, so queueing inside a pipelined batch
    /// counts against the gateway.
    pub latencies: Vec<f64>,
}

impl MuxDriveReport {
    /// True when every step of every session and every final snapshot
    /// matched bit-for-bit.
    pub fn identical(&self) -> bool {
        self.mismatches == 0 && self.snapshot_mismatches == 0
    }
}

/// Per-session driving state for the mux loop.
struct MuxLane<'a> {
    spec: MuxSessionSpec,
    sim: argus_core::VehicleSim<'a>,
    local: SecurePipeline,
    /// Still producing observations (false once collided).
    live: bool,
    /// The `Verdict` half of a response pair awaiting its
    /// `SafeMeasurement`.
    pending_verdict: Option<VerdictMsg>,
    /// Local output for the step currently in flight.
    pending_local: Option<PipelineOutput>,
}

/// Reads the next channel-tagged frame, skipping plain `Backpressure`
/// advisories and turning other plain/typed errors into `ClientError`s.
fn next_muxed(reader: &mut FrameReader, stream: &TcpStream) -> Result<(u32, Message), ClientError> {
    let mut r = stream;
    loop {
        let frame = reader.read_any_from(&mut r)?;
        match (frame.channel, frame.msg) {
            (None, Message::Error(e)) if e.code == ErrorCode::Backpressure => continue,
            (None, Message::Error(e)) => return Err(ClientError::Remote(e)),
            (None, other) => {
                return Err(ClientError::Protocol(format!(
                    "expected a muxed frame, got plain {other:?}"
                )))
            }
            (Some(_), Message::Error(e)) => return Err(ClientError::Remote(e)),
            (Some(c), msg) => return Ok((c, msg)),
        }
    }
}

/// Many closed-loop sessions multiplexed over ONE socket via `MSG_MUX`
/// framing, driven in pipelined batches with phase control: connect and
/// handshake first ([`MuxDriver::connect`]), then one batch per call to
/// [`MuxDriver::run_step`], then [`MuxDriver::finish`] for the snapshot
/// identity check. The split lets a ramp harness open every connection's
/// sessions before any of them starts stepping, so "N concurrent sessions"
/// means N simultaneously-registered sessions on the gateway.
///
/// All sessions share `plan` (and one [`TrialScratch`] arena — extraction
/// is bit-exact and depends only on the samples) but get their own seed and
/// predictor from their [`MuxSessionSpec`].
pub struct MuxDriver<'a> {
    stream: TcpStream,
    reader: FrameReader,
    batch: Vec<u8>,
    scratch: TrialScratch,
    schedule: argus_cra::ChallengeSchedule,
    lanes: Vec<MuxLane<'a>>,
    next_step: u64,
    report: MuxDriveReport,
}

impl std::fmt::Debug for MuxDriver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxDriver")
            .field("lanes", &self.lanes.len())
            .field("next_step", &self.next_step)
            .finish_non_exhaustive()
    }
}

impl<'a> MuxDriver<'a> {
    /// Connects one socket and handshakes every session in one pipelined
    /// batch.
    ///
    /// # Errors
    ///
    /// Propagates transport and server errors.
    pub fn connect(
        addr: SocketAddr,
        plan: &'a ScenarioPlan,
        session_cfg: &SessionConfig,
        specs: &[MuxSessionSpec],
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        crate::net::configure_stream(&stream)?;
        let mut driver = Self {
            stream,
            reader: FrameReader::new(),
            batch: Vec::new(),
            scratch: TrialScratch::for_plan(plan),
            schedule: session_cfg.schedule.clone(),
            lanes: specs
                .iter()
                .map(|&spec| MuxLane {
                    spec,
                    sim: plan.vehicle_sim(spec.seed),
                    local: local_pipeline(session_cfg, spec.predictor),
                    live: true,
                    pending_verdict: None,
                    pending_local: None,
                })
                .collect(),
            next_step: 0,
            report: MuxDriveReport {
                sessions: specs.len() as u64,
                frames: 0,
                mismatches: 0,
                snapshot_mismatches: 0,
                latencies: Vec::new(),
            },
        };

        driver.batch.clear();
        for lane in &driver.lanes {
            wire::encode_mux_into(
                lane.spec.channel,
                &Message::Hello(Hello {
                    vehicle_id: lane.spec.vehicle_id,
                    predictor: lane.spec.predictor,
                    max_inflight: 0,
                    resume: false,
                    fusion: FusionMode::CraOnly,
                }),
                &mut driver.batch,
            );
        }
        (&driver.stream).write_all(&driver.batch)?;
        for _ in 0..driver.lanes.len() {
            let (channel, msg) = next_muxed(&mut driver.reader, &driver.stream)?;
            let idx = lane_index(channel, &driver.lanes)?;
            match msg {
                Message::Welcome(w) => {
                    if w.vehicle_id != driver.lanes[idx].spec.vehicle_id {
                        return Err(ClientError::Protocol(format!(
                            "channel {channel} welcomed vehicle {} (wanted {})",
                            w.vehicle_id, driver.lanes[idx].spec.vehicle_id
                        )));
                    }
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected Welcome on channel {channel}, got {other:?}"
                    )))
                }
            }
        }
        Ok(driver)
    }

    /// Sessions handshaken on this connection.
    pub fn sessions(&self) -> u64 {
        self.report.sessions
    }

    /// Drives one simulation step across every live session: one pipelined
    /// batch out, every (Verdict, SafeMeasurement) pair verified against
    /// the local twin on the way back. Returns false when every session
    /// has collided (the step was a no-op).
    ///
    /// # Errors
    ///
    /// Propagates transport and server errors, including responses on mux
    /// channels that were never opened.
    pub fn run_step(&mut self) -> Result<bool, ClientError> {
        let k_idx = self.next_step;
        self.next_step += 1;
        let k = Step(k_idx);
        let tx_on = self.schedule.tx_on(k);

        // Build one pipelined batch: this step's observation for every
        // live session, and its locally computed twin output.
        self.batch.clear();
        let mut in_flight = 0u64;
        for lane in &mut self.lanes {
            if !lane.live {
                continue;
            }
            if lane.sim.collided() {
                lane.live = false;
                continue;
            }
            let own_speed = lane.sim.own_speed();
            let (obs, draw) = lane.sim.observe_traced(k, tx_on, &mut self.scratch);
            let wire_obs = wire_observation(k_idx, own_speed.value(), &obs, draw, None);
            wire::encode_mux_into(
                lane.spec.channel,
                &Message::Observation(wire_obs),
                &mut self.batch,
            );
            lane.pending_local = Some(lane.local.process(k, &obs, own_speed));
            in_flight += 1;
        }
        if in_flight == 0 {
            return Ok(false);
        }

        let t0 = Instant::now();
        (&self.stream).write_all(&self.batch)?;
        // Each observation answers with a (Verdict, SafeMeasurement) pair.
        let mut outstanding = in_flight * 2;
        while outstanding > 0 {
            let (channel, msg) = next_muxed(&mut self.reader, &self.stream)?;
            let idx = lane_index(channel, &self.lanes)?;
            let lane = &mut self.lanes[idx];
            match msg {
                Message::Verdict(v) => {
                    if lane.pending_verdict.replace(v).is_some() {
                        return Err(ClientError::Protocol(format!(
                            "channel {channel}: two Verdicts for one Observation"
                        )));
                    }
                }
                Message::SafeMeasurement(safe) => {
                    let (Some(verdict), Some(local_out)) =
                        (lane.pending_verdict.take(), lane.pending_local.take())
                    else {
                        return Err(ClientError::Protocol(format!(
                            "channel {channel}: SafeMeasurement without a Verdict"
                        )));
                    };
                    self.report.latencies.push(t0.elapsed().as_secs_f64());
                    self.report.frames += 1;
                    if !outputs_match(&verdict, &safe, &local_out) {
                        self.report.mismatches += 1;
                    }
                    // The plant consumes the gateway's answer.
                    lane.sim.advance(
                        safe.control_distance.map(Meters),
                        MetersPerSecond(safe.relative_speed),
                    );
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected response on channel {channel}: {other:?}"
                    )))
                }
            }
            outstanding -= 1;
        }
        Ok(true)
    }

    /// Final state check — one pipelined snapshot request per session,
    /// each compared bit-for-bit against its local twin — and the report.
    ///
    /// # Errors
    ///
    /// Propagates transport and server errors.
    pub fn finish(mut self) -> Result<MuxDriveReport, ClientError> {
        self.batch.clear();
        for lane in &self.lanes {
            wire::encode_mux_into(
                lane.spec.channel,
                &Message::SnapshotRequest,
                &mut self.batch,
            );
        }
        (&self.stream).write_all(&self.batch)?;
        for _ in 0..self.lanes.len() {
            let (channel, msg) = next_muxed(&mut self.reader, &self.stream)?;
            let idx = lane_index(channel, &self.lanes)?;
            match msg {
                Message::Snapshot(snap) => {
                    if snap.state != self.lanes[idx].local.snapshot() {
                        self.report.snapshot_mismatches += 1;
                    }
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected Snapshot on channel {channel}, got {other:?}"
                    )))
                }
            }
        }
        Ok(self.report)
    }
}

fn lane_index(channel: u32, lanes: &[MuxLane<'_>]) -> Result<usize, ClientError> {
    lanes
        .iter()
        .position(|l| l.spec.channel == channel)
        .ok_or_else(|| ClientError::Protocol(format!("response on unknown channel {channel}")))
}

/// One-shot convenience over [`MuxDriver`]: connect, drive `steps`, check
/// snapshots.
///
/// # Errors
///
/// Propagates transport and server errors.
pub fn drive_mux_sessions(
    addr: SocketAddr,
    plan: &ScenarioPlan,
    session_cfg: &SessionConfig,
    specs: &[MuxSessionSpec],
    steps: u64,
) -> Result<MuxDriveReport, ClientError> {
    let mut driver = MuxDriver::connect(addr, plan, session_cfg, specs)?;
    for _ in 0..steps {
        if !driver.run_step()? {
            break;
        }
    }
    driver.finish()
}
