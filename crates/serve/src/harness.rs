//! The closed-loop client harness shared by the load generator and the
//! integration tests: drive one [`VehicleSim`] through the gateway in
//! lock-step, replaying the exact observation stream `ScenarioPlan` would
//! feed a local pipeline, and check the gateway's answers byte-for-byte
//! against a locally driven [`SecurePipeline`].
//!
//! This is the subsystem's correctness anchor: the only difference between
//! the two paths is the transport, so any output divergence — one bit of
//! one distance at one step — is a gateway bug.

use std::net::SocketAddr;
use std::time::Instant;

use argus_core::{
    NoiseDraw, PipelineOutput, PredictorKind, ScenarioPlan, SecurePipeline, TrialScratch,
};
use argus_cra::CraDetector;
use argus_radar::receiver::RadarObservation;
use argus_sim::time::Step;
use argus_sim::units::{Meters, MetersPerSecond};

use crate::client::{ClientError, GatewayClient};
use crate::session::SessionConfig;
use crate::wire::{
    ExtractedMeasurement, Hello, Observation, ObservationBody, RawFrame, SafeMeasurement,
    VerdictMsg,
};

/// How the harness ships measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Client-side extraction; ship the measurement values.
    Extracted,
    /// Ship the raw baseband; the server re-runs the extraction. Requires a
    /// signal-mode plan.
    RawBaseband,
}

/// What one driven session produced.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// Frames acknowledged by the gateway.
    pub frames: u64,
    /// Steps whose gateway output differed from the local pipeline.
    pub mismatches: u64,
    /// Whether the final server snapshot equals the local pipeline's.
    pub snapshot_matches: bool,
    /// Per-frame round-trip latencies, seconds, in step order.
    pub latencies: Vec<f64>,
}

impl DriveReport {
    /// True when every step and the final state matched bit-for-bit.
    pub fn identical(&self) -> bool {
        self.mismatches == 0 && self.snapshot_matches
    }
}

/// Builds the local twin of the pipeline a gateway session runs.
pub fn local_pipeline(cfg: &SessionConfig, kind: PredictorKind) -> SecurePipeline {
    let detector = CraDetector::new(cfg.schedule.clone(), cfg.detection_threshold);
    let predictor = kind.build().expect("built-in predictor configs are valid");
    SecurePipeline::new(detector, predictor, cfg.dt)
}

/// Converts one simulator observation into its wire form.
pub fn wire_observation(
    step: u64,
    own_speed: f64,
    obs: &RadarObservation,
    draw: Option<NoiseDraw>,
    raw_baseband: Option<(&[f64], &[f64])>,
) -> Observation {
    let body = match (&obs.measurement, raw_baseband) {
        (None, _) => ObservationBody::Empty,
        (Some(m), Some((up, down))) => {
            let d = draw.unwrap_or(NoiseDraw {
                distance: 0.0,
                range_rate: 0.0,
            });
            ObservationBody::Raw(RawFrame {
                snr: m.snr,
                noise_distance: d.distance,
                noise_range_rate: d.range_rate,
                up: up.to_vec(),
                down: down.to_vec(),
            })
        }
        (Some(m), None) => ObservationBody::Extracted(ExtractedMeasurement {
            distance: m.distance.value(),
            range_rate: m.range_rate.value(),
            beat_up: m.beats.up.value(),
            beat_down: m.beats.down.value(),
            snr: m.snr,
        }),
    };
    Observation {
        step,
        own_speed,
        received_power: obs.received_power.value(),
        jammed: obs.jammed,
        body,
    }
}

/// Compares one gateway response pair against the local pipeline output,
/// bit-for-bit on every float.
pub fn outputs_match(verdict: &VerdictMsg, safe: &SafeMeasurement, local: &PipelineOutput) -> bool {
    fn bits(x: Option<f64>) -> Option<u64> {
        x.map(f64::to_bits)
    }
    verdict.verdict == local.verdict
        && safe.source == local.source
        && bits(safe.distance) == bits(local.distance.map(|d| d.value()))
        && safe.relative_speed.to_bits() == local.relative_speed.value().to_bits()
        && bits(safe.control_distance) == bits(local.control_distance.map(|d| d.value()))
}

/// Drives one full scenario through the gateway, lock-step, and verifies
/// byte-identity against a local pipeline at every step and in the final
/// snapshot.
///
/// # Errors
///
/// Propagates transport and server errors.
#[allow(clippy::too_many_arguments)]
pub fn drive_session(
    addr: SocketAddr,
    plan: &ScenarioPlan,
    kind: PredictorKind,
    session_cfg: &SessionConfig,
    vehicle_id: u64,
    seed: u64,
    steps: u64,
    transport: Transport,
) -> Result<DriveReport, ClientError> {
    let (mut client, _welcome) = GatewayClient::connect(
        addr,
        Hello {
            vehicle_id,
            predictor: kind,
            max_inflight: 0,
            resume: false,
        },
    )?;

    let mut scratch = TrialScratch::for_plan(plan);
    let mut sim = plan.vehicle_sim(seed);
    let mut local = local_pipeline(session_cfg, kind);
    let schedule = session_cfg.schedule.clone();

    let mut report = DriveReport {
        frames: 0,
        mismatches: 0,
        snapshot_matches: false,
        latencies: Vec::with_capacity(steps as usize),
    };

    for k_idx in 0..steps {
        if sim.collided() {
            break;
        }
        let k = Step(k_idx);
        let tx_on = schedule.tx_on(k);
        let own_speed = sim.own_speed();
        let (obs, draw) = sim.observe_traced(k, tx_on, &mut scratch);

        let raw = match transport {
            Transport::RawBaseband if obs.measurement.is_some() => {
                // The arena still holds this frame's sweep samples; ship
                // them interleaved.
                let frame = &scratch.radar_scratch().frame;
                let flat = |buf: &[argus_dsp::Complex<f64>]| -> Vec<f64> {
                    buf.iter().flat_map(|c| [c.re, c.im]).collect()
                };
                Some((flat(&frame.up), flat(&frame.down)))
            }
            _ => None,
        };
        let wire_obs = wire_observation(
            k_idx,
            own_speed.value(),
            &obs,
            draw,
            raw.as_ref().map(|(u, d)| (u.as_slice(), d.as_slice())),
        );

        let t0 = Instant::now();
        let (verdict, safe) = client.observe(&wire_obs)?;
        report.latencies.push(t0.elapsed().as_secs_f64());
        report.frames += 1;

        let local_out = local.process(k, &obs, own_speed);
        if !outputs_match(&verdict, &safe, &local_out) {
            report.mismatches += 1;
        }

        // The plant consumes the *gateway's* answer, like a real deployment.
        sim.advance(
            safe.control_distance.map(Meters),
            MetersPerSecond(safe.relative_speed),
        );
    }

    let snap = client.snapshot()?;
    report.snapshot_matches = snap.state == local.snapshot();
    Ok(report)
}
