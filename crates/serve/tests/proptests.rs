//! Property-based tests for the gateway wire protocol: every message
//! roundtrips bit-exactly, and no input — truncated, oversized, or plain
//! garbage — ever panics the decoder; it always gets a typed [`WireError`].

use argus_core::{
    CheckpointState, DetectorState, FusionMode, MeasurementSource, MonitorState, PipelineSnapshot,
    PolicySnapshot, PolicyState, PredictorKind, PredictorState,
};
use argus_cra::Verdict;
use argus_serve::wire::{
    decode_any_frame, decode_frame, decode_payload, encode_into, encode_mux_into, Decoder,
    ErrorCode, ErrorMsg, ExtractedMeasurement, FusedState, Hello, Message, Observation,
    ObservationBody, RawFrame, SafeMeasurement, SnapshotMsg, VerdictMsg, Welcome, WireError,
    HEADER_LEN, MAX_PAYLOAD, VERSION,
};
use proptest::prelude::*;

fn predictor_kinds() -> Vec<PredictorKind> {
    vec![
        PredictorKind::RlsTrend,
        PredictorKind::RlsAr4,
        PredictorKind::Holt,
    ]
}

fn fusion_modes() -> Vec<FusionMode> {
    vec![FusionMode::CraOnly, FusionMode::Fused, FusionMode::FusedIds]
}

fn policy_states() -> Vec<PolicyState> {
    vec![
        PolicyState::Nominal,
        PolicyState::Demoted,
        PolicyState::SafeMode,
        PolicyState::Cooldown,
    ]
}

fn verdicts() -> Vec<Verdict> {
    vec![
        Verdict::NotChallenged {
            under_attack: false,
        },
        Verdict::NotChallenged { under_attack: true },
        Verdict::ChallengePassed,
        Verdict::AttackDetected,
    ]
}

fn sources() -> Vec<MeasurementSource> {
    vec![
        MeasurementSource::Radar,
        MeasurementSource::Estimated,
        MeasurementSource::Unavailable,
    ]
}

fn error_codes() -> Vec<ErrorCode> {
    vec![
        ErrorCode::Version,
        ErrorCode::Malformed,
        ErrorCode::UnsupportedPredictor,
        ErrorCode::BadHandshake,
        ErrorCode::BadStep,
        ErrorCode::Backpressure,
        ErrorCode::Evicted,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    ]
}

/// Encode → decode → compare, bit-exact on floats because the codec ships
/// IEEE-754 bit patterns.
fn assert_roundtrip(msg: &Message) {
    let mut buf = Vec::new();
    encode_into(msg, &mut buf);
    let (back, used) = decode_frame(&buf).expect("well-formed frame decodes");
    assert_eq!(used, buf.len());
    assert_eq!(&back, msg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hello_roundtrips(
        vehicle_id in 0u64..u64::MAX,
        kind in proptest::sample::select(predictor_kinds()),
        max_inflight in 0u16..u16::MAX,
        resume in proptest::bool::ANY,
        fusion in proptest::sample::select(fusion_modes()),
    ) {
        assert_roundtrip(&Message::Hello(Hello {
            vehicle_id,
            predictor: kind,
            max_inflight,
            resume,
            fusion,
        }));
    }

    #[test]
    fn welcome_roundtrips(
        vehicle_id in 0u64..u64::MAX,
        next_step in 0u64..u64::MAX,
        max_inflight in 1u16..u16::MAX,
    ) {
        assert_roundtrip(&Message::Welcome(Welcome {
            vehicle_id,
            next_step,
            max_inflight,
        }));
    }

    #[test]
    fn observation_roundtrips_all_bodies(
        step in 0u64..1_000_000,
        own_speed in -100.0f64..100.0,
        received_power in 0.0f64..1e-9,
        jammed in proptest::bool::ANY,
        body_tag in 0usize..3,
        fields in proptest::collection::vec(-1e6f64..1e6, 5),
        samples in proptest::collection::vec(-1.0f64..1.0, 0..64),
        aux_camera in proptest::option::of(-1e4f64..1e4),
        aux_v2v in proptest::option::of(-200.0f64..200.0),
    ) {
        let body = match body_tag {
            0 => ObservationBody::Empty,
            1 => ObservationBody::Extracted(ExtractedMeasurement {
                distance: fields[0],
                range_rate: fields[1],
                beat_up: fields[2],
                beat_down: fields[3],
                snr: fields[4],
            }),
            _ => ObservationBody::Raw(RawFrame {
                snr: fields[0],
                noise_distance: fields[1],
                noise_range_rate: fields[2],
                up: samples.clone(),
                down: samples.iter().rev().copied().collect(),
            }),
        };
        assert_roundtrip(&Message::Observation(Observation {
            step,
            own_speed,
            received_power,
            jammed,
            body,
            aux_camera,
            aux_v2v,
        }));
    }

    #[test]
    fn verdict_roundtrips(
        step in 0u64..u64::MAX,
        verdict in proptest::sample::select(verdicts()),
    ) {
        assert_roundtrip(&Message::Verdict(VerdictMsg { step, verdict }));
    }

    #[test]
    fn safe_measurement_roundtrips(
        step in 0u64..u64::MAX,
        source in proptest::sample::select(sources()),
        distance in proptest::option::of(-1e4f64..1e4),
        relative_speed in -100.0f64..100.0,
        control_distance in proptest::option::of(-1e4f64..1e4),
    ) {
        assert_roundtrip(&Message::SafeMeasurement(SafeMeasurement {
            step,
            source,
            distance,
            relative_speed,
            control_distance,
        }));
    }

    #[test]
    fn snapshot_roundtrips(
        vehicle_id in 0u64..u64::MAX,
        next_step in 0u64..1_000_000,
        latched in proptest::bool::ANY,
        first_detection in proptest::option::of(0u64..1_000_000),
        detections in proptest::collection::vec(0u64..1_000_000, 0..8),
        counters in proptest::collection::vec(0u64..1_000, 0..4),
        values in proptest::collection::vec(-1e3f64..1e3, 0..24),
        last_distance in proptest::option::of(0.0f64..200.0),
        estimation_steps in 0u64..1_000_000,
        consecutive_estimates in 0u64..1_000,
        was_attacked in proptest::bool::ANY,
        with_checkpoint in proptest::bool::ANY,
        speeds in proptest::collection::vec(0.0f64..50.0, 0..16),
        with_fused in proptest::bool::ANY,
        policy_state in proptest::sample::select(policy_states()),
        monitor_count in 0usize..4,
        trusts in proptest::collection::vec(0.0f64..1.0, 3),
        ids_detection in proptest::option::of(0u64..1_000_000),
    ) {
        let predictor = PredictorState {
            counters: counters.clone(),
            values: values.clone(),
        };
        let checkpoint = if with_checkpoint {
            Some(CheckpointState {
                predictor: PredictorState {
                    counters: counters.clone(),
                    values: values.clone(),
                },
                last_distance,
            })
        } else {
            None
        };
        let fused = if with_fused {
            let monitors = (0..monitor_count)
                .map(|i| MonitorState {
                    chi2_terms: values.clone(),
                    chi2_statistic: values.iter().sum(),
                    last_nis: i as f64 * 0.75,
                    chi2_alarmed: i % 2 == 1,
                    chi2_alarms: i as u64,
                    ewma: 1.5 + i as f64,
                    cusum: 0.25 * i as f64,
                    samples: estimation_steps,
                })
                .collect();
            Some(FusedState {
                predictor: PredictorState {
                    counters: counters.clone(),
                    values: values.clone(),
                },
                last_distance,
                free_run: consecutive_estimates,
                monitors,
                trusts: trusts.clone(),
                policy: PolicySnapshot {
                    state: policy_state,
                    quiet: estimation_steps % 17,
                    safe_mode_steps: estimation_steps % 113,
                },
                ids_detection,
            })
        } else {
            None
        };
        assert_roundtrip(&Message::Snapshot(SnapshotMsg {
            vehicle_id,
            next_step,
            state: PipelineSnapshot {
                detector: DetectorState {
                    latched,
                    first_detection,
                    detections,
                },
                predictor,
                last_distance,
                estimation_steps,
                consecutive_estimates,
                was_attacked,
                checkpoint,
                speeds_since_checkpoint: speeds,
            },
            fused,
        }));
    }

    #[test]
    fn error_roundtrips(
        code in proptest::sample::select(error_codes()),
        detail in proptest::collection::vec(0u32..0x24F, 0..40),
    ) {
        let detail: String = detail
            .into_iter()
            .filter_map(char::from_u32)
            .collect();
        assert_roundtrip(&Message::Error(ErrorMsg { code, detail }));
        assert_roundtrip(&Message::SnapshotRequest);
    }

    /// Every proper prefix of a valid frame is `Truncated`, never a panic
    /// or a bogus success.
    #[test]
    fn every_prefix_is_truncated(
        step in 0u64..1_000_000,
        samples in proptest::collection::vec(-1.0f64..1.0, 0..32),
        aux in proptest::option::of(-1e3f64..1e3),
    ) {
        let msg = Message::Observation(Observation {
            step,
            own_speed: 29.0,
            received_power: 1e-12,
            jammed: false,
            body: ObservationBody::Raw(RawFrame {
                snr: 10.0,
                noise_distance: 0.0,
                noise_range_rate: 0.0,
                up: samples.clone(),
                down: samples,
            }),
            aux_camera: aux,
            aux_v2v: aux.map(|v| v + 1.25),
        });
        let mut buf = Vec::new();
        encode_into(&msg, &mut buf);
        for cut in 0..buf.len() {
            let err = decode_frame(&buf[..cut]).expect_err("prefix cannot decode");
            prop_assert!(matches!(err, WireError::Truncated { .. }), "cut {}: {:?}", cut, err);
        }
    }

    /// Arbitrary bytes never panic the frame decoder; they produce a typed
    /// error or (if they happen to spell a frame) a message.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..255, 0..256)) {
        let _ = decode_frame(&bytes);
    }

    /// Arbitrary bytes under a valid header never panic any payload
    /// decoder.
    #[test]
    fn garbage_payloads_never_panic(
        msg_type in 0u8..13,
        payload in proptest::collection::vec(0u8..255, 0..128),
    ) {
        let _ = decode_payload(msg_type, &payload);
    }

    /// A frame from a different protocol version is rejected as
    /// `VersionMismatch` — the typed signal the server turns into a clean
    /// `Error { code: Version }` frame before closing.
    #[test]
    fn version_mismatch_is_typed(version in 0u16..u16::MAX) {
        prop_assume!(version != VERSION);
        let mut buf = Vec::new();
        encode_into(&Message::SnapshotRequest, &mut buf);
        buf[4..6].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            decode_frame(&buf),
            Err(WireError::VersionMismatch { got: version })
        );
    }

    /// Oversized payload declarations are rejected from the header alone.
    #[test]
    fn oversized_is_rejected_before_buffering(extra in 1u32..1000) {
        let len = MAX_PAYLOAD + extra;
        let mut buf = Vec::new();
        encode_into(&Message::SnapshotRequest, &mut buf);
        buf[8..12].copy_from_slice(&len.to_le_bytes());
        prop_assert_eq!(decode_frame(&buf), Err(WireError::Oversized { len }));
        prop_assert!(buf.len() < HEADER_LEN + MAX_PAYLOAD as usize);
    }

    /// The resumable decoder produces the same frames as the one-shot
    /// decoder no matter where the byte stream is split — every boundary
    /// of a plain+mux pair, including mid-header and mid-payload.
    #[test]
    fn decoder_split_at_every_boundary_matches_oneshot(
        step in 0u64..1_000_000,
        channel in 0u32..u32::MAX,
        detail in "[ -~]{0,24}",
    ) {
        let msgs = sample_stream_messages(step, detail);
        let (stream, expected) = encode_stream(&msgs, channel);
        for cut in 0..=stream.len() {
            let mut dec = Decoder::new();
            let mut got = Vec::new();
            drain_decoder(&mut dec, &stream[..cut], &mut got).expect("valid stream");
            drain_decoder(&mut dec, &stream[cut..], &mut got).expect("valid stream");
            prop_assert_eq!(&got, &expected, "split at byte {}", cut);
            prop_assert!(dec.is_idle(), "split at byte {} left state behind", cut);
        }
    }

    /// Arbitrary re-chunking — byte-by-byte dribble through coalesced
    /// many-frame buffers — never changes what the decoder produces.
    #[test]
    fn decoder_random_chunking_matches_oneshot(
        step in 0u64..1_000_000,
        channel in 0u32..u32::MAX,
        detail in "[ -~]{0,24}",
        copies in 1usize..4,
        chunks in proptest::collection::vec(1usize..23, 1..32),
    ) {
        let msgs: Vec<(Option<u32>, Message)> = sample_stream_messages(step, detail)
            .into_iter()
            .cycle()
            .take(copies * 4)
            .collect();
        let (stream, expected) = encode_stream(&msgs, channel);
        let mut dec = Decoder::new();
        let mut got = Vec::new();
        let mut offset = 0;
        let mut i = 0;
        while offset < stream.len() {
            let take = chunks[i % chunks.len()].min(stream.len() - offset);
            i += 1;
            drain_decoder(&mut dec, &stream[offset..offset + take], &mut got)
                .expect("valid stream");
            offset += take;
        }
        prop_assert_eq!(&got, &expected);
        prop_assert!(dec.is_idle());
    }

    /// Garbage fed in arbitrary chunks never panics the resumable decoder;
    /// it either yields frames or a typed error.
    #[test]
    fn decoder_garbage_never_panics(
        bytes in proptest::collection::vec(0u8..255, 0..256),
        chunks in proptest::collection::vec(1usize..17, 1..16),
    ) {
        let mut dec = Decoder::new();
        let mut got = Vec::new();
        let mut offset = 0;
        let mut i = 0;
        while offset < bytes.len() {
            let take = chunks[i % chunks.len()].min(bytes.len() - offset);
            i += 1;
            if drain_decoder(&mut dec, &bytes[offset..offset + take], &mut got).is_err() {
                break;
            }
            offset += take;
        }
    }
}

/// A small plain/mux mix exercising fixed-size and variable-size payloads.
fn sample_stream_messages(step: u64, detail: String) -> Vec<(Option<u32>, Message)> {
    vec![
        (None, Message::SnapshotRequest),
        (
            Some(0),
            Message::Verdict(VerdictMsg {
                step,
                verdict: Verdict::ChallengePassed,
            }),
        ),
        (
            None,
            Message::Error(ErrorMsg {
                code: ErrorCode::BadStep,
                detail,
            }),
        ),
        (
            Some(1),
            Message::Observation(Observation {
                step,
                own_speed: 29.0,
                received_power: 1e-12,
                jammed: false,
                body: ObservationBody::Empty,
                aux_camera: None,
                aux_v2v: None,
            }),
        ),
    ]
}

/// Encodes the mix (offsetting mux channels by `channel_base`) and returns
/// the byte stream plus the (channel, message) sequence the one-shot
/// decoder extracts from it.
fn encode_stream(
    msgs: &[(Option<u32>, Message)],
    channel_base: u32,
) -> (Vec<u8>, Vec<(Option<u32>, Message)>) {
    let mut stream = Vec::new();
    let mut expected = Vec::new();
    for (channel, msg) in msgs {
        let channel = channel.map(|c| c.wrapping_add(channel_base));
        match channel {
            None => encode_into(msg, &mut stream),
            Some(c) => encode_mux_into(c, msg, &mut stream),
        }
        expected.push((channel, msg.clone()));
    }
    // Cross-check the expectation against the one-shot decoder.
    let mut offset = 0;
    for (channel, msg) in &expected {
        let (frame, used) = decode_any_frame(&stream[offset..]).expect("valid stream");
        assert_eq!(&frame.channel, channel);
        assert_eq!(&frame.msg, msg);
        offset += used;
    }
    assert_eq!(offset, stream.len());
    (stream, expected)
}

/// Feeds one contiguous chunk to the decoder, collecting every completed
/// frame.
fn drain_decoder(
    dec: &mut Decoder,
    mut buf: &[u8],
    out: &mut Vec<(Option<u32>, Message)>,
) -> Result<(), WireError> {
    while !buf.is_empty() {
        let (used, frame) = dec.feed(buf)?;
        if let Some(f) = frame {
            out.push((f.channel, f.msg));
        }
        buf = &buf[used..];
    }
    Ok(())
}
