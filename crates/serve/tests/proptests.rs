//! Property-based tests for the gateway wire protocol: every message
//! roundtrips bit-exactly, and no input — truncated, oversized, or plain
//! garbage — ever panics the decoder; it always gets a typed [`WireError`].

use argus_core::{
    CheckpointState, DetectorState, MeasurementSource, PipelineSnapshot, PredictorKind,
    PredictorState,
};
use argus_cra::Verdict;
use argus_serve::wire::{
    decode_frame, decode_payload, encode_into, ErrorCode, ErrorMsg, ExtractedMeasurement, Hello,
    Message, Observation, ObservationBody, RawFrame, SafeMeasurement, SnapshotMsg, VerdictMsg,
    Welcome, WireError, HEADER_LEN, MAX_PAYLOAD, VERSION,
};
use proptest::prelude::*;

fn predictor_kinds() -> Vec<PredictorKind> {
    vec![
        PredictorKind::RlsTrend,
        PredictorKind::RlsAr4,
        PredictorKind::Holt,
    ]
}

fn verdicts() -> Vec<Verdict> {
    vec![
        Verdict::NotChallenged {
            under_attack: false,
        },
        Verdict::NotChallenged { under_attack: true },
        Verdict::ChallengePassed,
        Verdict::AttackDetected,
    ]
}

fn sources() -> Vec<MeasurementSource> {
    vec![
        MeasurementSource::Radar,
        MeasurementSource::Estimated,
        MeasurementSource::Unavailable,
    ]
}

fn error_codes() -> Vec<ErrorCode> {
    vec![
        ErrorCode::Version,
        ErrorCode::Malformed,
        ErrorCode::UnsupportedPredictor,
        ErrorCode::BadHandshake,
        ErrorCode::BadStep,
        ErrorCode::Backpressure,
        ErrorCode::Evicted,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    ]
}

/// Encode → decode → compare, bit-exact on floats because the codec ships
/// IEEE-754 bit patterns.
fn assert_roundtrip(msg: &Message) {
    let mut buf = Vec::new();
    encode_into(msg, &mut buf);
    let (back, used) = decode_frame(&buf).expect("well-formed frame decodes");
    assert_eq!(used, buf.len());
    assert_eq!(&back, msg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hello_roundtrips(
        vehicle_id in 0u64..u64::MAX,
        kind in proptest::sample::select(predictor_kinds()),
        max_inflight in 0u16..u16::MAX,
        resume in proptest::bool::ANY,
    ) {
        assert_roundtrip(&Message::Hello(Hello {
            vehicle_id,
            predictor: kind,
            max_inflight,
            resume,
        }));
    }

    #[test]
    fn welcome_roundtrips(
        vehicle_id in 0u64..u64::MAX,
        next_step in 0u64..u64::MAX,
        max_inflight in 1u16..u16::MAX,
    ) {
        assert_roundtrip(&Message::Welcome(Welcome {
            vehicle_id,
            next_step,
            max_inflight,
        }));
    }

    #[test]
    fn observation_roundtrips_all_bodies(
        step in 0u64..1_000_000,
        own_speed in -100.0f64..100.0,
        received_power in 0.0f64..1e-9,
        jammed in proptest::bool::ANY,
        body_tag in 0usize..3,
        fields in proptest::collection::vec(-1e6f64..1e6, 5),
        samples in proptest::collection::vec(-1.0f64..1.0, 0..64),
    ) {
        let body = match body_tag {
            0 => ObservationBody::Empty,
            1 => ObservationBody::Extracted(ExtractedMeasurement {
                distance: fields[0],
                range_rate: fields[1],
                beat_up: fields[2],
                beat_down: fields[3],
                snr: fields[4],
            }),
            _ => ObservationBody::Raw(RawFrame {
                snr: fields[0],
                noise_distance: fields[1],
                noise_range_rate: fields[2],
                up: samples.clone(),
                down: samples.iter().rev().copied().collect(),
            }),
        };
        assert_roundtrip(&Message::Observation(Observation {
            step,
            own_speed,
            received_power,
            jammed,
            body,
        }));
    }

    #[test]
    fn verdict_roundtrips(
        step in 0u64..u64::MAX,
        verdict in proptest::sample::select(verdicts()),
    ) {
        assert_roundtrip(&Message::Verdict(VerdictMsg { step, verdict }));
    }

    #[test]
    fn safe_measurement_roundtrips(
        step in 0u64..u64::MAX,
        source in proptest::sample::select(sources()),
        distance in proptest::option::of(-1e4f64..1e4),
        relative_speed in -100.0f64..100.0,
        control_distance in proptest::option::of(-1e4f64..1e4),
    ) {
        assert_roundtrip(&Message::SafeMeasurement(SafeMeasurement {
            step,
            source,
            distance,
            relative_speed,
            control_distance,
        }));
    }

    #[test]
    fn snapshot_roundtrips(
        vehicle_id in 0u64..u64::MAX,
        next_step in 0u64..1_000_000,
        latched in proptest::bool::ANY,
        first_detection in proptest::option::of(0u64..1_000_000),
        detections in proptest::collection::vec(0u64..1_000_000, 0..8),
        counters in proptest::collection::vec(0u64..1_000, 0..4),
        values in proptest::collection::vec(-1e3f64..1e3, 0..24),
        last_distance in proptest::option::of(0.0f64..200.0),
        estimation_steps in 0u64..1_000_000,
        consecutive_estimates in 0u64..1_000,
        was_attacked in proptest::bool::ANY,
        with_checkpoint in proptest::bool::ANY,
        speeds in proptest::collection::vec(0.0f64..50.0, 0..16),
    ) {
        let predictor = PredictorState {
            counters: counters.clone(),
            values: values.clone(),
        };
        let checkpoint = if with_checkpoint {
            Some(CheckpointState {
                predictor: PredictorState {
                    counters,
                    values,
                },
                last_distance,
            })
        } else {
            None
        };
        assert_roundtrip(&Message::Snapshot(SnapshotMsg {
            vehicle_id,
            next_step,
            state: PipelineSnapshot {
                detector: DetectorState {
                    latched,
                    first_detection,
                    detections,
                },
                predictor,
                last_distance,
                estimation_steps,
                consecutive_estimates,
                was_attacked,
                checkpoint,
                speeds_since_checkpoint: speeds,
            },
        }));
    }

    #[test]
    fn error_roundtrips(
        code in proptest::sample::select(error_codes()),
        detail in proptest::collection::vec(0u32..0x24F, 0..40),
    ) {
        let detail: String = detail
            .into_iter()
            .filter_map(char::from_u32)
            .collect();
        assert_roundtrip(&Message::Error(ErrorMsg { code, detail }));
        assert_roundtrip(&Message::SnapshotRequest);
    }

    /// Every proper prefix of a valid frame is `Truncated`, never a panic
    /// or a bogus success.
    #[test]
    fn every_prefix_is_truncated(
        step in 0u64..1_000_000,
        samples in proptest::collection::vec(-1.0f64..1.0, 0..32),
    ) {
        let msg = Message::Observation(Observation {
            step,
            own_speed: 29.0,
            received_power: 1e-12,
            jammed: false,
            body: ObservationBody::Raw(RawFrame {
                snr: 10.0,
                noise_distance: 0.0,
                noise_range_rate: 0.0,
                up: samples.clone(),
                down: samples,
            }),
        });
        let mut buf = Vec::new();
        encode_into(&msg, &mut buf);
        for cut in 0..buf.len() {
            let err = decode_frame(&buf[..cut]).expect_err("prefix cannot decode");
            prop_assert!(matches!(err, WireError::Truncated { .. }), "cut {}: {:?}", cut, err);
        }
    }

    /// Arbitrary bytes never panic the frame decoder; they produce a typed
    /// error or (if they happen to spell a frame) a message.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..255, 0..256)) {
        let _ = decode_frame(&bytes);
    }

    /// Arbitrary bytes under a valid header never panic any payload
    /// decoder.
    #[test]
    fn garbage_payloads_never_panic(
        msg_type in 0u8..13,
        payload in proptest::collection::vec(0u8..255, 0..128),
    ) {
        let _ = decode_payload(msg_type, &payload);
    }

    /// A frame from a different protocol version is rejected as
    /// `VersionMismatch` — the typed signal the server turns into a clean
    /// `Error { code: Version }` frame before closing.
    #[test]
    fn version_mismatch_is_typed(version in 0u16..u16::MAX) {
        prop_assume!(version != VERSION);
        let mut buf = Vec::new();
        encode_into(&Message::SnapshotRequest, &mut buf);
        buf[4..6].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            decode_frame(&buf),
            Err(WireError::VersionMismatch { got: version })
        );
    }

    /// Oversized payload declarations are rejected from the header alone.
    #[test]
    fn oversized_is_rejected_before_buffering(extra in 1u32..1000) {
        let len = MAX_PAYLOAD + extra;
        let mut buf = Vec::new();
        encode_into(&Message::SnapshotRequest, &mut buf);
        buf[8..12].copy_from_slice(&len.to_le_bytes());
        prop_assert_eq!(decode_frame(&buf), Err(WireError::Oversized { len }));
        prop_assert!(buf.len() < HEADER_LEN + MAX_PAYLOAD as usize);
    }
}
