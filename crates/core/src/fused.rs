//! Attack-aware multi-sensor fusion layered on the paper pipeline.
//!
//! [`FusedPipeline`] embeds the full single-radar [`SecurePipeline`] (CRA
//! challenge–response, rewind, free-run estimation) and extends it with the
//! `argus-fusion` stack (DESIGN.md §10):
//!
//! * the camera-like range channel and the V2V leader-speed channel arrive
//!   as an [`AuxObservation`] sampled by the plant side
//!   ([`VehicleSim::observe_aux`](crate::plan::VehicleSim::observe_aux));
//! * a trend predictor over the **fused** leader speed provides the
//!   one-step prediction every channel's innovation is measured against;
//! * per-channel [`ChannelMonitor`]s (χ² window + EWMA + CUSUM on the NIS)
//!   raise typed [`AlarmEvent`]s; in [`FusionMode::Fused`] they run but
//!   their alarms are ignored — the innovation gate alone protects the
//!   estimate — while [`FusionMode::FusedIds`] also drives the
//!   [`MitigationPolicy`];
//! * the fused distance/leader-speed are trust-weighted WLS combinations
//!   over the gated channels; when every channel is gated out the pipeline
//!   dead-reckons, and when even that is cold it falls back to the
//!   embedded CRA pipeline's output — the paper's single-radar machinery
//!   is always the floor, never removed.
//!
//! The CRA detector's latch remains authoritative for the attack-window
//! bookkeeping (estimation steps, confusion at challenge instants), so
//! fused runs stay comparable to CRA-only runs metric-for-metric.

use argus_estim::predictor::{PredictorState, StreamPredictor};
use argus_estim::trend::TrendPredictor;
use argus_estim::EstimError;
use argus_fusion::fuse::Candidate;
use argus_fusion::{
    AlarmEvent, AuxObservation, ChannelId, ChannelMonitor, FusionEstimate, FusionMode,
    MitigationPolicy, MonitorConfig, MonitorState, PolicyConfig, PolicySnapshot, PolicyState,
    TrustConfig, TrustScore, WlsFuser,
};
use argus_radar::receiver::RadarObservation;
use argus_sim::time::Step;
use argus_sim::units::{Meters, MetersPerSecond, Seconds};

use crate::pipeline::{
    MeasurementSource, PipelineOutput, PipelineSnapshot, SecurePipeline, MARGIN_CAP, MARGIN_QUAD,
};

/// Tuning of the fusion layer: channel noise levels (for WLS weights and
/// NIS normalization), the innovation gate, trust dynamics and the
/// mitigation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionParams {
    /// Which machinery runs (fusion only, or fusion + IDS + policy).
    pub mode: FusionMode,
    /// Radar distance measurement σ (m).
    pub radar_distance_sigma: f64,
    /// Radar range-rate measurement σ (m/s).
    pub radar_speed_sigma: f64,
    /// Camera range σ (m).
    pub camera_sigma: f64,
    /// V2V leader-speed σ (m/s).
    pub v2v_sigma: f64,
    /// Extra variance granted to distance innovations for the prediction's
    /// own error (dead-reckoning anchor + trend extrapolation).
    pub prediction_gap_var: f64,
    /// Extra variance granted to speed innovations for the trend error.
    pub prediction_speed_var: f64,
    /// The innovation-gated WLS combiner.
    pub fuser: WlsFuser,
    /// Trust demotion/recovery dynamics.
    pub trust: TrustConfig,
    /// Mitigation state-machine tuning.
    pub policy: PolicyConfig,
}

impl FusionParams {
    /// Reference tuning matching [`argus_fusion::AuxChannels::paper`] and
    /// the paper scenario's radar noise (DESIGN.md §10).
    pub fn paper(mode: FusionMode) -> Self {
        Self {
            mode,
            radar_distance_sigma: 0.5,
            radar_speed_sigma: 0.02,
            camera_sigma: 1.0,
            v2v_sigma: 0.1,
            prediction_gap_var: 0.5,
            prediction_speed_var: 0.01,
            fuser: WlsFuser::default(),
            trust: TrustConfig::default(),
            policy: PolicyConfig::default(),
        }
    }
}

/// Per-step output of the fused pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedOutput {
    /// The embedded CRA pipeline's own output this step (latch, challenge
    /// verdicts, free-run estimate) — the fallback and the bookkeeping
    /// anchor.
    pub cra: PipelineOutput,
    /// Distance served to the controller (`None` = nothing known).
    pub distance: Option<Meters>,
    /// Relative speed served to the controller.
    pub relative_speed: MetersPerSecond,
    /// Control distance (margin-adjusted while dead-reckoning).
    pub control_distance: Option<Meters>,
    /// The distance-fusion result when at least one channel passed the
    /// gate this step.
    pub fused: Option<FusionEstimate>,
    /// IDS alarms raised this step (always empty in [`FusionMode::Fused`]).
    pub alarms: Vec<AlarmEvent>,
    /// Mitigation mode after this step (Nominal unless IDS is enabled).
    pub policy_state: PolicyState,
    /// Per-channel trust after this step, indexed by [`ChannelId::index`].
    pub trust: [f64; 3],
}

/// Plain-old-data export of **all** mutable [`FusedPipeline`] state.
///
/// `Default` is the v1 (pre-fusion) shape: a snapshot carrying only a
/// [`PipelineSnapshot`] restores with every fusion field at its default,
/// which is exactly how a v1 peer's state enters a fused session.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FusedSnapshot {
    /// The embedded CRA pipeline's snapshot.
    pub cra: PipelineSnapshot,
    /// Fused leader-speed trend predictor state.
    pub predictor: PredictorState,
    /// Fused dead-reckoning anchor.
    pub last_distance: Option<f64>,
    /// Consecutive steps without a measurement-backed fused distance.
    pub free_run: u64,
    /// Monitor states in [`ChannelId::ALL`] order (empty = defaults).
    pub monitors: Vec<MonitorState>,
    /// Trust scores in [`ChannelId::ALL`] order (empty = full trust).
    pub trusts: Vec<f64>,
    /// Mitigation policy state.
    pub policy: PolicySnapshot,
    /// First IDS alarm step, if any.
    pub ids_detection: Option<u64>,
}

impl FusedSnapshot {
    /// Wraps a v1 (CRA-only) snapshot: fusion state at defaults.
    pub fn from_v1(cra: PipelineSnapshot) -> Self {
        Self {
            cra,
            ..Self::default()
        }
    }
}

/// The attack-aware fused pipeline: CRA + trust-weighted multi-channel
/// fusion + sequential IDS + mitigation policy.
#[derive(Debug)]
pub struct FusedPipeline {
    cra: SecurePipeline,
    params: FusionParams,
    dt: Seconds,
    predictor: TrendPredictor,
    last_distance: Option<f64>,
    free_run: u64,
    monitors: [ChannelMonitor; 3],
    trusts: [TrustScore; 3],
    policy: MitigationPolicy,
    ids_detection: Option<Step>,
    d_cands: Vec<Candidate>,
    v_cands: Vec<Candidate>,
}

impl Clone for FusedPipeline {
    fn clone(&self) -> Self {
        Self {
            cra: self.cra.clone(),
            params: self.params,
            dt: self.dt,
            predictor: self.predictor.clone(),
            last_distance: self.last_distance,
            free_run: self.free_run,
            monitors: self.monitors.clone(),
            trusts: self.trusts,
            policy: self.policy,
            ids_detection: self.ids_detection,
            d_cands: Vec::new(),
            v_cands: Vec::new(),
        }
    }
}

impl FusedPipeline {
    /// Builds a fused pipeline around an embedded CRA pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive or the monitor tuning is
    /// invalid (the [`FusionParams::paper`] tuning always is valid).
    pub fn new(cra: SecurePipeline, params: FusionParams, dt: Seconds) -> Self {
        assert!(dt.value() > 0.0, "sample period must be positive");
        let monitor = |channel: ChannelId, var: f64| {
            ChannelMonitor::new(channel, MonitorConfig::paper(var))
                .expect("fusion monitor tuning is valid")
        };
        let radar_var = params.radar_distance_sigma.powi(2) + params.prediction_gap_var;
        let camera_var = params.camera_sigma.powi(2) + params.prediction_gap_var;
        let v2v_var = params.v2v_sigma.powi(2) + params.prediction_speed_var;
        Self {
            cra,
            params,
            dt,
            predictor: TrendPredictor::paper().expect("paper trend config is valid"),
            last_distance: None,
            free_run: 0,
            monitors: [
                monitor(ChannelId::Radar, radar_var),
                monitor(ChannelId::Camera, camera_var),
                monitor(ChannelId::V2v, v2v_var),
            ],
            trusts: [TrustScore::new(); 3],
            policy: MitigationPolicy::new(params.policy),
            ids_detection: None,
            d_cands: Vec::with_capacity(2),
            v_cands: Vec::with_capacity(2),
        }
    }

    /// The paper configuration: [`SecurePipeline::paper`] inside,
    /// [`FusionParams::paper`] tuning, 1 s sampling.
    ///
    /// # Errors
    ///
    /// Propagates predictor construction errors.
    pub fn paper(
        detector: argus_cra::detector::CraDetector,
        mode: FusionMode,
    ) -> Result<Self, EstimError> {
        Ok(Self::new(
            SecurePipeline::paper(detector)?,
            FusionParams::paper(mode),
            Seconds(1.0),
        ))
    }

    /// Whether the radar should transmit at step `k` (CRA modulation).
    pub fn tx_on(&self, k: Step) -> bool {
        self.cra.tx_on(k)
    }

    /// The embedded CRA pipeline.
    pub fn cra(&self) -> &SecurePipeline {
        &self.cra
    }

    /// The fusion mode this pipeline runs in.
    pub fn mode(&self) -> FusionMode {
        self.params.mode
    }

    /// The tuning in use.
    pub fn params(&self) -> &FusionParams {
        &self.params
    }

    /// First step at which a sequential monitor alarmed (`None` until then,
    /// and always `None` in [`FusionMode::Fused`]).
    pub fn ids_detection(&self) -> Option<Step> {
        self.ids_detection
    }

    /// Total steps the mitigation policy has spent in safe mode.
    pub fn safe_mode_steps(&self) -> u64 {
        self.policy.safe_mode_steps()
    }

    /// Current mitigation mode.
    pub fn policy_state(&self) -> PolicyState {
        self.policy.state()
    }

    /// Current trust score of a channel.
    pub fn trust(&self, channel: ChannelId) -> f64 {
        self.trusts[channel.index()].value()
    }

    /// One-step-ahead leader-speed prediction from the fused trend fit,
    /// without advancing the fit (the innovation reference).
    fn peek_speed(&self) -> Option<f64> {
        if !self.predictor.is_ready() {
            return None;
        }
        let (w0, w1) = self.predictor.weights();
        Some(w0 + w1 * (self.predictor.samples() as f64 / 100.0))
    }

    /// Feeds one channel's innovation into its monitor stack. Returns the
    /// channel's NIS (used for gating) when the channel produced a value.
    /// Alarms are surfaced only when the IDS is enabled — in plain fusion
    /// mode the monitors still run (state parity across modes) but their
    /// events are discarded.
    fn feed_monitor(
        &mut self,
        channel: ChannelId,
        k: Step,
        value: Option<f64>,
        predicted: Option<f64>,
        alarms: &mut Vec<AlarmEvent>,
    ) -> Option<f64> {
        let value = value?;
        // Before the fused predictor is warm there is no reference: the
        // innovation is defined as zero, which admits the channel and keeps
        // the monitor window benign.
        let innovation = predicted.map_or(0.0, |p| value - p);
        let events = self.monitors[channel.index()].push(k, innovation);
        let nis = self.monitors[channel.index()].chi2().last_nis();
        if self.params.mode.ids_enabled() {
            alarms.extend(events);
        }
        Some(nis)
    }

    /// Processes one step: the radar observation (through the embedded CRA
    /// pipeline), the auxiliary channels, and the trusted ego speed.
    pub fn process(
        &mut self,
        k: Step,
        obs: &RadarObservation,
        aux: &AuxObservation,
        own_speed: MetersPerSecond,
    ) -> FusedOutput {
        let cra_out = self.cra.process(k, obs, own_speed);
        let v_f = own_speed.value();

        // One-step references from the fused state (pre-update weights).
        let v_pred = self.peek_speed();
        let v_pred_fwd = v_pred.map(|v| v.max(0.0));
        let d_pred = match (self.last_distance, v_pred_fwd) {
            (Some(d), Some(v)) => Some(d + (v - v_f) * self.dt.value()),
            _ => None,
        };

        // Channel values. Only a *fresh* radar measurement counts as the
        // radar channel — while the CRA is latched (or bridging a
        // challenge) the radar contributes nothing to fuse.
        let radar_fresh = cra_out.source == MeasurementSource::Radar;
        let radar_d = radar_fresh.then(|| cra_out.distance.map_or(0.0, |d| d.value()));
        let radar_v_l = radar_fresh.then(|| cra_out.relative_speed.value() + v_f);

        let mut alarms: Vec<AlarmEvent> = Vec::new();
        let nis_radar = self.feed_monitor(ChannelId::Radar, k, radar_d, d_pred, &mut alarms);
        let nis_camera =
            self.feed_monitor(ChannelId::Camera, k, aux.camera_range, d_pred, &mut alarms);
        let nis_v2v =
            self.feed_monitor(ChannelId::V2v, k, aux.v2v_leader_speed, v_pred, &mut alarms);

        // Trust dynamics: gated innovations demote geometrically, clean
        // ones restore linearly.
        let gate = self.params.fuser.nis_gate;
        for (channel, nis) in [
            (ChannelId::Radar, nis_radar),
            (ChannelId::Camera, nis_camera),
            (ChannelId::V2v, nis_v2v),
        ] {
            if let Some(nis) = nis {
                if nis > gate {
                    self.trusts[channel.index()].demote(&self.params.trust);
                } else {
                    self.trusts[channel.index()].recover(&self.params.trust);
                }
            }
        }

        // IDS: floor alarmed channels and drive the mitigation policy. The
        // CRA latch counts as a radar alarm — the paper's detector is one
        // of the radar channel's alarm sources.
        let ids = self.params.mode.ids_enabled();
        if ids {
            for e in &alarms {
                self.trusts[e.channel.index()].floor_out(&self.params.trust);
            }
            let radar_alarm = cra_out.verdict.under_attack()
                || alarms.iter().any(|e| e.channel == ChannelId::Radar);
            let aux_alarm = alarms.iter().any(|e| e.channel != ChannelId::Radar);
            self.policy.observe(radar_alarm, aux_alarm);
            if self.ids_detection.is_none() && !alarms.is_empty() {
                self.ids_detection = Some(k);
            }
        }

        // In safe mode the radar is suspect even where the CRA has not
        // latched yet (spoofed-but-plausible data between challenges):
        // exclude it from the combination outright.
        let radar_allowed = !(ids && self.policy.in_safe_mode());

        // Trust/σ²-weighted WLS over the gated channels.
        self.d_cands.clear();
        if let (true, Some(value), Some(nis)) = (radar_allowed, radar_d, nis_radar) {
            self.d_cands.push(Candidate {
                channel: ChannelId::Radar,
                value,
                variance: self.params.radar_distance_sigma.powi(2),
                trust: self.trusts[ChannelId::Radar.index()].value(),
                nis,
            });
        }
        if let (Some(value), Some(nis)) = (aux.camera_range, nis_camera) {
            self.d_cands.push(Candidate {
                channel: ChannelId::Camera,
                value,
                variance: self.params.camera_sigma.powi(2),
                trust: self.trusts[ChannelId::Camera.index()].value(),
                nis,
            });
        }
        let fused_d = self.params.fuser.fuse(&self.d_cands);

        self.v_cands.clear();
        if let (true, Some(value), Some(nis)) = (radar_allowed, radar_v_l, nis_radar) {
            self.v_cands.push(Candidate {
                channel: ChannelId::Radar,
                value,
                variance: self.params.radar_speed_sigma.powi(2),
                trust: self.trusts[ChannelId::Radar.index()].value(),
                nis,
            });
        }
        if let (Some(value), Some(nis)) = (aux.v2v_leader_speed, nis_v2v) {
            self.v_cands.push(Candidate {
                channel: ChannelId::V2v,
                value,
                variance: self.params.v2v_sigma.powi(2),
                trust: self.trusts[ChannelId::V2v.index()].value(),
                nis,
            });
        }
        let fused_v = self.params.fuser.fuse(&self.v_cands);

        // Advance the fused trend fit: train on a measurement-backed fused
        // speed, free-run otherwise (frozen weights, clock advances).
        let v_leader = match fused_v {
            Some(f) => {
                self.predictor.observe(f.value);
                Some(f.value.max(0.0))
            }
            None => {
                let _ = self.predictor.predict_next();
                v_pred_fwd
            }
        };

        // Fused distance, dead-reckoned when every channel is gated out.
        let d_est = match fused_d {
            Some(f) => {
                self.free_run = 0;
                Some(f.value)
            }
            None => {
                self.free_run += 1;
                d_pred
            }
        };

        // When even the fused estimate is cold, the embedded CRA pipeline's
        // output is the floor — the paper's machinery is never removed.
        // Likewise when two or more channels alarm at once the fusion
        // itself is suspect and the CRA pipeline governs.
        let mut alarmed = [false; 3];
        for e in &alarms {
            alarmed[e.channel.index()] = true;
        }
        let fusion_compromised = alarmed.iter().filter(|a| **a).count() >= 2;

        let (distance, relative_speed, control_distance) = match d_est {
            Some(d) if !fusion_compromised => {
                self.last_distance = Some(d);
                let rel = v_leader.map_or(cra_out.relative_speed.value(), |v| v - v_f);
                let margin = if fused_d.is_some() {
                    0.0
                } else {
                    let n = self.free_run as f64;
                    (MARGIN_QUAD * n * n).min(MARGIN_CAP)
                };
                (
                    Some(Meters(d)),
                    MetersPerSecond(rel),
                    Some(Meters(d - margin)),
                )
            }
            _ => {
                // Keep the fused anchor warm from the CRA estimate so the
                // fusion can re-engage without a cold restart.
                if let Some(d) = cra_out.distance {
                    self.last_distance = Some(d.value());
                }
                (
                    cra_out.distance,
                    cra_out.relative_speed,
                    cra_out.control_distance,
                )
            }
        };

        FusedOutput {
            cra: cra_out,
            distance,
            relative_speed,
            control_distance,
            fused: fused_d,
            alarms,
            policy_state: self.policy.state(),
            trust: [
                self.trusts[0].value(),
                self.trusts[1].value(),
                self.trusts[2].value(),
            ],
        }
    }

    /// Exports all mutable state as plain old data.
    pub fn snapshot(&self) -> FusedSnapshot {
        FusedSnapshot {
            cra: self.cra.snapshot(),
            predictor: self.predictor.save_state(),
            last_distance: self.last_distance,
            free_run: self.free_run,
            monitors: self.monitors.iter().map(|m| m.save_state()).collect(),
            trusts: self.trusts.iter().map(|t| t.value()).collect(),
            policy: self.policy.save_state(),
            ids_detection: self.ids_detection.map(|s| s.0),
        }
    }

    /// Restores state saved by [`Self::snapshot`] onto a pipeline of the
    /// same configuration. A default-bodied snapshot (the v1 shape from
    /// [`FusedSnapshot::from_v1`]) resets every fusion field — forward
    /// compatibility with pre-fusion peers.
    ///
    /// # Errors
    ///
    /// Propagates predictor state-shape errors; the fused state may be
    /// partially reset on error but the CRA state is restored first and
    /// atomically.
    pub fn restore(&mut self, snap: &FusedSnapshot) -> Result<(), EstimError> {
        self.cra.restore(&snap.cra)?;
        if snap.predictor == PredictorState::default() {
            self.predictor.reset();
        } else {
            self.predictor.load_state(&snap.predictor)?;
        }
        self.last_distance = snap.last_distance;
        self.free_run = snap.free_run;
        for (i, m) in self.monitors.iter_mut().enumerate() {
            match snap.monitors.get(i) {
                Some(state) => m.restore_state(state),
                None => m.reset(),
            }
        }
        for (i, t) in self.trusts.iter_mut().enumerate() {
            *t = match snap.trusts.get(i) {
                Some(&v) => TrustScore::restore(v),
                None => TrustScore::new(),
            };
        }
        self.policy.restore_state(&snap.policy);
        self.ids_detection = snap.ids_detection.map(Step);
        Ok(())
    }

    /// Restores a v1 (pre-fusion) [`PipelineSnapshot`]: the embedded CRA
    /// pipeline picks up where the peer left off, fusion state at defaults.
    ///
    /// # Errors
    ///
    /// Propagates predictor state-shape errors from the CRA restore.
    pub fn restore_v1(&mut self, snap: &PipelineSnapshot) -> Result<(), EstimError> {
        self.restore(&FusedSnapshot::from_v1(snap.clone()))
    }

    /// Clears all mutable state (configuration retained).
    pub fn reset(&mut self) {
        self.cra.reset();
        self.predictor.reset();
        self.last_distance = None;
        self.free_run = 0;
        for m in &mut self.monitors {
            m.reset();
        }
        self.trusts = [TrustScore::new(); 3];
        self.policy.reset();
        self.ids_detection = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_cra::challenge::ChallengeSchedule;
    use argus_cra::detector::CraDetector;
    use argus_radar::fmcw::BeatPair;
    use argus_radar::receiver::RadarMeasurement;
    use argus_sim::units::{Hertz, Watts};

    const V_OWN: MetersPerSecond = MetersPerSecond(20.0);

    fn detector() -> CraDetector {
        CraDetector::new(ChallengeSchedule::paper(), Watts(1e-14))
    }

    fn fused(mode: FusionMode) -> FusedPipeline {
        FusedPipeline::paper(detector(), mode).unwrap()
    }

    fn clean_obs(d: f64, dv: f64) -> RadarObservation {
        RadarObservation {
            measurement: Some(RadarMeasurement {
                distance: Meters(d),
                range_rate: MetersPerSecond(dv),
                beats: BeatPair {
                    up: Hertz(0.0),
                    down: Hertz(0.0),
                },
                snr: 1000.0,
            }),
            received_power: Watts(1e-12),
            jammed: false,
        }
    }

    fn silent_obs() -> RadarObservation {
        RadarObservation {
            measurement: None,
            received_power: Watts(1e-16),
            jammed: false,
        }
    }

    fn hot_obs() -> RadarObservation {
        RadarObservation {
            measurement: Some(RadarMeasurement {
                distance: Meters(400.0),
                range_rate: MetersPerSecond(120.0),
                beats: BeatPair {
                    up: Hertz(0.0),
                    down: Hertz(0.0),
                },
                snr: 0.001,
            }),
            received_power: Watts(1e-9),
            jammed: true,
        }
    }

    fn aux(d: f64, v_l: f64) -> AuxObservation {
        AuxObservation {
            camera_range: Some(d),
            v2v_leader_speed: Some(v_l),
        }
    }

    /// Truth model: constant gap 100 m, leader at the ego speed.
    fn feed_clean(p: &mut FusedPipeline, k: u64) -> FusedOutput {
        let obs = if ChallengeSchedule::paper().is_challenge(Step(k)) {
            silent_obs()
        } else {
            clean_obs(100.0, 0.0)
        };
        p.process(Step(k), &obs, &aux(100.0, V_OWN.value()), V_OWN)
    }

    #[test]
    fn benign_fusion_tracks_truth_without_alarms() {
        for mode in [FusionMode::Fused, FusionMode::FusedIds] {
            let mut p = fused(mode);
            for k in 0..120 {
                let out = feed_clean(&mut p, k);
                assert!(out.alarms.is_empty(), "{mode:?} false alarm at k={k}");
                assert_eq!(out.policy_state, PolicyState::Nominal, "{mode:?} k={k}");
                if k > 10 {
                    let d = out.distance.unwrap().value();
                    assert!((d - 100.0).abs() < 1.0, "{mode:?} k={k}: fused {d}");
                    assert!(out.fused.unwrap().channels_used() >= 1);
                }
            }
            assert_eq!(p.ids_detection(), None);
            assert_eq!(p.safe_mode_steps(), 0);
            for c in ChannelId::ALL {
                assert!(p.trust(c) > 0.99, "{mode:?}: trust {c:?} degraded");
            }
        }
    }

    #[test]
    fn fused_estimate_outweighs_radar_with_camera() {
        let mut p = fused(FusionMode::Fused);
        for k in 0..30 {
            feed_clean(&mut p, k);
        }
        // Radar says 100.8, camera says 99.0: the combination must sit
        // between, nearer the radar (16x weight at σ 0.5 vs 1.0 against
        // a fresh camera... trust equal, so w_r/w_c = 4).
        let out = p.process(
            Step(30),
            &clean_obs(100.8, 0.0),
            &aux(99.0, V_OWN.value()),
            V_OWN,
        );
        let d = out.distance.unwrap().value();
        assert!(d < 100.8 && d > 99.0, "fused {d} not between the channels");
        assert!((d - 100.44).abs() < 0.2, "fused {d} should lean radar");
    }

    #[test]
    fn camera_spoof_is_gated_demoted_and_alarmed() {
        let mut p = fused(FusionMode::FusedIds);
        for k in 0..60 {
            feed_clean(&mut p, k);
        }
        assert!(p.trust(ChannelId::Camera) > 0.99);
        let mut alarmed = false;
        for k in 60..80 {
            let obs = if ChallengeSchedule::paper().is_challenge(Step(k)) {
                silent_obs()
            } else {
                clean_obs(100.0, 0.0)
            };
            // +9 m camera spoof; radar and V2V stay honest.
            let out = p.process(Step(k), &obs, &aux(109.0, V_OWN.value()), V_OWN);
            let d = out.distance.unwrap().value();
            assert!(
                (d - 100.0).abs() < 1.5,
                "spoofed camera leaked into the estimate at k={k}: {d}"
            );
            if !out.alarms.is_empty() {
                assert!(out.alarms.iter().all(|e| e.channel == ChannelId::Camera));
                alarmed = true;
            }
        }
        assert!(alarmed, "camera spoof never alarmed");
        assert!(p.trust(ChannelId::Camera) < 0.2, "camera not demoted");
        assert_eq!(p.policy_state(), PolicyState::Demoted);
        assert!(p.ids_detection().is_some());
        // Clean aux again: cooldown then nominal, trust recovers.
        for k in 80..200 {
            feed_clean(&mut p, k);
        }
        assert_eq!(p.policy_state(), PolicyState::Nominal);
        assert!(p.trust(ChannelId::Camera) > 0.9, "camera never re-admitted");
    }

    #[test]
    fn radar_spoof_between_challenges_triggers_safe_mode() {
        let mut p = fused(FusionMode::FusedIds);
        for k in 0..51 {
            feed_clean(&mut p, k);
        }
        // k = 51…: radar spoofed +12 m with ordinary power (the CRA cannot
        // latch until the next challenge) — the IDS must catch it from the
        // innovation alone and exclude the radar.
        let mut safe_mode_seen = false;
        for k in 51..70 {
            let out = p.process(
                Step(k),
                &clean_obs(112.0, 0.0),
                &aux(100.0, V_OWN.value()),
                V_OWN,
            );
            assert!(!out.cra.verdict.under_attack(), "no challenge in 51..70");
            let d = out.distance.unwrap().value();
            assert!(
                (d - 100.0).abs() < 1.5,
                "spoofed radar leaked at k={k}: {d}"
            );
            if out.policy_state == PolicyState::SafeMode {
                safe_mode_seen = true;
            }
        }
        assert!(safe_mode_seen, "radar spoof never escalated to safe mode");
        assert!(p.safe_mode_steps() > 0);
        assert!(p.ids_detection().is_some());
        let det = p.ids_detection().unwrap().0;
        assert!(det <= 53, "IDS too slow: first alarm at {det}");
    }

    #[test]
    fn fused_mode_gates_but_never_alarms() {
        let mut p = fused(FusionMode::Fused);
        for k in 0..40 {
            feed_clean(&mut p, k);
        }
        for k in 40..55 {
            let out = p.process(
                Step(k),
                &clean_obs(115.0, 0.0),
                &aux(100.0, V_OWN.value()),
                V_OWN,
            );
            assert!(out.alarms.is_empty(), "Fused mode must not alarm");
            assert_eq!(out.policy_state, PolicyState::Nominal);
            let d = out.distance.unwrap().value();
            assert!((d - 100.0).abs() < 1.5, "gate failed at k={k}: {d}");
        }
        assert_eq!(p.ids_detection(), None);
        assert_eq!(p.safe_mode_steps(), 0);
    }

    #[test]
    fn dos_window_served_from_aux_channels() {
        let mut p = fused(FusionMode::FusedIds);
        for k in 0..182 {
            feed_clean(&mut p, k);
        }
        // Jamming from the k = 182 challenge: the CRA latches, the radar
        // vanishes from the fusion, and the honest camera/V2V carry the
        // estimate at camera-grade accuracy.
        for k in 182..240 {
            let out = p.process(Step(k), &hot_obs(), &aux(100.0, V_OWN.value()), V_OWN);
            assert!(out.cra.verdict.under_attack(), "k={k}");
            let d = out.distance.unwrap().value();
            assert!((d - 100.0).abs() < 1.5, "k={k}: fused {d}");
            if let Some(f) = out.fused {
                assert!(!f.uses(ChannelId::Radar), "latched radar fused at k={k}");
            }
        }
        assert!(p.safe_mode_steps() >= 50);
    }

    #[test]
    fn aux_dropout_falls_back_to_cra_output() {
        let mut p = fused(FusionMode::FusedIds);
        let blind = AuxObservation::default();
        for k in 0..60 {
            let obs = if ChallengeSchedule::paper().is_challenge(Step(k)) {
                silent_obs()
            } else {
                clean_obs(100.0, 0.0)
            };
            let out = p.process(Step(k), &obs, &blind, V_OWN);
            // With no aux channels the fused pipeline degrades to exactly
            // the radar channel (plus dead reckoning at challenges).
            if k > 10 {
                let d = out.distance.unwrap().value();
                assert!((d - 100.0).abs() < 1.0, "k={k}: {d}");
            }
        }
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let mut p = fused(FusionMode::FusedIds);
        for k in 0..70 {
            feed_clean(&mut p, k);
        }
        // Disturb: camera spoof so trust/monitor/policy state is non-trivial.
        for k in 70..78 {
            let _ = p.process(
                Step(k),
                &clean_obs(100.0, 0.0),
                &aux(110.0, V_OWN.value()),
                V_OWN,
            );
        }
        let snap = p.snapshot();
        let mut q = fused(FusionMode::FusedIds);
        q.restore(&snap).unwrap();
        assert_eq!(p.snapshot(), q.snapshot());
        for k in 78..160 {
            let a = feed_clean(&mut p, k);
            let b = feed_clean(&mut q, k);
            assert_eq!(a, b, "diverged at k={k}");
        }
        assert_eq!(p.snapshot(), q.snapshot());
    }

    #[test]
    fn v1_snapshot_restores_with_fusion_defaults() {
        // A CRA-only pipeline ran for a while; its snapshot must drop into
        // a fused session with fusion state at defaults.
        let mut cra = SecurePipeline::paper(detector()).unwrap();
        for k in 0..60u64 {
            let obs = if ChallengeSchedule::paper().is_challenge(Step(k)) {
                silent_obs()
            } else {
                clean_obs(100.0, 0.0)
            };
            let _ = cra.process(Step(k), &obs, V_OWN);
        }
        let v1 = cra.snapshot();
        let mut p = fused(FusionMode::FusedIds);
        // Dirty the fused state first to prove the restore clears it.
        for k in 0..30 {
            let _ = p.process(
                Step(k),
                &clean_obs(100.0, 0.0),
                &aux(112.0, V_OWN.value()),
                V_OWN,
            );
        }
        p.restore_v1(&v1).unwrap();
        let snap = p.snapshot();
        assert_eq!(snap.cra, v1);
        // Fused predictor back to its freshly-constructed state.
        assert_eq!(
            snap.predictor,
            TrendPredictor::paper().unwrap().save_state()
        );
        assert_eq!(snap.trusts, vec![1.0, 1.0, 1.0]);
        assert_eq!(snap.policy, PolicySnapshot::default());
        assert_eq!(snap.ids_detection, None);
        assert!(snap.monitors.iter().all(|m| *m == MonitorState::default()));
        // And the embedded CRA stream continues exactly.
        let mut reference = SecurePipeline::paper(detector()).unwrap();
        reference.restore(&v1).unwrap();
        for k in 60..100u64 {
            let obs = clean_obs(100.0, 0.0);
            let a = p.process(Step(k), &obs, &AuxObservation::default(), V_OWN);
            let b = reference.process(Step(k), &obs, V_OWN);
            assert_eq!(a.cra, b, "embedded CRA diverged at k={k}");
        }
    }

    #[test]
    fn reset_matches_fresh() {
        let mut p = fused(FusionMode::FusedIds);
        for k in 0..90 {
            let _ = p.process(Step(k), &hot_obs(), &aux(90.0, 15.0), V_OWN);
        }
        p.reset();
        let fresh = fused(FusionMode::FusedIds);
        assert_eq!(p.snapshot(), fresh.snapshot());
    }
}
