//! Campaign parameter axes and their expansion into trial specs.

use argus_attack::registry::{ScenarioError, ScenarioParams, ScenarioRegistry};
use argus_attack::{Adversary, AttackKind, AttackWindow, DelaySpoofer, Jammer};
use argus_sim::time::Step;
use argus_sim::units::{Meters, Watts};

use crate::scenario::ScenarioConfig;

/// One point on the attack axis.
///
/// The label of every variant is stable text — it seeds the trial RNG, so
/// its format is part of the replay contract and must not depend on
/// anything but the axis coordinates themselves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackAxis {
    /// No attack.
    Benign,
    /// DoS jamming from `onset` for `duration` steps, with the jammer
    /// transmit power scaled by `power_scale` relative to the paper's
    /// 100 mW jammer (the jammer-INR axis).
    Dos {
        /// First attacked step.
        onset: u64,
        /// Number of attacked steps.
        duration: u64,
        /// Multiplier on the paper jammer's transmit power.
        power_scale: f64,
    },
    /// Delay injection from `onset` for `duration` steps, spoofing the
    /// range `extra_distance` metres long.
    Delay {
        /// First attacked step.
        onset: u64,
        /// Number of attacked steps.
        duration: u64,
        /// Injected range elongation in metres.
        extra_distance: f64,
    },
    /// A registered adversarial scenario
    /// ([`ScenarioRegistry`](argus_attack::ScenarioRegistry)) at an
    /// explicit window and strength. Build via [`AttackAxis::scenario`] /
    /// [`AttackAxis::scenario_with`] so unknown names surface as typed
    /// errors instead of panics at expansion time.
    Scenario {
        /// Registry name (`&'static str` — resolved once, keeps the axis
        /// `Copy` and the label format stable).
        name: &'static str,
        /// First attacked step.
        onset: u64,
        /// Number of attacked steps.
        duration: u64,
        /// Scenario strength knob (meaning is per scenario; see
        /// `ScenarioInfo::strength_meaning`).
        strength: f64,
    },
}

impl AttackAxis {
    /// The paper's DoS attack: onset 182, through the end of the 301-step
    /// horizon, nominal 100 mW jammer.
    pub fn paper_dos() -> Self {
        AttackAxis::Dos {
            onset: 182,
            duration: 119,
            power_scale: 1.0,
        }
    }

    /// The paper's delay-injection attack: onset 180, +6 m illusion.
    pub fn paper_delay() -> Self {
        AttackAxis::Delay {
            onset: 180,
            duration: 121,
            extra_distance: 6.0,
        }
    }

    /// Axis point for a registered scenario at its default parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownScenario`] for names not in the
    /// registry — callers (e.g. `campaign_sweep --scenario`) surface the
    /// message and exit non-zero instead of silently substituting an attack.
    pub fn scenario(name: &str) -> Result<Self, ScenarioError> {
        let scenario = ScenarioRegistry::builtin().get(name)?;
        let p = scenario.default_params();
        Ok(AttackAxis::Scenario {
            name: scenario.name(),
            onset: p.onset,
            duration: p.duration,
            strength: p.strength,
        })
    }

    /// Axis point for a registered scenario at explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownScenario`] for unregistered names
    /// and [`ScenarioError::InvalidParams`] when the scenario rejects the
    /// parameters (validated eagerly, so expansion later cannot panic).
    pub fn scenario_with(name: &str, params: ScenarioParams) -> Result<Self, ScenarioError> {
        let scenario = ScenarioRegistry::builtin().get(name)?;
        // Validate now: Adversary construction at expansion time must be
        // infallible.
        scenario.build(&params)?;
        Ok(AttackAxis::Scenario {
            name: scenario.name(),
            onset: params.onset,
            duration: params.duration,
            strength: params.strength,
        })
    }

    /// One axis point per registered scenario, each at its defaults — the
    /// `--scenario all` sweep.
    pub fn all_scenarios() -> Vec<Self> {
        ScenarioRegistry::builtin()
            .names()
            .into_iter()
            .map(|n| Self::scenario(n).expect("built-in names resolve"))
            .collect()
    }

    /// Stable text form used in trial labels (and hence trial seeds).
    pub fn label(&self) -> String {
        match self {
            AttackAxis::Benign => "benign".to_string(),
            AttackAxis::Dos {
                onset,
                duration,
                power_scale,
            } => format!("dos@{onset}+{duration}x{power_scale}"),
            AttackAxis::Delay {
                onset,
                duration,
                extra_distance,
            } => format!("delay@{onset}+{duration}+{extra_distance}m"),
            AttackAxis::Scenario {
                name,
                onset,
                duration,
                strength,
            } => format!("{name}@{onset}+{duration}s{strength}"),
        }
    }

    /// Builds the adversary for this axis point.
    ///
    /// # Panics
    ///
    /// Panics if an attacked variant has `duration == 0`.
    pub fn adversary(&self) -> Adversary {
        match *self {
            AttackAxis::Benign => Adversary::benign(),
            AttackAxis::Dos {
                onset,
                duration,
                power_scale,
            } => {
                assert!(duration > 0, "DoS duration must be positive");
                let mut jammer = Jammer::paper();
                jammer.power = Watts(jammer.power.value() * power_scale);
                Adversary::new(AttackKind::Dos(jammer), window(onset, duration))
            }
            AttackAxis::Delay {
                onset,
                duration,
                extra_distance,
            } => {
                assert!(duration > 0, "delay duration must be positive");
                let mut spoofer = DelaySpoofer::paper();
                spoofer.extra_distance = Meters(extra_distance);
                Adversary::new(AttackKind::DelayInjection(spoofer), window(onset, duration))
            }
            AttackAxis::Scenario {
                name,
                onset,
                duration,
                strength,
            } => ScenarioRegistry::builtin()
                .build(
                    name,
                    &ScenarioParams {
                        onset,
                        duration,
                        strength,
                    },
                )
                .expect("scenario axis points are validated at construction"),
        }
    }
}

fn window(onset: u64, duration: u64) -> AttackWindow {
    AttackWindow::new(Step(onset), Step(onset + duration - 1))
}

/// The cartesian grid of swept axes.
///
/// An axis with a single entry is simply held fixed; an empty axis makes
/// the campaign empty.
#[derive(Debug, Clone)]
pub struct AxisGrid {
    /// Attack kind / onset / duration / strength points.
    pub attacks: Vec<AttackAxis>,
    /// Initial inter-vehicle gaps in metres (target-range axis).
    pub initial_gaps_m: Vec<f64>,
    /// Initial common speeds in mph (target-velocity axis).
    pub initial_speeds_mph: Vec<f64>,
    /// Measurement-noise seeds (the Monte-Carlo axis).
    pub seeds: Vec<u64>,
}

impl AxisGrid {
    /// The paper's nominal operating point with `n` Monte-Carlo seeds.
    pub fn paper(n_seeds: u64) -> Self {
        Self {
            attacks: vec![AttackAxis::paper_dos()],
            initial_gaps_m: vec![100.0],
            initial_speeds_mph: vec![65.0],
            seeds: (1..=n_seeds).collect(),
        }
    }

    /// Number of trials this grid expands to.
    pub fn len(&self) -> usize {
        self.attacks.len()
            * self.initial_gaps_m.len()
            * self.initial_speeds_mph.len()
            * self.seeds.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One fully-specified trial: a scenario configuration plus the derived
/// RNG seed and the stable label it came from.
#[derive(Debug, Clone)]
pub struct TrialSpec {
    /// Position in the expansion order (stable across runs).
    pub index: usize,
    /// Stable axis-coordinate label (seeds the trial RNG).
    pub label: String,
    /// Scenario seed derived from the master seed and the label.
    pub seed: u64,
    /// The concrete scenario configuration.
    pub config: ScenarioConfig,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_axes_match_paper_windows() {
        let dos = AttackAxis::paper_dos().adversary();
        assert_eq!(dos.window().start(), Step(182));
        assert_eq!(dos.window().end(), Step(300));
        let delay = AttackAxis::paper_delay().adversary();
        assert_eq!(delay.window().start(), Step(180));
        assert_eq!(delay.window().end(), Step(300));
    }

    #[test]
    fn labels_are_distinct_and_stable() {
        let points = [
            AttackAxis::Benign,
            AttackAxis::paper_dos(),
            AttackAxis::paper_delay(),
            AttackAxis::Dos {
                onset: 182,
                duration: 119,
                power_scale: 0.5,
            },
            AttackAxis::Dos {
                onset: 150,
                duration: 119,
                power_scale: 1.0,
            },
        ];
        let labels: Vec<String> = points.iter().map(AttackAxis::label).collect();
        assert_eq!(labels[1], "dos@182+119x1");
        assert_eq!(labels[2], "delay@180+121+6m");
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn power_scale_scales_the_jammer() {
        let weak = AttackAxis::Dos {
            onset: 182,
            duration: 10,
            power_scale: 0.25,
        }
        .adversary();
        match weak.kind() {
            AttackKind::Dos(j) => {
                assert!((j.power.value() - 0.25 * Jammer::paper().power.value()).abs() < 1e-12)
            }
            _ => panic!("expected DoS"),
        }
    }

    #[test]
    fn scenario_axis_resolves_builds_and_labels() {
        let axis = AttackAxis::scenario("phantom_target").unwrap();
        assert_eq!(axis.label(), "phantom_target@150+151s10");
        let adv = axis.adversary();
        assert!(matches!(
            adv.kind(),
            argus_attack::AttackKind::PhantomTarget(_)
        ));
        assert_eq!(adv.window().start(), Step(150));
    }

    #[test]
    fn unknown_scenario_axis_is_a_typed_error() {
        let err = AttackAxis::scenario("split_brain").unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownScenario { .. }));
        assert!(err.to_string().contains("split_brain"));
    }

    #[test]
    fn scenario_with_validates_params_eagerly() {
        let err = AttackAxis::scenario_with(
            "dos",
            ScenarioParams {
                onset: 182,
                duration: 0,
                strength: 1.0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidParams { .. }));
    }

    #[test]
    fn all_scenarios_covers_the_registry_with_distinct_labels() {
        let axes = AttackAxis::all_scenarios();
        assert_eq!(axes.len(), 6);
        let mut labels: Vec<String> = axes.iter().map(AttackAxis::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 6);
        for axis in &axes {
            let _ = axis.adversary(); // must not panic
        }
    }

    #[test]
    fn grid_len_is_product() {
        let g = AxisGrid {
            attacks: vec![AttackAxis::Benign, AttackAxis::paper_dos()],
            initial_gaps_m: vec![80.0, 100.0, 120.0],
            initial_speeds_mph: vec![55.0, 65.0],
            seeds: vec![1, 2, 3, 4, 5],
        };
        assert_eq!(g.len(), 2 * 3 * 2 * 5);
        assert!(!g.is_empty());
        assert!(AxisGrid { seeds: vec![], ..g }.is_empty());
    }
}
