//! Campaign execution: trials on the pool, aggregation in trial order.

use std::time::Duration;

use crate::metrics::{CampaignStats, RunMetrics};
use crate::scenario::Scenario;

use super::pool::{map_indexed, resolve_threads};
use super::Campaign;

/// Outcome of one trial, stripped to its deterministic metrics plus the
/// (non-canonical) wall-clock cost of running it.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Position in the expansion order.
    pub index: usize,
    /// Stable axis-coordinate label.
    pub label: String,
    /// Derived scenario seed.
    pub seed: u64,
    /// Run metrics.
    pub metrics: RunMetrics,
    /// Wall-clock time this trial took. Excluded from canonical traces.
    pub duration: Duration,
}

/// Result of running a whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// Campaign name.
    pub name: String,
    /// Master seed the trial seeds derived from.
    pub master_seed: u64,
    /// Per-trial results in expansion order, independent of schedule.
    pub trials: Vec<TrialResult>,
    /// Aggregate statistics, folded in trial order.
    pub stats: CampaignStats,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Summed per-trial wall-clock time (serial-equivalent cost).
    pub busy: Duration,
}

impl CampaignRun {
    /// Parallel speedup actually achieved (busy over wall).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.busy.as_secs_f64() / wall
        } else {
            1.0
        }
    }

    /// Aggregates per-group statistics, keyed by `key`, folding trials in
    /// expansion order (groups appear in first-seen order).
    pub fn group_stats<K, F>(&self, key: F) -> Vec<(K, CampaignStats)>
    where
        K: PartialEq,
        F: Fn(&TrialResult) -> K,
    {
        let mut groups: Vec<(K, CampaignStats)> = Vec::new();
        for t in &self.trials {
            let k = key(t);
            match groups.iter_mut().find(|(g, _)| *g == k) {
                Some((_, stats)) => stats.record(&t.metrics),
                None => {
                    let mut stats = CampaignStats::new();
                    stats.record(&t.metrics);
                    groups.push((k, stats));
                }
            }
        }
        groups
    }

    /// The attack component of a trial label (text before the first `/`).
    pub fn attack_of(t: &TrialResult) -> &str {
        t.label.split('/').next().unwrap_or(&t.label)
    }
}

impl Campaign {
    /// Runs every trial of the campaign on `threads` workers (`None`
    /// resolves via `ARGUS_THREADS` / `RAYON_NUM_THREADS` / the machine).
    ///
    /// The returned trials, statistics and canonical traces are
    /// bit-identical for any thread count; only the timing fields differ.
    pub fn run(&self, threads: Option<usize>) -> CampaignRun {
        let specs = self.trials();
        let threads = resolve_threads(threads);
        let (metrics, timing) = map_indexed(specs.len(), threads, |i| {
            let spec = &specs[i];
            Scenario::new(spec.config.clone()).run(spec.seed).metrics
        });

        let mut stats = CampaignStats::new();
        let mut trials = Vec::with_capacity(specs.len());
        for (spec, m) in specs.into_iter().zip(metrics) {
            stats.record(&m);
            trials.push(TrialResult {
                duration: timing.per_task[spec.index],
                index: spec.index,
                label: spec.label,
                seed: spec.seed,
                metrics: m,
            });
        }

        CampaignRun {
            name: self.name.clone(),
            master_seed: self.master_seed,
            trials,
            stats,
            threads: timing.threads,
            wall: timing.wall,
            busy: timing.busy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{AttackAxis, AxisGrid};
    use argus_vehicle::leader::LeaderProfile;

    fn small_campaign() -> Campaign {
        Campaign::new(
            "unit",
            LeaderProfile::paper_constant_decel(),
            AxisGrid {
                attacks: vec![AttackAxis::paper_dos()],
                initial_gaps_m: vec![100.0],
                initial_speeds_mph: vec![65.0],
                seeds: vec![1, 2, 3, 4],
            },
        )
    }

    #[test]
    fn run_aggregates_every_trial() {
        let run = small_campaign().run(Some(2));
        assert_eq!(run.trials.len(), 4);
        assert_eq!(run.stats.trials, 4);
        assert_eq!(run.threads, 2);
        for (i, t) in run.trials.iter().enumerate() {
            assert_eq!(t.index, i);
            assert!(t.metrics.detection_step.is_some(), "{}", t.label);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let serial = small_campaign().run(Some(1));
        let parallel = small_campaign().run(Some(4));
        assert_eq!(serial.trials.len(), parallel.trials.len());
        for (a, b) in serial.trials.iter().zip(&parallel.trials) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.metrics.min_gap.to_bits(), b.metrics.min_gap.to_bits());
            assert_eq!(a.metrics.detection_step, b.metrics.detection_step);
        }
        assert_eq!(serial.stats.min_gaps(), parallel.stats.min_gaps());
    }
}
