//! Parallel Monte-Carlo campaign runner with deterministic replay.
//!
//! A [`Campaign`] is a scenario template plus a grid of parameter axes
//! (attack kind / onset / duration, jammer power, initial gap and speed,
//! noise seeds). It expands into a flat list of [`TrialSpec`]s — the
//! cartesian product of the axes — and executes them on a work-stealing
//! thread pool ([`pool`]).
//!
//! # Determinism guarantee
//!
//! Campaign results are **bit-identical regardless of thread count or
//! schedule**:
//!
//! * every trial derives its RNG seed from the campaign master seed via
//!   [`SimRng::substream`] keyed by a *stable trial label* (the axis
//!   coordinates spelled out as text), never from execution order, thread
//!   id, or wall clock;
//! * trial results are stored by trial index and aggregated in index order
//!   after the pool drains, so floating-point accumulation order is fixed;
//! * the canonical trace encoding ([`trace`]) excludes all wall-clock
//!   measurements (they are reported separately for benchmarking).
//!
//! Re-running any single trial label alone reproduces its in-campaign
//! result exactly — that is what makes failures replayable.
//!
//! [`SimRng::substream`]: argus_sim::rng::SimRng::substream

pub mod axes;
pub mod pool;
pub mod runner;
pub mod stream;
pub mod trace;

pub use axes::{AttackAxis, AxisGrid, TrialSpec};
pub use pool::{fold_indexed, map_indexed, resolve_threads, FoldTiming, PoolTiming};
pub use runner::{CampaignRun, TrialResult};
pub use stream::{stream_to_json, CampaignStream, STREAM_FORMAT};
pub use trace::{
    campaign_to_csv, campaign_to_json, compare_scenario_json, scenario_to_json, TraceDiff,
};

use argus_fusion::FusionMode;
use argus_sim::rng::SimRng;
use argus_vehicle::leader::LeaderProfile;

use crate::pipeline::PredictorKind;
use crate::scenario::ScenarioConfig;

/// A Monte-Carlo campaign: one scenario template swept over a grid of
/// parameter axes.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name (reported in traces; not part of trial seeds).
    pub name: String,
    /// Leader speed profile shared by all trials.
    pub profile: LeaderProfile,
    /// Whether the CRA + RLS defense is enabled.
    pub defended: bool,
    /// Attack-window estimator used when defended.
    pub predictor: PredictorKind,
    /// How much defense machinery runs when defended: the paper's
    /// single-radar pipeline, or the attack-aware fusion stack. Not part
    /// of the trial labels, so the same trial label compares the same
    /// attack realization across fusion modes.
    pub fusion: FusionMode,
    /// Master seed all trial seeds derive from.
    pub master_seed: u64,
    /// The swept axes.
    pub grid: AxisGrid,
}

impl Campaign {
    /// A campaign over the paper's case study with the given name and
    /// axis grid (defense on, RLS-trend estimator, master seed 7).
    pub fn new(name: impl Into<String>, profile: LeaderProfile, grid: AxisGrid) -> Self {
        Self {
            name: name.into(),
            profile,
            defended: true,
            predictor: PredictorKind::RlsTrend,
            fusion: FusionMode::CraOnly,
            master_seed: 7,
            grid,
        }
    }

    /// Same campaign with the defense toggled.
    pub fn with_defense(mut self, defended: bool) -> Self {
        self.defended = defended;
        self
    }

    /// Same campaign with a different attack-window estimator.
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Same campaign with a different fusion mode.
    pub fn with_fusion(mut self, fusion: FusionMode) -> Self {
        self.fusion = fusion;
        self
    }

    /// Same campaign with a different master seed.
    pub fn with_master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Number of trials the grid expands to.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// `true` when the grid has an empty axis.
    pub fn is_empty(&self) -> bool {
        self.grid.len() == 0
    }

    /// Expands the grid into the flat trial list.
    ///
    /// Expansion order is the nested iteration of the axes in declaration
    /// order (attack, gap, speed, seed) and is part of the trace format:
    /// trial indices are stable across runs.
    pub fn trials(&self) -> Vec<TrialSpec> {
        let root = SimRng::seed_from(self.master_seed);
        let mut specs = Vec::with_capacity(self.grid.len());
        for attack in &self.grid.attacks {
            for &gap in &self.grid.initial_gaps_m {
                for &speed_mph in &self.grid.initial_speeds_mph {
                    for &noise_seed in &self.grid.seeds {
                        let label = format!(
                            "{}/gap{}/v{}/seed{}",
                            attack.label(),
                            gap,
                            speed_mph,
                            noise_seed
                        );
                        // The trial's scenario seed depends only on the
                        // master seed and the axis coordinates — never on
                        // the trial's position in the schedule.
                        let seed = root.substream(&label).seed();
                        let config = self.scenario_config(*attack, gap, speed_mph);
                        specs.push(TrialSpec {
                            index: specs.len(),
                            label,
                            seed,
                            config,
                        });
                    }
                }
            }
        }
        specs
    }

    fn scenario_config(&self, attack: AttackAxis, gap_m: f64, speed_mph: f64) -> ScenarioConfig {
        use argus_sim::units::{Meters, MetersPerSecond};
        let mut cfg =
            ScenarioConfig::paper(self.profile.clone(), attack.adversary(), self.defended)
                .with_predictor(self.predictor)
                .with_fusion(self.fusion);
        cfg.initial_gap = Meters(gap_m);
        cfg.initial_speed = MetersPerSecond::from_mph(speed_mph);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> AxisGrid {
        AxisGrid {
            attacks: vec![AttackAxis::paper_dos(), AttackAxis::Benign],
            initial_gaps_m: vec![100.0, 120.0],
            initial_speeds_mph: vec![65.0],
            seeds: vec![1, 2, 3],
        }
    }

    #[test]
    fn expansion_is_cartesian_and_ordered() {
        let c = Campaign::new("t", LeaderProfile::paper_constant_decel(), grid());
        let specs = c.trials();
        assert_eq!(specs.len(), 2 * 2 * 3); // attacks x gaps x seeds (one speed)
        assert_eq!(specs.len(), c.len());
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.index, i);
        }
        // First block: the first attack point, first gap, seeds in order.
        assert!(specs[0].label.starts_with("dos@182+119x1/gap100/v65/seed1"));
        assert!(specs[3].label.contains("gap120"));
    }

    #[test]
    fn trial_seeds_are_label_stable() {
        let c = Campaign::new("t", LeaderProfile::paper_constant_decel(), grid());
        let a = c.trials();
        let b = c.trials();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.label, y.label);
        }
        // Distinct labels get distinct seeds (overwhelmingly likely).
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len());
    }

    #[test]
    fn master_seed_changes_all_trials() {
        let c1 = Campaign::new("t", LeaderProfile::paper_constant_decel(), grid());
        let c2 = c1.clone().with_master_seed(8);
        for (x, y) in c1.trials().iter().zip(&c2.trials()) {
            assert_eq!(x.label, y.label);
            assert_ne!(x.seed, y.seed);
        }
    }
}
