//! Canonical trace encoding: campaign summaries and per-scenario golden
//! traces, in the dependency-free JSON of [`argus_sim::json`].
//!
//! The canonical encodings deliberately exclude every wall-clock quantity
//! (`estimation_time_ns`, per-trial durations, thread counts): two runs of
//! the same campaign must produce byte-identical canonical output on any
//! machine with any scheduling. Timing is reported separately.

use argus_sim::json::{parse, Json, JsonError};

use crate::metrics::RunMetrics;
use crate::scenario::ScenarioResult;

use super::runner::CampaignRun;

/// Format tag of campaign documents.
pub const CAMPAIGN_FORMAT: &str = "argus-campaign-v1";
/// Format tag of per-scenario golden traces.
pub const GOLDEN_FORMAT: &str = "argus-golden-v1";

/// Canonical JSON document for a campaign run (deterministic fields only).
pub fn campaign_to_json(run: &CampaignRun) -> Json {
    let trials: Vec<Json> = run.trials.iter().map(trial_to_json).collect();
    let s = &run.stats;
    let summary = Json::Obj(vec![
        ("trials".into(), Json::num(s.trials as f64)),
        ("collisions".into(), Json::num(s.collisions as f64)),
        ("detected".into(), Json::num(s.detected as f64)),
        (
            "false_positives".into(),
            Json::num(s.false_positives as f64),
        ),
        (
            "false_negatives".into(),
            Json::num(s.false_negatives as f64),
        ),
        ("crash_rate".into(), Json::num(s.crash_rate())),
        ("detection_rate".into(), Json::num(s.detection_rate())),
        ("min_gap_p5".into(), opt_num(s.min_gap_percentile(5.0))),
        ("min_gap_p50".into(), opt_num(s.min_gap_percentile(50.0))),
        ("latency_p50".into(), opt_num(s.latency_percentile(50.0))),
        ("latency_p95".into(), opt_num(s.latency_percentile(95.0))),
        ("latency_max".into(), opt_num(s.latency_percentile(100.0))),
        ("rmse_p50".into(), opt_num(s.rmse_percentile(50.0))),
        ("rmse_p95".into(), opt_num(s.rmse_percentile(95.0))),
    ]);
    Json::Obj(vec![
        ("format".into(), Json::str(CAMPAIGN_FORMAT)),
        ("name".into(), Json::str(&run.name)),
        // Seeds are full-width u64 values (> 2^53 is common for derived
        // trial seeds), so they are carried as strings to avoid f64 loss.
        ("master_seed".into(), Json::str(run.master_seed.to_string())),
        ("summary".into(), summary),
        ("trials".into(), Json::Arr(trials)),
    ])
}

fn trial_to_json(t: &super::runner::TrialResult) -> Json {
    let mut members = vec![
        ("index".into(), Json::num(t.index as f64)),
        ("label".into(), Json::str(&t.label)),
        ("seed".into(), Json::str(t.seed.to_string())),
    ];
    members.extend(metrics_members(&t.metrics));
    Json::Obj(members)
}

/// The deterministic members of [`RunMetrics`] (everything except the
/// wall-clock `estimation_time_ns`).
fn metrics_members(m: &RunMetrics) -> Vec<(String, Json)> {
    let mut members = vec![
        ("min_gap".into(), Json::num(m.min_gap)),
        ("collided".into(), Json::Bool(m.collided)),
        (
            "detection_step".into(),
            opt_num(m.detection_step.map(|s| s.0 as f64)),
        ),
        (
            "detection_latency".into(),
            opt_num(m.detection_latency.map(|l| l as f64)),
        ),
        (
            "estimation_steps".into(),
            Json::num(m.estimation_steps as f64),
        ),
        (
            "confusion".into(),
            Json::Obj(vec![
                ("tp".into(), Json::num(m.confusion.true_positives as f64)),
                ("fp".into(), Json::num(m.confusion.false_positives as f64)),
                ("tn".into(), Json::num(m.confusion.true_negatives as f64)),
                ("fn".into(), Json::num(m.confusion.false_negatives as f64)),
            ]),
        ),
        ("rmse".into(), opt_num(m.attack_window_distance_rmse)),
    ];
    // Post-onset accuracy and fusion state are emitted only when present,
    // so pre-fusion (CRA-only benign/undefended) documents keep their
    // exact key set and fused documents get a strictly larger one.
    if let Some(p) = m.post_onset_distance_rmse {
        members.push(("post_onset_rmse".into(), Json::num(p)));
    }
    if let Some(f) = &m.fusion {
        members.push((
            "fusion".into(),
            Json::Obj(vec![
                ("mode".into(), Json::str(f.mode.label())),
                (
                    "ids_detection_step".into(),
                    opt_num(f.ids_detection_step.map(|s| s.0 as f64)),
                ),
                (
                    "safe_mode_steps".into(),
                    Json::num(f.safe_mode_steps as f64),
                ),
            ]),
        ));
    }
    members
}

fn opt_num(x: Option<f64>) -> Json {
    match x {
        Some(v) => Json::num(v),
        None => Json::Null,
    }
}

/// CSV encoding of the per-trial rows (same fields as the JSON trials).
pub fn campaign_to_csv(run: &CampaignRun) -> String {
    let mut out = String::from(
        "index,label,seed,min_gap,collided,detection_step,detection_latency,\
         estimation_steps,tp,fp,tn,fn,rmse\n",
    );
    for t in &run.trials {
        let m = &t.metrics;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            t.index,
            t.label,
            t.seed,
            Json::num(m.min_gap).to_canonical(),
            m.collided,
            opt_num(m.detection_step.map(|s| s.0 as f64)).to_canonical(),
            opt_num(m.detection_latency.map(|l| l as f64)).to_canonical(),
            m.estimation_steps,
            m.confusion.true_positives,
            m.confusion.false_positives,
            m.confusion.true_negatives,
            m.confusion.false_negatives,
            opt_num(m.attack_window_distance_rmse).to_canonical(),
        ));
    }
    out
}

/// Golden-trace document for one scenario run: deterministic metrics plus
/// every recorded time series.
pub fn scenario_to_json(id: &str, seed: u64, result: &ScenarioResult) -> Json {
    let traces: Vec<(String, Json)> = result
        .traces
        .iter()
        .map(|t| {
            (
                t.name().to_string(),
                Json::Arr(t.values().iter().map(|&v| Json::num(v)).collect()),
            )
        })
        .collect();
    Json::Obj(vec![
        ("format".into(), Json::str(GOLDEN_FORMAT)),
        ("id".into(), Json::str(id)),
        ("seed".into(), Json::str(seed.to_string())),
        (
            "metrics".into(),
            Json::Obj(metrics_members(&result.metrics)),
        ),
        ("traces".into(), Json::Obj(traces)),
    ])
}

/// Outcome of comparing a current scenario trace against a golden one.
#[derive(Debug, Clone, Default)]
pub struct TraceDiff {
    /// Human-readable mismatch descriptions (empty means a match).
    pub mismatches: Vec<String>,
    /// Largest relative sample error seen across all traces.
    pub worst_error: f64,
}

impl TraceDiff {
    /// `true` when the documents matched within tolerance.
    pub fn matches(&self) -> bool {
        self.mismatches.is_empty()
    }

    fn push(&mut self, msg: String) {
        // Keep the report loud but bounded.
        if self.mismatches.len() < 32 {
            self.mismatches.push(msg);
        }
    }
}

impl std::fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.matches() {
            return write!(f, "traces match (worst error {:.3e})", self.worst_error);
        }
        writeln!(
            f,
            "{} mismatch(es), worst relative error {:.3e}:",
            self.mismatches.len(),
            self.worst_error
        )?;
        for m in &self.mismatches {
            writeln!(f, "  - {m}")?;
        }
        Ok(())
    }
}

/// Compares a golden scenario document against a freshly produced one.
///
/// Numbers match when `|a - b| <= tol * max(1, |a|, |b|)`; everything
/// else (structure, strings, booleans, trace names and lengths) must be
/// exactly equal. Returns a [`TraceDiff`] whose `Display` is the failure
/// report.
///
/// # Errors
///
/// Returns a [`JsonError`] if `golden_text` is not valid JSON.
pub fn compare_scenario_json(
    golden_text: &str,
    current: &Json,
    tol: f64,
) -> Result<TraceDiff, JsonError> {
    let golden = parse(golden_text)?;
    let mut diff = TraceDiff::default();
    compare_values("$", &golden, current, tol, &mut diff);
    Ok(diff)
}

fn compare_values(path: &str, golden: &Json, current: &Json, tol: f64, diff: &mut TraceDiff) {
    match (golden, current) {
        (Json::Num(a), Json::Num(b)) => {
            let scale = 1f64.max(a.abs()).max(b.abs());
            let err = (a - b).abs() / scale;
            if err.is_nan() || err > tol {
                diff.push(format!(
                    "{path}: golden {a} vs current {b} (rel err {err:.3e})"
                ));
            }
            if err.is_finite() {
                diff.worst_error = diff.worst_error.max(err);
            }
        }
        (Json::Arr(a), Json::Arr(b)) => {
            if a.len() != b.len() {
                diff.push(format!(
                    "{path}: length {} in golden vs {} in current",
                    a.len(),
                    b.len()
                ));
                return;
            }
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                compare_values(&format!("{path}[{i}]"), x, y, tol, diff);
            }
        }
        (Json::Obj(a), Json::Obj(b)) => {
            let a_keys: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
            let b_keys: Vec<&str> = b.iter().map(|(k, _)| k.as_str()).collect();
            if a_keys != b_keys {
                diff.push(format!(
                    "{path}: keys differ — golden {a_keys:?} vs current {b_keys:?}"
                ));
                return;
            }
            for ((k, x), (_, y)) in a.iter().zip(b) {
                compare_values(&format!("{path}.{k}"), x, y, tol, diff);
            }
        }
        (a, b) if a == b => {}
        (a, b) => diff.push(format!("{path}: golden {a:?} vs current {b:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{AttackAxis, AxisGrid, Campaign};
    use crate::scenario::{Scenario, ScenarioConfig};
    use argus_attack::Adversary;
    use argus_vehicle::leader::LeaderProfile;

    fn tiny_run() -> CampaignRun {
        Campaign::new(
            "trace-unit",
            LeaderProfile::paper_constant_decel(),
            AxisGrid {
                attacks: vec![AttackAxis::paper_dos()],
                initial_gaps_m: vec![100.0],
                initial_speeds_mph: vec![65.0],
                seeds: vec![1, 2],
            },
        )
        .run(Some(2))
    }

    #[test]
    fn campaign_json_is_canonical_and_parses() {
        let run = tiny_run();
        let doc = campaign_to_json(&run);
        let text = doc.to_canonical();
        assert_eq!(argus_sim::json::parse(&text).unwrap(), doc);
        assert_eq!(doc.get("format").unwrap().as_str(), Some(CAMPAIGN_FORMAT));
        assert_eq!(
            doc.get("summary").unwrap().get("trials").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(doc.get("trials").unwrap().as_arr().unwrap().len(), 2);
        // No wall-clock field anywhere in the canonical document.
        assert!(!text.contains("time_ns") && !text.contains("duration"));
    }

    #[test]
    fn campaign_csv_has_one_row_per_trial() {
        let run = tiny_run();
        let csv = campaign_to_csv(&run);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + run.trials.len());
        assert!(lines[0].starts_with("index,label,seed"));
        assert!(lines[1].contains("dos@182+119x1"));
    }

    #[test]
    fn golden_round_trip_matches_itself() {
        let result = Scenario::new(ScenarioConfig::paper(
            LeaderProfile::paper_constant_decel(),
            Adversary::benign(),
            true,
        ))
        .run(3);
        let doc = scenario_to_json("fig0", 3, &result);
        let text = doc.to_pretty();
        let diff = compare_scenario_json(&text, &doc, 1e-9).unwrap();
        assert!(diff.matches(), "{diff}");
        assert_eq!(diff.worst_error, 0.0);
    }

    #[test]
    fn golden_compare_reports_drift() {
        let result = Scenario::new(ScenarioConfig::paper(
            LeaderProfile::paper_constant_decel(),
            Adversary::benign(),
            true,
        ))
        .run(3);
        let doc = scenario_to_json("fig0", 3, &result);
        let text = doc.to_pretty();

        let mut drifted = result.clone();
        drifted.metrics.min_gap += 0.5;
        let diff =
            compare_scenario_json(&text, &scenario_to_json("fig0", 3, &drifted), 1e-9).unwrap();
        assert!(!diff.matches());
        let report = diff.to_string();
        assert!(report.contains("min_gap"), "{report}");
    }

    #[test]
    fn golden_compare_reports_shape_changes() {
        let golden = r#"{"format":"argus-golden-v1","traces":{"gap":[1,2,3]}}"#;
        let current =
            argus_sim::json::parse(r#"{"format":"argus-golden-v1","traces":{"gap":[1,2]}}"#)
                .unwrap();
        let diff = compare_scenario_json(golden, &current, 1e-9).unwrap();
        assert!(!diff.matches());
        assert!(diff.to_string().contains("length 3"), "{diff}");
    }
}
