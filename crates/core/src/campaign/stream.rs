//! Streaming campaign execution: O(labels) memory at any trial count.
//!
//! [`Campaign::run`] materializes every [`TrialSpec`] up front and buffers
//! every trial's result before aggregating — O(trials) memory twice over,
//! which caps campaigns well short of the ROADMAP's million-trial target.
//! [`Campaign::run_streaming`] removes both buffers:
//!
//! * Trial coordinates are **decomposed from the trial index** by div/mod
//!   over the axis lengths (the same nesting order as [`Campaign::trials`]),
//!   so no spec list exists. Labels — and from them the trial seeds — are
//!   formatted on demand and match the stored-spec path character for
//!   character.
//! * One immutable [`ScenarioPlan`] per campaign **axis point** (attack ×
//!   gap × speed) is built before the pool starts and shared `Arc`-style
//!   across the workers; per-trial cost is RNG derivation + stepping.
//! * Results stream through [`fold_indexed`] into
//!   [`StreamingCampaignStats`] accumulators — overall and per attack label
//!   — in **strict trial-index order**, so the canonical output is
//!   byte-identical at any thread count even though the P² quantile markers
//!   are order-dependent.
//!
//! [`TrialSpec`]: super::axes::TrialSpec

use std::sync::Arc;
use std::time::Duration;

use argus_dsp::scratch::ScratchOptions;
use argus_sim::json::Json;
use argus_sim::rng::SimRng;
use argus_sim::stats::RunningStats;

use crate::metrics::StreamingCampaignStats;
use crate::plan::{ScenarioPlan, TrialScratch};

use super::pool::{fold_indexed, resolve_threads};
use super::Campaign;

/// Format tag of streaming campaign documents.
pub const STREAM_FORMAT: &str = "argus-campaign-stream-v1";

/// Result of a streaming campaign run: aggregates only, no per-trial rows.
#[derive(Debug, Clone)]
pub struct CampaignStream {
    /// Campaign name.
    pub name: String,
    /// Master seed the trial seeds derived from.
    pub master_seed: u64,
    /// Number of trials executed.
    pub trials: u64,
    /// Aggregate statistics over all trials, folded in trial order.
    pub stats: StreamingCampaignStats,
    /// Per-attack-label statistics, in axis declaration order.
    pub groups: Vec<(String, StreamingCampaignStats)>,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Summed per-trial execution time (serial-equivalent cost).
    pub busy: Duration,
    /// High-water mark of the reorder buffer (scheduling skew, not O(n)).
    pub max_pending: usize,
}

impl CampaignStream {
    /// Parallel speedup actually achieved (busy over wall).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.busy.as_secs_f64() / wall
        } else {
            1.0
        }
    }

    /// Trials executed per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.trials as f64 / wall
        } else {
            0.0
        }
    }
}

/// Per-worker state: the DSP/record arena plus the root RNG that trial
/// seeds derive from (substream derivation is read-only on the parent).
struct WorkerState {
    scratch: TrialScratch,
    root: SimRng,
}

impl Campaign {
    /// Runs the campaign with streaming aggregation and bit-exact DSP
    /// options: same per-trial results as [`Campaign::run`], O(labels)
    /// memory instead of O(trials·horizon).
    pub fn run_streaming(&self, threads: Option<usize>) -> CampaignStream {
        self.run_streaming_with_options(threads, ScratchOptions::bit_exact())
    }

    /// Streaming run with explicit DSP options (`fast` for large sweeps).
    ///
    /// Determinism holds for any options: every trial starts from a reset
    /// scratch, so results never depend on which worker ran which trial,
    /// and folding happens in trial-index order on the calling thread.
    pub fn run_streaming_with_options(
        &self,
        threads: Option<usize>,
        options: ScratchOptions,
    ) -> CampaignStream {
        let n = self.grid.len();
        let threads = resolve_threads(threads);
        let n_gaps = self.grid.initial_gaps_m.len();
        let n_speeds = self.grid.initial_speeds_mph.len();
        let n_seeds = self.grid.seeds.len();

        // One plan per axis point, trial-invariant work done exactly once.
        // The Arc'd slice is shared by every worker thread.
        let mut plans = Vec::with_capacity(self.grid.attacks.len() * n_gaps * n_speeds);
        for attack in &self.grid.attacks {
            for &gap in &self.grid.initial_gaps_m {
                for &speed in &self.grid.initial_speeds_mph {
                    plans.push(ScenarioPlan::with_options(
                        self.scenario_config(*attack, gap, speed),
                        options,
                    ));
                }
            }
        }
        let plans: Arc<[ScenarioPlan]> = plans.into();

        let mut stats = StreamingCampaignStats::new();
        let mut groups: Vec<(String, StreamingCampaignStats)> = self
            .grid
            .attacks
            .iter()
            .map(|a| (a.label(), StreamingCampaignStats::new()))
            .collect();

        let grid = &self.grid;
        let master_seed = self.master_seed;
        let plans_ref = Arc::clone(&plans);
        let timing = fold_indexed(
            n,
            threads,
            || WorkerState {
                scratch: TrialScratch::new(options),
                root: SimRng::seed_from(master_seed),
            },
            move |state, i| {
                // Invert the expansion order of `Campaign::trials`:
                // attack → gap → speed → seed, seeds innermost.
                let seed_i = i % n_seeds;
                let rest = i / n_seeds;
                let speed_i = rest % n_speeds;
                let rest = rest / n_speeds;
                let gap_i = rest % n_gaps;
                let attack_i = rest / n_gaps;

                let label = format!(
                    "{}/gap{}/v{}/seed{}",
                    grid.attacks[attack_i].label(),
                    grid.initial_gaps_m[gap_i],
                    grid.initial_speeds_mph[speed_i],
                    grid.seeds[seed_i],
                );
                let seed = state.root.substream(&label).seed();
                let plan = &plans_ref[(attack_i * n_gaps + gap_i) * n_speeds + speed_i];
                let metrics = plan.run_metrics(seed, &mut state.scratch);
                (attack_i, metrics)
            },
            |_i, (attack_i, metrics)| {
                stats.record(&metrics);
                groups[attack_i].1.record(&metrics);
            },
        );

        CampaignStream {
            name: self.name.clone(),
            master_seed: self.master_seed,
            trials: n as u64,
            stats,
            groups,
            threads: timing.threads,
            wall: timing.wall,
            busy: timing.busy,
            max_pending: timing.max_pending,
        }
    }
}

/// Canonical JSON document for a streaming run: summary and per-group
/// aggregates only — the document size is O(labels), independent of the
/// trial count, and excludes every wall-clock quantity.
pub fn stream_to_json(run: &CampaignStream) -> Json {
    let groups: Vec<Json> = run
        .groups
        .iter()
        .map(|(label, s)| {
            let mut members = vec![("label".into(), Json::str(label))];
            members.extend(stats_members(s));
            Json::Obj(members)
        })
        .collect();
    Json::Obj(vec![
        ("format".into(), Json::str(STREAM_FORMAT)),
        ("name".into(), Json::str(&run.name)),
        ("master_seed".into(), Json::str(run.master_seed.to_string())),
        ("summary".into(), Json::Obj(stats_members(&run.stats))),
        ("groups".into(), Json::Arr(groups)),
    ])
}

fn stats_members(s: &StreamingCampaignStats) -> Vec<(String, Json)> {
    vec![
        ("trials".into(), Json::num(s.trials as f64)),
        ("collisions".into(), Json::num(s.collisions as f64)),
        ("detected".into(), Json::num(s.detected as f64)),
        (
            "false_positives".into(),
            Json::num(s.false_positives as f64),
        ),
        (
            "false_negatives".into(),
            Json::num(s.false_negatives as f64),
        ),
        ("crash_rate".into(), Json::num(s.crash_rate())),
        ("detection_rate".into(), Json::num(s.detection_rate())),
        ("min_gap_mean".into(), running_mean(s.min_gap_stats())),
        ("min_gap_p5".into(), opt_num(s.min_gap_p5())),
        ("min_gap_p50".into(), opt_num(s.min_gap_p50())),
        ("latency_p50".into(), opt_num(s.latency_p50())),
        ("latency_p95".into(), opt_num(s.latency_p95())),
        ("latency_max".into(), opt_num(s.latency_max())),
        ("rmse_p50".into(), opt_num(s.rmse_p50())),
        ("rmse_p95".into(), opt_num(s.rmse_p95())),
    ]
}

fn running_mean(s: &RunningStats) -> Json {
    if s.count() == 0 {
        Json::Null
    } else {
        Json::num(s.mean())
    }
}

fn opt_num(x: Option<f64>) -> Json {
    match x {
        Some(v) => Json::num(v),
        None => Json::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{AttackAxis, AxisGrid};
    use argus_vehicle::leader::LeaderProfile;

    fn small_campaign() -> Campaign {
        Campaign::new(
            "stream-unit",
            LeaderProfile::paper_constant_decel(),
            AxisGrid {
                attacks: vec![AttackAxis::paper_dos(), AttackAxis::Benign],
                initial_gaps_m: vec![100.0, 90.0],
                initial_speeds_mph: vec![65.0],
                seeds: vec![1, 2, 3],
            },
        )
    }

    #[test]
    fn streaming_matches_stored_run_counts() {
        let stored = small_campaign().run(Some(2));
        let streamed = small_campaign().run_streaming(Some(2));
        assert_eq!(streamed.trials, stored.trials.len() as u64);
        assert_eq!(streamed.stats.trials, stored.stats.trials);
        assert_eq!(streamed.stats.collisions, stored.stats.collisions);
        assert_eq!(streamed.stats.detected, stored.stats.detected);
        assert_eq!(streamed.stats.false_positives, stored.stats.false_positives);
        assert_eq!(streamed.stats.false_negatives, stored.stats.false_negatives);
        // The Welford mean over min gaps must agree with the stored samples.
        let exact: f64 =
            stored.stats.min_gaps().iter().sum::<f64>() / stored.stats.min_gaps().len() as f64;
        assert!((streamed.stats.min_gap_stats().mean() - exact).abs() < 1e-9);
    }

    #[test]
    fn serial_and_parallel_streams_are_byte_identical() {
        let serial = small_campaign().run_streaming(Some(1));
        let parallel = small_campaign().run_streaming(Some(4));
        assert_eq!(
            stream_to_json(&serial).to_canonical(),
            stream_to_json(&parallel).to_canonical()
        );
    }

    #[test]
    fn groups_follow_attack_declaration_order() {
        let run = small_campaign().run_streaming(Some(2));
        assert_eq!(run.groups.len(), 2);
        assert_eq!(run.groups[0].0, "dos@182+119x1");
        assert_eq!(run.groups[1].0, "benign");
        // 2 gaps × 1 speed × 3 seeds per attack point.
        assert_eq!(run.groups[0].1.trials, 6);
        assert_eq!(run.groups[1].1.trials, 6);
        // The DoS group detects; the benign group must not.
        assert_eq!(run.groups[0].1.detected, 6);
        assert_eq!(run.groups[1].1.detected, 0);
    }

    #[test]
    fn stream_json_is_canonical_and_label_sized() {
        let run = small_campaign().run_streaming(Some(2));
        let doc = stream_to_json(&run);
        let text = doc.to_canonical();
        assert_eq!(argus_sim::json::parse(&text).unwrap(), doc);
        assert_eq!(doc.get("format").unwrap().as_str(), Some(STREAM_FORMAT));
        // No per-trial rows and no wall-clock quantity in the document.
        assert!(doc.get("trials").is_none());
        assert!(!text.contains("time_ns") && !text.contains("duration"));
    }

    #[test]
    fn fast_options_stay_deterministic_across_thread_counts() {
        let opts = ScratchOptions::fast();
        let a = small_campaign().run_streaming_with_options(Some(1), opts);
        let b = small_campaign().run_streaming_with_options(Some(4), opts);
        assert_eq!(
            stream_to_json(&a).to_canonical(),
            stream_to_json(&b).to_canonical()
        );
    }

    #[test]
    fn streaming_seeds_match_stored_spec_seeds() {
        // The on-demand label/seed derivation must agree with the
        // materialized spec list — same labels, same substream seeds.
        let c = small_campaign();
        let specs = c.trials();
        let stored = c.run(Some(1));
        let streamed = c.run_streaming(Some(1));
        assert_eq!(specs.len() as u64, streamed.trials);
        // Detection counts and the min-gap mean coincide because each trial
        // consumed the same derived seed in both paths (the mean is exact in
        // both aggregates; only quantiles are approximated by P²).
        assert_eq!(stored.stats.detected, streamed.stats.detected);
        let mean_stored: f64 =
            stored.stats.min_gaps().iter().sum::<f64>() / stored.stats.min_gaps().len() as f64;
        let mean_streamed = streamed.stats.min_gap_stats().mean();
        assert!(
            (mean_stored - mean_streamed).abs() < 1e-9,
            "{mean_stored} vs {mean_streamed}"
        );
    }
}
