//! A small std-only work-stealing thread pool for embarrassingly-parallel
//! trial execution.
//!
//! Tasks are pre-distributed round-robin over per-worker deques; an idle
//! worker pops from the front of its own deque and steals from the *back*
//! of the busiest other deque. Because the task set is fixed up front (no
//! task spawns tasks), a worker may exit as soon as a full scan finds
//! every deque empty.
//!
//! The pool makes **no ordering promises** about execution — determinism
//! is the caller's job (results are returned indexed by task id, and the
//! campaign runner aggregates them in task order).

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Wall-clock accounting of one pool invocation.
#[derive(Debug, Clone)]
pub struct PoolTiming {
    /// Number of worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock time of the pool run.
    pub wall: Duration,
    /// Per-task execution times, indexed like the results.
    pub per_task: Vec<Duration>,
}

impl PoolTiming {
    /// Total busy time: the sum of all task times.
    pub fn busy(&self) -> Duration {
        self.per_task.iter().sum()
    }

    /// Parallel speedup actually achieved (busy time over wall time).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.busy().as_secs_f64() / wall
        } else {
            1.0
        }
    }
}

/// Resolves the worker count: explicit request, then the `ARGUS_THREADS`
/// environment variable, then `RAYON_NUM_THREADS` (honoured for habit),
/// then the machine's available parallelism.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    requested
        .or_else(|| env_threads("ARGUS_THREADS"))
        .or_else(|| env_threads("RAYON_NUM_THREADS"))
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

fn env_threads(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n| n > 0)
}

/// Runs `f(0..n)` across `threads` workers and returns the results in
/// task order together with timing.
///
/// The output is a pure function of `f`: thread count and scheduling
/// affect only `PoolTiming`, never the result vector.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> (Vec<T>, PoolTiming)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let started = Instant::now();
    if n == 0 {
        return (
            Vec::new(),
            PoolTiming {
                threads: 0,
                wall: started.elapsed(),
                per_task: Vec::new(),
            },
        );
    }
    let workers = threads.clamp(1, n);

    // Round-robin pre-distribution over per-worker deques.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();

    let (tx, rx) = mpsc::channel::<(usize, T, Duration)>();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let f = &f;
            scope.spawn(move || loop {
                let task = claim(deques, w);
                match task {
                    Some(i) => {
                        let t0 = Instant::now();
                        let out = f(i);
                        let dt = t0.elapsed();
                        // The receiver outlives the scope; a send failure
                        // means the main thread panicked — nothing to do.
                        let _ = tx.send((i, out, dt));
                    }
                    None => break,
                }
            });
        }
        drop(tx);
    });

    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut per_task = vec![Duration::ZERO; n];
    for (i, out, dt) in rx {
        results[i] = Some(out);
        per_task[i] = dt;
    }
    let results: Vec<T> = results
        .into_iter()
        .map(|r| r.expect("every task runs exactly once"))
        .collect();
    (
        results,
        PoolTiming {
            threads: workers,
            wall: started.elapsed(),
            per_task,
        },
    )
}

/// Timing of one [`fold_indexed`] invocation.
///
/// Unlike [`PoolTiming`] there is no per-task vector — the whole point of
/// the folding pool is O(1) bookkeeping per task — so busy time is
/// accumulated directly.
#[derive(Debug, Clone, Copy)]
pub struct FoldTiming {
    /// Number of worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock time of the pool run.
    pub wall: Duration,
    /// Total task execution time summed over all workers.
    pub busy: Duration,
    /// High-water mark of the reorder buffer (results waiting for an
    /// earlier index to finish). Bounded by scheduling skew, not by `n`.
    pub max_pending: usize,
}

impl FoldTiming {
    /// Parallel speedup actually achieved (busy time over wall time).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.busy.as_secs_f64() / wall
        } else {
            1.0
        }
    }
}

/// Runs `task(0..n)` across `threads` workers — each carrying a reusable
/// per-worker state built by `init` — and folds every result **in strict
/// index order** on the calling thread, concurrently with execution.
///
/// This is the streaming complement of [`map_indexed`]: no result vector is
/// materialized, so memory is O(workers + scheduling skew) instead of O(n).
/// Out-of-order completions wait in a reorder buffer until the next index
/// arrives; `fold` therefore sees exactly the sequence a serial run would
/// produce, which is what keeps order-dependent accumulators (Welford sums,
/// P² quantile markers) byte-identical across thread counts.
pub fn fold_indexed<T, S, Init, Task, Fold>(
    n: usize,
    threads: usize,
    init: Init,
    task: Task,
    mut fold: Fold,
) -> FoldTiming
where
    T: Send,
    Init: Fn() -> S + Sync,
    Task: Fn(&mut S, usize) -> T + Sync,
    Fold: FnMut(usize, T),
{
    let started = Instant::now();
    if n == 0 {
        return FoldTiming {
            threads: 0,
            wall: started.elapsed(),
            busy: Duration::ZERO,
            max_pending: 0,
        };
    }
    let workers = threads.clamp(1, n);

    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();

    let (tx, rx) = mpsc::channel::<(usize, T, Duration)>();
    let mut busy = Duration::ZERO;
    let mut max_pending = 0usize;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let init = &init;
            let task = &task;
            scope.spawn(move || {
                let mut state = init();
                while let Some(i) = claim(deques, w) {
                    let t0 = Instant::now();
                    let out = task(&mut state, i);
                    let dt = t0.elapsed();
                    let _ = tx.send((i, out, dt));
                }
            });
        }
        drop(tx);

        // Drain the channel *while the workers run*, folding in strict index
        // order. Results arriving early are parked in a reorder buffer keyed
        // by index; its size tracks scheduling skew, never the task count.
        let mut pending: BTreeMap<usize, T> = BTreeMap::new();
        let mut next = 0usize;
        for (i, out, dt) in rx {
            busy += dt;
            if i == next {
                fold(i, out);
                next += 1;
                while let Some(out) = pending.remove(&next) {
                    fold(next, out);
                    next += 1;
                }
            } else {
                pending.insert(i, out);
                max_pending = max_pending.max(pending.len());
            }
        }
        debug_assert!(pending.is_empty(), "every task folds exactly once");
    });

    FoldTiming {
        threads: workers,
        wall: started.elapsed(),
        busy,
        max_pending,
    }
}

/// Pops the next task: front of our own deque, else steal from the back
/// of the fullest other deque. Returns `None` when all deques are empty
/// (no new tasks ever appear, so that means the pool is done).
fn claim(deques: &[Mutex<VecDeque<usize>>], own: usize) -> Option<usize> {
    if let Some(i) = deques[own].lock().expect("pool deque poisoned").pop_front() {
        return Some(i);
    }
    // Steal from the victim with the most remaining work.
    let mut best: Option<(usize, usize)> = None;
    for (v, deque) in deques.iter().enumerate() {
        if v == own {
            continue;
        }
        let len = deque.lock().expect("pool deque poisoned").len();
        if len > 0 && best.is_none_or(|(_, blen)| len > blen) {
            best = Some((v, len));
        }
    }
    let (victim, _) = best?;
    deques[victim]
        .lock()
        .expect("pool deque poisoned")
        .pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_task_order() {
        for threads in [1, 2, 8] {
            let (out, timing) = map_indexed(100, threads, |i| i * i);
            assert_eq!(out.len(), 100);
            for (i, &x) in out.iter().enumerate() {
                assert_eq!(x, i * i);
            }
            assert_eq!(timing.per_task.len(), 100);
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let (out, _) = map_indexed(257, 8, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let (out, timing) = map_indexed(0, 4, |i| i);
        assert!(out.is_empty());
        assert_eq!(timing.threads, 0);
        let (out, timing) = map_indexed(1, 16, |i| i + 1);
        assert_eq!(out, vec![1]);
        assert_eq!(timing.threads, 1, "workers are clamped to the task count");
    }

    #[test]
    fn uneven_tasks_get_stolen() {
        // One long task pinned to worker 0's deque; the rest are quick.
        // With stealing, total wall time stays well under serial time.
        let (out, timing) = map_indexed(32, 4, |i| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(30));
            } else {
                std::thread::sleep(Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out.len(), 32);
        assert!(
            timing.speedup() > 1.5,
            "expected parallel speedup, got {:.2}",
            timing.speedup()
        );
    }

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn fold_sees_strict_index_order() {
        for threads in [1, 2, 8] {
            let mut seen = Vec::new();
            let timing = fold_indexed(
                200,
                threads,
                || (),
                |(), i| i * 3,
                |i, x| {
                    assert_eq!(x, i * 3);
                    seen.push(i);
                },
            );
            assert_eq!(seen, (0..200).collect::<Vec<_>>());
            assert!(timing.threads >= 1);
        }
    }

    #[test]
    fn fold_reuses_per_worker_state() {
        // Each worker's state counts its own tasks; the grand total must be
        // exactly n, and a worker that ran more than one task proves reuse.
        let totals = Mutex::new(Vec::new());
        fold_indexed(
            64,
            4,
            || 0usize,
            |count, _i| {
                *count += 1;
                *count
            },
            |_i, c| totals.lock().unwrap().push(c),
        );
        let totals = totals.into_inner().unwrap();
        assert_eq!(totals.len(), 64);
        assert!(
            totals.iter().any(|&c| c > 1),
            "per-worker state was rebuilt for every task"
        );
    }

    #[test]
    fn fold_empty_is_a_no_op() {
        let timing = fold_indexed(0, 4, || (), |(), i| i, |_, _| panic!("no tasks"));
        assert_eq!(timing.threads, 0);
        assert_eq!(timing.max_pending, 0);
    }

    #[test]
    fn fold_matches_map_for_order_dependent_accumulation() {
        // An order-sensitive checksum: fold(i, x) = 31·acc + x. Any
        // out-of-order fold changes the result.
        let reference =
            (0..500usize).fold(0u64, |acc, i| acc.wrapping_mul(31).wrapping_add(i as u64));
        for threads in [1, 3, 8] {
            let mut acc = 0u64;
            fold_indexed(
                500,
                threads,
                || (),
                |(), i| i as u64,
                |_i, x| acc = acc.wrapping_mul(31).wrapping_add(x),
            );
            assert_eq!(acc, reference, "threads={threads}");
        }
    }
}
