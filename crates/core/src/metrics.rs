//! Run-level metrics: what the paper's §6.2 "Results" paragraph reports.

use argus_cra::detector::ConfusionMatrix;
use argus_sim::time::Step;

/// Outcome metrics of one closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Smallest true inter-vehicle gap seen (m).
    pub min_gap: f64,
    /// Whether the vehicles collided (gap reached zero).
    pub collided: bool,
    /// Step of the first attack detection, if any.
    pub detection_step: Option<Step>,
    /// Steps between attack onset and detection, if both happened.
    pub detection_latency: Option<u64>,
    /// Steps served from the RLS estimator.
    pub estimation_steps: u64,
    /// Wall-clock nanoseconds spent inside the detection + estimation
    /// pipeline while an attack was latched (the paper's "run-time of the
    /// algorithm" for the attack duration).
    pub estimation_time_ns: u128,
    /// Challenge-instant confusion matrix versus ground truth.
    pub confusion: ConfusionMatrix,
    /// RMSE of the controller-consumed distance against the true gap over
    /// the attack window (`None` when no attack steps ran).
    pub attack_window_distance_rmse: Option<f64>,
}

impl RunMetrics {
    /// `true` when the run had no collision and (if an attack ran) the
    /// detector was perfect.
    pub fn is_safe_and_sound(&self) -> bool {
        !self.collided && self.confusion.is_perfect()
    }
}

impl std::fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min_gap={:.2} m, collided={}, detection={:?}, latency={:?}, \
             est_steps={}, est_time={} ns, confusion=[{}]",
            self.min_gap,
            self.collided,
            self.detection_step.map(|s| s.0),
            self.detection_latency,
            self.estimation_steps,
            self.estimation_time_ns,
            self.confusion
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            min_gap: 42.0,
            collided: false,
            detection_step: Some(Step(182)),
            detection_latency: Some(0),
            estimation_steps: 118,
            estimation_time_ns: 12_000_000,
            confusion: ConfusionMatrix::new(),
            attack_window_distance_rmse: Some(1.5),
        }
    }

    #[test]
    fn safe_and_sound() {
        let m = metrics();
        assert!(m.is_safe_and_sound());
        let mut bad = m;
        bad.collided = true;
        assert!(!bad.is_safe_and_sound());
        let mut missed = m;
        missed.confusion.record(true, false);
        assert!(!missed.is_safe_and_sound());
    }

    #[test]
    fn display_is_informative() {
        let text = metrics().to_string();
        assert!(text.contains("min_gap=42.00"));
        assert!(text.contains("detection=Some(182)"));
    }
}
