//! Run-level metrics: what the paper's §6.2 "Results" paragraph reports,
//! plus campaign-level aggregation across Monte-Carlo trials.

use argus_cra::detector::ConfusionMatrix;
use argus_fusion::FusionMode;
use argus_sim::stats::{percentile, P2Quantile, RunningStats};
use argus_sim::time::Step;

/// Fusion-layer outcome of one run (present only when the run used a
/// fused pipeline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionMetrics {
    /// Which fusion mode the run used.
    pub mode: FusionMode,
    /// First step at which a sequential IDS monitor alarmed (`None` in
    /// plain fused mode or when nothing alarmed).
    pub ids_detection_step: Option<Step>,
    /// Total steps the mitigation policy spent in safe mode.
    pub safe_mode_steps: u64,
}

/// Outcome metrics of one closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Smallest true inter-vehicle gap seen (m).
    pub min_gap: f64,
    /// Whether the vehicles collided (gap reached zero).
    pub collided: bool,
    /// Step of the first attack detection, if any.
    pub detection_step: Option<Step>,
    /// Steps between attack onset and detection, if both happened.
    pub detection_latency: Option<u64>,
    /// Steps served from the RLS estimator.
    pub estimation_steps: u64,
    /// Wall-clock nanoseconds spent inside the detection + estimation
    /// pipeline while an attack was latched (the paper's "run-time of the
    /// algorithm" for the attack duration).
    pub estimation_time_ns: u128,
    /// Challenge-instant confusion matrix versus ground truth.
    pub confusion: ConfusionMatrix,
    /// RMSE of the controller-consumed distance against the true gap over
    /// the attack window (`None` when no attack steps ran).
    pub attack_window_distance_rmse: Option<f64>,
    /// RMSE of the controller-consumed distance against the true gap over
    /// every step from attack onset to the horizon, *regardless of the
    /// detector latch* (`None` for benign or undefended runs). Unlike
    /// [`Self::attack_window_distance_rmse`] this is comparable across
    /// defenses with different latch behaviour — the `--fusion` sweep's
    /// primary accuracy metric.
    pub post_onset_distance_rmse: Option<f64>,
    /// Fusion-layer outcome (`None` for CRA-only runs, so CRA-only
    /// metrics are unchanged by the fusion subsystem).
    pub fusion: Option<FusionMetrics>,
}

impl RunMetrics {
    /// `true` when the run had no collision and (if an attack ran) the
    /// detector was perfect.
    pub fn is_safe_and_sound(&self) -> bool {
        !self.collided && self.confusion.is_perfect()
    }
}

impl std::fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min_gap={:.2} m, collided={}, detection={:?}, latency={:?}, \
             est_steps={}, est_time={} ns, confusion=[{}]",
            self.min_gap,
            self.collided,
            self.detection_step.map(|s| s.0),
            self.detection_latency,
            self.estimation_steps,
            self.estimation_time_ns,
            self.confusion
        )
    }
}

/// Aggregated outcome statistics over a set of Monte-Carlo trials.
///
/// Recording order is significant only through floating-point summation;
/// the campaign runner always records in trial-index order, which is what
/// makes campaign summaries bit-identical across thread counts. `merge`
/// concatenates sample lists, so `a.merge(b); a.merge(c)` equals
/// `b.merge(c); a.merge(b∪c)` exactly (merge is associative).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignStats {
    /// Number of trials recorded.
    pub trials: u64,
    /// Trials that ended in a collision.
    pub collisions: u64,
    /// Trials where the detector fired at least once.
    pub detected: u64,
    /// Total false positives across all trials' challenge instants.
    pub false_positives: u64,
    /// Total false negatives across all trials' challenge instants.
    pub false_negatives: u64,
    /// Total safe-mode steps across trials with fusion metrics.
    pub safe_mode_steps: u64,
    min_gaps: Vec<f64>,
    latencies: Vec<f64>,
    rmses: Vec<f64>,
    post_rmses: Vec<f64>,
}

impl CampaignStats {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one trial's metrics into the aggregate.
    pub fn record(&mut self, m: &RunMetrics) {
        self.trials += 1;
        self.collisions += u64::from(m.collided);
        self.detected += u64::from(m.detection_step.is_some());
        self.false_positives += m.confusion.false_positives;
        self.false_negatives += m.confusion.false_negatives;
        self.min_gaps.push(m.min_gap);
        if let Some(l) = m.detection_latency {
            self.latencies.push(l as f64);
        }
        if let Some(r) = m.attack_window_distance_rmse {
            self.rmses.push(r);
        }
        if let Some(r) = m.post_onset_distance_rmse {
            self.post_rmses.push(r);
        }
        if let Some(f) = m.fusion {
            self.safe_mode_steps += f.safe_mode_steps;
        }
    }

    /// Merges another aggregate into this one (sample concatenation).
    pub fn merge(&mut self, other: &CampaignStats) {
        self.trials += other.trials;
        self.collisions += other.collisions;
        self.detected += other.detected;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.safe_mode_steps += other.safe_mode_steps;
        self.min_gaps.extend_from_slice(&other.min_gaps);
        self.latencies.extend_from_slice(&other.latencies);
        self.rmses.extend_from_slice(&other.rmses);
        self.post_rmses.extend_from_slice(&other.post_rmses);
    }

    /// Fraction of trials that collided.
    pub fn crash_rate(&self) -> f64 {
        rate(self.collisions, self.trials)
    }

    /// Fraction of trials with at least one detection.
    pub fn detection_rate(&self) -> f64 {
        rate(self.detected, self.trials)
    }

    /// Minimum-gap samples, one per trial, in recording order.
    pub fn min_gaps(&self) -> &[f64] {
        &self.min_gaps
    }

    /// Detection-latency samples (trials that detected a live attack).
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// Attack-window RMSE samples (trials with estimation steps).
    pub fn rmses(&self) -> &[f64] {
        &self.rmses
    }

    /// Post-onset distance RMSE samples (defended, non-benign trials).
    pub fn post_onset_rmses(&self) -> &[f64] {
        &self.post_rmses
    }

    /// Mean safe-mode steps per trial.
    pub fn mean_safe_mode_steps(&self) -> f64 {
        rate(self.safe_mode_steps, self.trials)
    }

    /// Linear-interpolated percentile of the minimum gap (`None` when no
    /// trials were recorded).
    pub fn min_gap_percentile(&self, p: f64) -> Option<f64> {
        percentile_of(&self.min_gaps, p)
    }

    /// Percentile of detection latency over detecting trials.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        percentile_of(&self.latencies, p)
    }

    /// Percentile of attack-window distance RMSE over estimating trials.
    pub fn rmse_percentile(&self, p: f64) -> Option<f64> {
        percentile_of(&self.rmses, p)
    }

    /// Percentile of post-onset distance RMSE over defended attacked trials.
    pub fn post_onset_rmse_percentile(&self, p: f64) -> Option<f64> {
        percentile_of(&self.post_rmses, p)
    }
}

/// Constant-memory aggregate over a stream of Monte-Carlo trials.
///
/// The storing [`CampaignStats`] keeps every sample, so a campaign's memory
/// grows O(trials). This variant replaces the sample lists with Welford
/// accumulators and P² quantile markers for exactly the percentiles the
/// canonical campaign summary reports — memory is O(1) per label regardless
/// of trial count, which is what unlocks million-trial runs.
///
/// The P² markers are order-dependent, so the estimate is a deterministic
/// pure function of the *recording sequence*: the streaming campaign runner
/// folds trials in index order on one thread, making serial and parallel
/// runs byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingCampaignStats {
    /// Number of trials recorded.
    pub trials: u64,
    /// Trials that ended in a collision.
    pub collisions: u64,
    /// Trials where the detector fired at least once.
    pub detected: u64,
    /// Total false positives across all trials' challenge instants.
    pub false_positives: u64,
    /// Total false negatives across all trials' challenge instants.
    pub false_negatives: u64,
    min_gap: RunningStats,
    min_gap_p5: P2Quantile,
    min_gap_p50: P2Quantile,
    latency: RunningStats,
    latency_p50: P2Quantile,
    latency_p95: P2Quantile,
    rmse: RunningStats,
    rmse_p50: P2Quantile,
    rmse_p95: P2Quantile,
    /// Total safe-mode steps across trials with fusion metrics.
    pub safe_mode_steps: u64,
    post_rmse: RunningStats,
    post_rmse_p50: P2Quantile,
}

impl Default for StreamingCampaignStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingCampaignStats {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self {
            trials: 0,
            collisions: 0,
            detected: 0,
            false_positives: 0,
            false_negatives: 0,
            min_gap: RunningStats::new(),
            min_gap_p5: P2Quantile::new(5.0),
            min_gap_p50: P2Quantile::new(50.0),
            latency: RunningStats::new(),
            latency_p50: P2Quantile::new(50.0),
            latency_p95: P2Quantile::new(95.0),
            rmse: RunningStats::new(),
            rmse_p50: P2Quantile::new(50.0),
            rmse_p95: P2Quantile::new(95.0),
            safe_mode_steps: 0,
            post_rmse: RunningStats::new(),
            post_rmse_p50: P2Quantile::new(50.0),
        }
    }

    /// Folds one trial's metrics into the aggregate.
    pub fn record(&mut self, m: &RunMetrics) {
        self.trials += 1;
        self.collisions += u64::from(m.collided);
        self.detected += u64::from(m.detection_step.is_some());
        self.false_positives += m.confusion.false_positives;
        self.false_negatives += m.confusion.false_negatives;
        self.min_gap.push(m.min_gap);
        self.min_gap_p5.push(m.min_gap);
        self.min_gap_p50.push(m.min_gap);
        if let Some(l) = m.detection_latency {
            let l = l as f64;
            self.latency.push(l);
            self.latency_p50.push(l);
            self.latency_p95.push(l);
        }
        if let Some(r) = m.attack_window_distance_rmse {
            self.rmse.push(r);
            self.rmse_p50.push(r);
            self.rmse_p95.push(r);
        }
        if let Some(r) = m.post_onset_distance_rmse {
            self.post_rmse.push(r);
            self.post_rmse_p50.push(r);
        }
        if let Some(f) = m.fusion {
            self.safe_mode_steps += f.safe_mode_steps;
        }
    }

    /// Fraction of trials that collided.
    pub fn crash_rate(&self) -> f64 {
        rate(self.collisions, self.trials)
    }

    /// Fraction of trials with at least one detection.
    pub fn detection_rate(&self) -> f64 {
        rate(self.detected, self.trials)
    }

    /// Welford summary of the minimum gap.
    pub fn min_gap_stats(&self) -> &RunningStats {
        &self.min_gap
    }

    /// Welford summary of detection latency over detecting trials.
    pub fn latency_stats(&self) -> &RunningStats {
        &self.latency
    }

    /// Welford summary of attack-window RMSE over estimating trials.
    pub fn rmse_stats(&self) -> &RunningStats {
        &self.rmse
    }

    /// P² estimate of the 5th percentile of the minimum gap.
    pub fn min_gap_p5(&self) -> Option<f64> {
        self.min_gap_p5.estimate()
    }

    /// P² estimate of the median minimum gap.
    pub fn min_gap_p50(&self) -> Option<f64> {
        self.min_gap_p50.estimate()
    }

    /// P² estimate of the median detection latency.
    pub fn latency_p50(&self) -> Option<f64> {
        self.latency_p50.estimate()
    }

    /// P² estimate of the 95th-percentile detection latency.
    pub fn latency_p95(&self) -> Option<f64> {
        self.latency_p95.estimate()
    }

    /// Largest observed detection latency (`None` before any detection).
    pub fn latency_max(&self) -> Option<f64> {
        (self.latency.count() > 0).then(|| self.latency.max())
    }

    /// P² estimate of the median attack-window RMSE.
    pub fn rmse_p50(&self) -> Option<f64> {
        self.rmse_p50.estimate()
    }

    /// P² estimate of the 95th-percentile attack-window RMSE.
    pub fn rmse_p95(&self) -> Option<f64> {
        self.rmse_p95.estimate()
    }

    /// Welford summary of post-onset distance RMSE.
    pub fn post_onset_rmse_stats(&self) -> &RunningStats {
        &self.post_rmse
    }

    /// P² estimate of the median post-onset distance RMSE.
    pub fn post_onset_rmse_p50(&self) -> Option<f64> {
        self.post_rmse_p50.estimate()
    }

    /// Mean safe-mode steps per trial.
    pub fn mean_safe_mode_steps(&self) -> f64 {
        rate(self.safe_mode_steps, self.trials)
    }
}

impl std::fmt::Display for StreamingCampaignStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trials={} crash_rate={:.3} detection_rate={:.3} FP={} FN={} \
             min_gap[p5={:.2} p50={:.2}] latency[p50={:.1} p95={:.1}] \
             rmse[p50={:.2} p95={:.2}]",
            self.trials,
            self.crash_rate(),
            self.detection_rate(),
            self.false_positives,
            self.false_negatives,
            self.min_gap_p5().unwrap_or(f64::NAN),
            self.min_gap_p50().unwrap_or(f64::NAN),
            self.latency_p50().unwrap_or(f64::NAN),
            self.latency_p95().unwrap_or(f64::NAN),
            self.rmse_p50().unwrap_or(f64::NAN),
            self.rmse_p95().unwrap_or(f64::NAN),
        )
    }
}

fn rate(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

fn percentile_of(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(percentile(samples, p))
    }
}

impl std::fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trials={} crash_rate={:.3} detection_rate={:.3} FP={} FN={} \
             min_gap[p5={:.2} p50={:.2}] latency[p50={:.1} p95={:.1}] \
             rmse[p50={:.2} p95={:.2}]",
            self.trials,
            self.crash_rate(),
            self.detection_rate(),
            self.false_positives,
            self.false_negatives,
            self.min_gap_percentile(5.0).unwrap_or(f64::NAN),
            self.min_gap_percentile(50.0).unwrap_or(f64::NAN),
            self.latency_percentile(50.0).unwrap_or(f64::NAN),
            self.latency_percentile(95.0).unwrap_or(f64::NAN),
            self.rmse_percentile(50.0).unwrap_or(f64::NAN),
            self.rmse_percentile(95.0).unwrap_or(f64::NAN),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            min_gap: 42.0,
            collided: false,
            detection_step: Some(Step(182)),
            detection_latency: Some(0),
            estimation_steps: 118,
            estimation_time_ns: 12_000_000,
            confusion: ConfusionMatrix::new(),
            attack_window_distance_rmse: Some(1.5),
            post_onset_distance_rmse: Some(1.8),
            fusion: None,
        }
    }

    #[test]
    fn safe_and_sound() {
        let m = metrics();
        assert!(m.is_safe_and_sound());
        let mut bad = m;
        bad.collided = true;
        assert!(!bad.is_safe_and_sound());
        let mut missed = m;
        missed.confusion.record(true, false);
        assert!(!missed.is_safe_and_sound());
    }

    #[test]
    fn display_is_informative() {
        let text = metrics().to_string();
        assert!(text.contains("min_gap=42.00"));
        assert!(text.contains("detection=Some(182)"));
    }

    #[test]
    fn campaign_stats_record_and_rates() {
        let mut s = CampaignStats::new();
        let good = metrics();
        let mut bad = metrics();
        bad.collided = true;
        bad.detection_step = None;
        bad.detection_latency = None;
        bad.attack_window_distance_rmse = None;
        s.record(&good);
        s.record(&good);
        s.record(&bad);
        assert_eq!(s.trials, 3);
        assert!((s.crash_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.detection_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.latencies().len(), 2);
        assert_eq!(s.latency_percentile(50.0), Some(0.0));
        assert_eq!(s.rmse_percentile(100.0), Some(1.5));
        assert_eq!(s.min_gaps().len(), 3);
    }

    #[test]
    fn campaign_stats_merge_is_concatenation() {
        let mut a = CampaignStats::new();
        let mut b = CampaignStats::new();
        let mut whole = CampaignStats::new();
        let mut m = metrics();
        for i in 0..7 {
            m.min_gap = f64::from(i) * 3.0;
            whole.record(&m);
            if i < 3 {
                a.record(&m)
            } else {
                b.record(&m)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_stats_have_no_percentiles() {
        let s = CampaignStats::new();
        assert_eq!(s.trials, 0);
        assert_eq!(s.crash_rate(), 0.0);
        assert!(s.latency_percentile(50.0).is_none());
        assert!(s.min_gap_percentile(50.0).is_none());
    }

    #[test]
    fn streaming_counts_match_storing_stats_exactly() {
        let mut storing = CampaignStats::new();
        let mut streaming = StreamingCampaignStats::new();
        let mut m = metrics();
        for i in 0..50u32 {
            m.min_gap = 20.0 + f64::from(i % 13);
            m.collided = i % 7 == 0;
            m.detection_latency = (i % 3 == 0).then(|| u64::from(i % 5));
            m.detection_step = m.detection_latency.map(|_| Step(182));
            storing.record(&m);
            streaming.record(&m);
        }
        assert_eq!(streaming.trials, storing.trials);
        assert_eq!(streaming.collisions, storing.collisions);
        assert_eq!(streaming.detected, storing.detected);
        assert_eq!(streaming.false_positives, storing.false_positives);
        assert_eq!(streaming.false_negatives, storing.false_negatives);
        assert_eq!(streaming.crash_rate(), storing.crash_rate());
        assert_eq!(
            streaming.latency_stats().count(),
            storing.latencies().len() as u64
        );
        assert_eq!(
            streaming.latency_max(),
            storing
                .latencies()
                .iter()
                .cloned()
                .fold(None, |acc: Option<f64>, x| Some(
                    acc.map_or(x, |a| a.max(x))
                ))
        );
    }

    #[test]
    fn streaming_percentiles_track_exact_ones() {
        let mut storing = CampaignStats::new();
        let mut streaming = StreamingCampaignStats::new();
        let mut m = metrics();
        // A spread of min gaps wide enough for quantiles to matter.
        for i in 0..2_000u32 {
            let x = f64::from((i * 37) % 1000) / 10.0;
            m.min_gap = x;
            m.attack_window_distance_rmse = Some(x / 50.0);
            storing.record(&m);
            streaming.record(&m);
        }
        let exact = storing.min_gap_percentile(50.0).unwrap();
        let approx = streaming.min_gap_p50().unwrap();
        assert!((exact - approx).abs() < 1.0, "{exact} vs {approx}");
        let exact5 = storing.min_gap_percentile(5.0).unwrap();
        let approx5 = streaming.min_gap_p5().unwrap();
        assert!((exact5 - approx5).abs() < 1.0, "{exact5} vs {approx5}");
        let exact_r = storing.rmse_percentile(95.0).unwrap();
        let approx_r = streaming.rmse_p95().unwrap();
        assert!((exact_r - approx_r).abs() < 0.1, "{exact_r} vs {approx_r}");
    }

    #[test]
    fn streaming_stats_are_order_deterministic() {
        let m = metrics();
        let run = || {
            let mut s = StreamingCampaignStats::new();
            let mut m2 = m;
            for i in 0..500u32 {
                m2.min_gap = f64::from((i * 7919) % 997);
                s.record(&m2);
            }
            s.min_gap_p50().unwrap()
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn empty_streaming_stats_are_safe() {
        let s = StreamingCampaignStats::new();
        assert_eq!(s.trials, 0);
        assert_eq!(s.crash_rate(), 0.0);
        assert!(s.min_gap_p50().is_none());
        assert!(s.latency_max().is_none());
        assert!(s.to_string().contains("trials=0"));
    }
}
