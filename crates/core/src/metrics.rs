//! Run-level metrics: what the paper's §6.2 "Results" paragraph reports,
//! plus campaign-level aggregation across Monte-Carlo trials.

use argus_cra::detector::ConfusionMatrix;
use argus_sim::stats::percentile;
use argus_sim::time::Step;

/// Outcome metrics of one closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Smallest true inter-vehicle gap seen (m).
    pub min_gap: f64,
    /// Whether the vehicles collided (gap reached zero).
    pub collided: bool,
    /// Step of the first attack detection, if any.
    pub detection_step: Option<Step>,
    /// Steps between attack onset and detection, if both happened.
    pub detection_latency: Option<u64>,
    /// Steps served from the RLS estimator.
    pub estimation_steps: u64,
    /// Wall-clock nanoseconds spent inside the detection + estimation
    /// pipeline while an attack was latched (the paper's "run-time of the
    /// algorithm" for the attack duration).
    pub estimation_time_ns: u128,
    /// Challenge-instant confusion matrix versus ground truth.
    pub confusion: ConfusionMatrix,
    /// RMSE of the controller-consumed distance against the true gap over
    /// the attack window (`None` when no attack steps ran).
    pub attack_window_distance_rmse: Option<f64>,
}

impl RunMetrics {
    /// `true` when the run had no collision and (if an attack ran) the
    /// detector was perfect.
    pub fn is_safe_and_sound(&self) -> bool {
        !self.collided && self.confusion.is_perfect()
    }
}

impl std::fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min_gap={:.2} m, collided={}, detection={:?}, latency={:?}, \
             est_steps={}, est_time={} ns, confusion=[{}]",
            self.min_gap,
            self.collided,
            self.detection_step.map(|s| s.0),
            self.detection_latency,
            self.estimation_steps,
            self.estimation_time_ns,
            self.confusion
        )
    }
}

/// Aggregated outcome statistics over a set of Monte-Carlo trials.
///
/// Recording order is significant only through floating-point summation;
/// the campaign runner always records in trial-index order, which is what
/// makes campaign summaries bit-identical across thread counts. `merge`
/// concatenates sample lists, so `a.merge(b); a.merge(c)` equals
/// `b.merge(c); a.merge(b∪c)` exactly (merge is associative).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignStats {
    /// Number of trials recorded.
    pub trials: u64,
    /// Trials that ended in a collision.
    pub collisions: u64,
    /// Trials where the detector fired at least once.
    pub detected: u64,
    /// Total false positives across all trials' challenge instants.
    pub false_positives: u64,
    /// Total false negatives across all trials' challenge instants.
    pub false_negatives: u64,
    min_gaps: Vec<f64>,
    latencies: Vec<f64>,
    rmses: Vec<f64>,
}

impl CampaignStats {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one trial's metrics into the aggregate.
    pub fn record(&mut self, m: &RunMetrics) {
        self.trials += 1;
        self.collisions += u64::from(m.collided);
        self.detected += u64::from(m.detection_step.is_some());
        self.false_positives += m.confusion.false_positives;
        self.false_negatives += m.confusion.false_negatives;
        self.min_gaps.push(m.min_gap);
        if let Some(l) = m.detection_latency {
            self.latencies.push(l as f64);
        }
        if let Some(r) = m.attack_window_distance_rmse {
            self.rmses.push(r);
        }
    }

    /// Merges another aggregate into this one (sample concatenation).
    pub fn merge(&mut self, other: &CampaignStats) {
        self.trials += other.trials;
        self.collisions += other.collisions;
        self.detected += other.detected;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.min_gaps.extend_from_slice(&other.min_gaps);
        self.latencies.extend_from_slice(&other.latencies);
        self.rmses.extend_from_slice(&other.rmses);
    }

    /// Fraction of trials that collided.
    pub fn crash_rate(&self) -> f64 {
        rate(self.collisions, self.trials)
    }

    /// Fraction of trials with at least one detection.
    pub fn detection_rate(&self) -> f64 {
        rate(self.detected, self.trials)
    }

    /// Minimum-gap samples, one per trial, in recording order.
    pub fn min_gaps(&self) -> &[f64] {
        &self.min_gaps
    }

    /// Detection-latency samples (trials that detected a live attack).
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// Attack-window RMSE samples (trials with estimation steps).
    pub fn rmses(&self) -> &[f64] {
        &self.rmses
    }

    /// Linear-interpolated percentile of the minimum gap (`None` when no
    /// trials were recorded).
    pub fn min_gap_percentile(&self, p: f64) -> Option<f64> {
        percentile_of(&self.min_gaps, p)
    }

    /// Percentile of detection latency over detecting trials.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        percentile_of(&self.latencies, p)
    }

    /// Percentile of attack-window distance RMSE over estimating trials.
    pub fn rmse_percentile(&self, p: f64) -> Option<f64> {
        percentile_of(&self.rmses, p)
    }
}

fn rate(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

fn percentile_of(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(percentile(samples, p))
    }
}

impl std::fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trials={} crash_rate={:.3} detection_rate={:.3} FP={} FN={} \
             min_gap[p5={:.2} p50={:.2}] latency[p50={:.1} p95={:.1}] \
             rmse[p50={:.2} p95={:.2}]",
            self.trials,
            self.crash_rate(),
            self.detection_rate(),
            self.false_positives,
            self.false_negatives,
            self.min_gap_percentile(5.0).unwrap_or(f64::NAN),
            self.min_gap_percentile(50.0).unwrap_or(f64::NAN),
            self.latency_percentile(50.0).unwrap_or(f64::NAN),
            self.latency_percentile(95.0).unwrap_or(f64::NAN),
            self.rmse_percentile(50.0).unwrap_or(f64::NAN),
            self.rmse_percentile(95.0).unwrap_or(f64::NAN),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            min_gap: 42.0,
            collided: false,
            detection_step: Some(Step(182)),
            detection_latency: Some(0),
            estimation_steps: 118,
            estimation_time_ns: 12_000_000,
            confusion: ConfusionMatrix::new(),
            attack_window_distance_rmse: Some(1.5),
        }
    }

    #[test]
    fn safe_and_sound() {
        let m = metrics();
        assert!(m.is_safe_and_sound());
        let mut bad = m;
        bad.collided = true;
        assert!(!bad.is_safe_and_sound());
        let mut missed = m;
        missed.confusion.record(true, false);
        assert!(!missed.is_safe_and_sound());
    }

    #[test]
    fn display_is_informative() {
        let text = metrics().to_string();
        assert!(text.contains("min_gap=42.00"));
        assert!(text.contains("detection=Some(182)"));
    }

    #[test]
    fn campaign_stats_record_and_rates() {
        let mut s = CampaignStats::new();
        let good = metrics();
        let mut bad = metrics();
        bad.collided = true;
        bad.detection_step = None;
        bad.detection_latency = None;
        bad.attack_window_distance_rmse = None;
        s.record(&good);
        s.record(&good);
        s.record(&bad);
        assert_eq!(s.trials, 3);
        assert!((s.crash_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.detection_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.latencies().len(), 2);
        assert_eq!(s.latency_percentile(50.0), Some(0.0));
        assert_eq!(s.rmse_percentile(100.0), Some(1.5));
        assert_eq!(s.min_gaps().len(), 3);
    }

    #[test]
    fn campaign_stats_merge_is_concatenation() {
        let mut a = CampaignStats::new();
        let mut b = CampaignStats::new();
        let mut whole = CampaignStats::new();
        let mut m = metrics();
        for i in 0..7 {
            m.min_gap = f64::from(i) * 3.0;
            whole.record(&m);
            if i < 3 {
                a.record(&m)
            } else {
                b.record(&m)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_stats_have_no_percentiles() {
        let s = CampaignStats::new();
        assert_eq!(s.trials, 0);
        assert_eq!(s.crash_rate(), 0.0);
        assert!(s.latency_percentile(50.0).is_none());
        assert!(s.min_gap_percentile(50.0).is_none());
    }
}
