//! Minimal SVG line-chart rendering for the figure harness.
//!
//! Dependency-free: emits a self-contained SVG with axes, tick labels, a
//! legend, and one polyline per series — enough to regenerate the paper's
//! Figures 2–3 as image files from
//! [`FigureSeries`] data.

use crate::experiments::FigureSeries;

/// Plot dimensions and margins.
const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 520.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 30.0;
const MARGIN_TOP: f64 = 50.0;
const MARGIN_BOTTOM: f64 = 60.0;

/// A single series to draw.
#[derive(Debug, Clone)]
pub struct PlotSeries<'a> {
    /// Legend label.
    pub label: &'a str,
    /// Stroke colour (any SVG colour string).
    pub color: &'a str,
    /// Dash pattern (empty = solid).
    pub dash: &'a str,
    /// Y values (x is the sample index).
    pub values: &'a [f64],
}

/// Renders a line chart to an SVG string.
///
/// # Panics
///
/// Panics if no series is given or all series are empty.
pub fn render_svg(title: &str, y_label: &str, series: &[PlotSeries<'_>]) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let n = series.iter().map(|s| s.values.len()).max().unwrap_or(0);
    assert!(n > 1, "series must have at least two points");

    let finite = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .filter(|v| v.is_finite());
    let (mut y_min, mut y_max) = (f64::MAX, f64::MIN);
    for v in finite {
        y_min = y_min.min(v);
        y_max = y_max.max(v);
    }
    if y_min == f64::MAX {
        y_min = 0.0;
        y_max = 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    // Pad the range by 5 %.
    let pad = 0.05 * (y_max - y_min);
    let (y_min, y_max) = (y_min - pad, y_max + pad);

    let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    let x_of = |i: usize| MARGIN_LEFT + plot_w * i as f64 / (n - 1) as f64;
    let y_of = |v: f64| MARGIN_TOP + plot_h * (1.0 - (v - y_min) / (y_max - y_min));

    let mut svg = String::with_capacity(16 * 1024);
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
    ));
    svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    svg.push_str(&format!(
        r#"<text x="{}" y="28" font-family="sans-serif" font-size="18" text-anchor="middle">{}</text>"#,
        WIDTH / 2.0,
        escape(title)
    ));

    // Axes.
    svg.push_str(&format!(
        r#"<line x1="{MARGIN_LEFT}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        HEIGHT - MARGIN_BOTTOM,
        WIDTH - MARGIN_RIGHT,
        HEIGHT - MARGIN_BOTTOM
    ));
    svg.push_str(&format!(
        r#"<line x1="{MARGIN_LEFT}" y1="{MARGIN_TOP}" x2="{MARGIN_LEFT}" y2="{}" stroke="black"/>"#,
        HEIGHT - MARGIN_BOTTOM
    ));

    // Ticks: 6 on each axis.
    for t in 0..=5 {
        let frac = t as f64 / 5.0;
        let x = MARGIN_LEFT + plot_w * frac;
        let x_value = (n - 1) as f64 * frac;
        svg.push_str(&format!(
            r#"<line x1="{x}" y1="{}" x2="{x}" y2="{}" stroke="black"/>"#,
            HEIGHT - MARGIN_BOTTOM,
            HEIGHT - MARGIN_BOTTOM + 5.0
        ));
        svg.push_str(&format!(
            r#"<text x="{x}" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle">{:.0}</text>"#,
            HEIGHT - MARGIN_BOTTOM + 20.0,
            x_value
        ));
        let y = MARGIN_TOP + plot_h * (1.0 - frac);
        let y_value = y_min + (y_max - y_min) * frac;
        svg.push_str(&format!(
            r#"<line x1="{}" y1="{y}" x2="{MARGIN_LEFT}" y2="{y}" stroke="black"/>"#,
            MARGIN_LEFT - 5.0
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12" text-anchor="end">{:.1}</text>"#,
            MARGIN_LEFT - 9.0,
            y + 4.0,
            y_value
        ));
    }
    // Axis labels.
    svg.push_str(&format!(
        r#"<text x="{}" y="{}" font-family="sans-serif" font-size="14" text-anchor="middle">Time (s)</text>"#,
        WIDTH / 2.0,
        HEIGHT - 15.0
    ));
    svg.push_str(&format!(
        r#"<text x="18" y="{}" font-family="sans-serif" font-size="14" text-anchor="middle" transform="rotate(-90 18 {})">{}</text>"#,
        HEIGHT / 2.0,
        HEIGHT / 2.0,
        escape(y_label)
    ));

    // Series.
    for s in series {
        let mut points = String::new();
        for (i, &v) in s.values.iter().enumerate() {
            if v.is_finite() {
                points.push_str(&format!("{:.2},{:.2} ", x_of(i), y_of(v)));
            }
        }
        let dash_attr = if s.dash.is_empty() {
            String::new()
        } else {
            format!(r#" stroke-dasharray="{}""#, s.dash)
        };
        svg.push_str(&format!(
            r#"<polyline fill="none" stroke="{}" stroke-width="1.6"{} points="{}"/>"#,
            s.color,
            dash_attr,
            points.trim_end()
        ));
    }

    // Legend.
    for (i, s) in series.iter().enumerate() {
        let y = MARGIN_TOP + 18.0 * i as f64 + 8.0;
        let x = WIDTH - MARGIN_RIGHT - 230.0;
        let dash_attr = if s.dash.is_empty() {
            String::new()
        } else {
            format!(r#" stroke-dasharray="{}""#, s.dash)
        };
        svg.push_str(&format!(
            r#"<line x1="{x}" y1="{y}" x2="{}" y2="{y}" stroke="{}" stroke-width="2"{}/>"#,
            x + 28.0,
            s.color,
            dash_attr
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="13">{}</text>"#,
            x + 34.0,
            y + 4.0,
            escape(s.label)
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// Renders a figure panel (the paper's three-series layout) to SVG.
pub fn figure_svg(title: &str, y_label: &str, series: &FigureSeries) -> String {
    render_svg(
        title,
        y_label,
        &[
            PlotSeries {
                label: "RadarData-Without-Attack",
                color: "#555555",
                dash: "6 4",
                values: &series.without_attack,
            },
            PlotSeries {
                label: "RadarData-With-Attack",
                color: "#c23b22",
                dash: "",
                values: &series.with_attack,
            },
            PlotSeries {
                label: "Estimated Radar Data",
                color: "#1f6fb2",
                dash: "",
                values: &series.estimated,
            },
        ],
    )
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> FigureSeries {
        FigureSeries {
            time: (0..50).map(|k| k as f64).collect(),
            without_attack: (0..50).map(|k| 100.0 - k as f64).collect(),
            with_attack: (0..50)
                .map(|k| if k == 25 { 0.0 } else { 100.0 - k as f64 })
                .collect(),
            estimated: (0..50).map(|k| 100.0 - k as f64).collect(),
        }
    }

    #[test]
    fn svg_structure() {
        let svg = figure_svg(
            "fig2a — distance",
            "Relative Distance (m)",
            &sample_series(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 3);
        assert!(svg.contains("RadarData-Without-Attack"));
        assert!(svg.contains("Estimated Radar Data"));
        assert!(svg.contains("Time (s)"));
    }

    #[test]
    fn title_is_escaped() {
        let values = [1.0, 2.0];
        let svg = render_svg(
            "a < b & c",
            "y",
            &[PlotSeries {
                label: "s",
                color: "black",
                dash: "",
                values: &values,
            }],
        );
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn non_finite_points_skipped() {
        let values = [1.0, f64::NAN, 3.0];
        let svg = render_svg(
            "t",
            "y",
            &[PlotSeries {
                label: "s",
                color: "black",
                dash: "",
                values: &values,
            }],
        );
        // Two points survive.
        let poly = svg.split("points=\"").nth(1).unwrap();
        let coords = poly.split('"').next().unwrap();
        assert_eq!(coords.split_whitespace().count(), 2);
    }

    #[test]
    fn constant_series_gets_padded_range() {
        let values = [5.0, 5.0, 5.0];
        let svg = render_svg(
            "flat",
            "y",
            &[PlotSeries {
                label: "s",
                color: "black",
                dash: "",
                values: &values,
            }],
        );
        assert!(svg.contains("<polyline"));
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_series_list_rejected() {
        let _ = render_svg("t", "y", &[]);
    }
}
