//! # argus-core — the secure-sensing pipeline and the paper's experiments
//!
//! This crate assembles every Argus substrate into the closed loop of the
//! paper's Figure 1:
//!
//! ```text
//!                 ┌──────────────  ACC system  ─────────────┐
//! leader ──► radar (CRA-modulated) ──► detector ──► RLS ──► │ upper + lower
//!    ▲        ▲                                 estimates   │ controllers
//!    │        └── attacker (DoS jamming / delay injection)  │
//!    └────────────────── follower vehicle dynamics ◄────────┘
//! ```
//!
//! * [`pipeline`] — the defense stack: CRA detection gating an RLS
//!   free-running predictor per measurement stream.
//! * [`scenario`] — the full closed-loop simulation: vehicles, radar,
//!   attacker, defense, controller, with trace recording.
//! * [`metrics`] — detection latency, confusion matrix, estimation RMSE,
//!   minimum gap / collision outcome.
//! * [`experiments`] — ready-made configurations reproducing Figures 2–3
//!   and the §6.2 results.
//! * [`campaign`] — parallel Monte-Carlo campaign runner with
//!   deterministic replay, aggregate statistics and canonical traces.
//! * [`report`] — plain-text table/series rendering for the bench harness.
//!
//! # Quickstart
//!
//! ```
//! use argus_core::prelude::*;
//!
//! // The paper's Figure 2a: DoS attack, constant leader deceleration.
//! let outcome = Experiment::fig2a().run(42);
//! assert_eq!(outcome.defended.metrics.detection_step, Some(argus_sim::Step(182)));
//! assert!(outcome.defended.metrics.confusion.is_perfect());
//! assert!(!outcome.defended.metrics.collided);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod experiments;
pub mod fused;
pub mod metrics;
pub mod pipeline;
pub mod plan;
pub mod plot;
pub mod report;
pub mod scenario;
pub mod tracker;

pub use campaign::{AttackAxis, AxisGrid, Campaign, CampaignRun, CampaignStream, TrialResult};
pub use experiments::{Experiment, ExperimentOutcome, FigureSeries};
pub use fused::{FusedOutput, FusedPipeline, FusedSnapshot, FusionParams};
pub use metrics::{CampaignStats, FusionMetrics, RunMetrics, StreamingCampaignStats};
pub use pipeline::{
    CheckpointState, MeasurementSource, PipelineOutput, PipelineSnapshot, PredictorKind,
    SecurePipeline,
};
pub use plan::{NoiseDraw, ScenarioPlan, TrialScratch, VehicleSim};

/// State PODs referenced by [`PipelineSnapshot`], re-exported so wire
/// codecs can name them without depending on the estimator/detector crates.
pub use argus_cra::DetectorState;
pub use argus_estim::PredictorState;

/// Fusion-layer types re-exported so downstream binaries and wire codecs
/// can name them without depending on `argus-fusion` directly.
pub use argus_fusion::{
    AuxAttack, AuxChannels, AuxObservation, ChannelId, FusionMode, MonitorState, PolicySnapshot,
    PolicyState,
};
pub use scenario::{Scenario, ScenarioConfig, ScenarioResult};
pub use tracker::{MultiTargetTracker, Track, TrackId, TrackerConfig};

/// Convenient glob import for downstream binaries and tests.
pub mod prelude {
    pub use crate::campaign::{
        AttackAxis, AxisGrid, Campaign, CampaignRun, CampaignStream, TrialResult,
    };
    pub use crate::experiments::{Experiment, ExperimentOutcome, FigureSeries};
    pub use crate::fused::{FusedOutput, FusedPipeline, FusedSnapshot, FusionParams};
    pub use crate::metrics::{CampaignStats, FusionMetrics, RunMetrics, StreamingCampaignStats};
    pub use crate::pipeline::{MeasurementSource, PipelineOutput, SecurePipeline};
    pub use crate::plan::{ScenarioPlan, TrialScratch};
    pub use crate::scenario::{Scenario, ScenarioConfig, ScenarioResult};
    pub use argus_attack::{Adversary, AttackKind};
    pub use argus_cra::{ChallengeSchedule, CraDetector};
    pub use argus_fusion::{AuxAttack, AuxObservation, FusionMode, PolicyState};
    pub use argus_radar::{MeasurementMode, RadarConfig};
    pub use argus_vehicle::LeaderProfile;
}
