//! Ready-made experiment definitions reproducing the paper's evaluation.
//!
//! The paper's figures each combine three series for distance and relative
//! velocity: *RadarData-Without-Attack* (a benign run), *RadarData-With-
//! Attack* (the raw, corrupted radar output of a defended run — including
//! the zero spikes at challenge instants), and *Estimated Radar Data* (the
//! values the RLS estimator hands the controller). An
//! [`ExperimentOutcome`] carries all three runs plus an undefended run for
//! the safety ablation.

use argus_attack::Adversary;
use argus_sim::time::Step;
use argus_vehicle::leader::LeaderProfile;

use crate::scenario::{Scenario, ScenarioConfig, ScenarioResult};

/// Step at which Figure 3's leader switches from braking to accelerating.
/// The paper does not state the instant; we place it well before the attack
/// onset so the estimator's local trend fit has converged on the new phase.
const FIG3_SWITCH: Step = Step(100);

/// One of the paper's evaluation experiments.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Short identifier (`fig2a`, …).
    pub id: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    profile: LeaderProfile,
    adversary: Adversary,
}

impl Experiment {
    /// Figure 2a: DoS attack, leader decelerating at −0.1082 m/s².
    pub fn fig2a() -> Self {
        Self {
            id: "fig2a",
            description: "DoS attack under constant leader deceleration",
            profile: LeaderProfile::paper_constant_decel(),
            adversary: Adversary::paper_dos(),
        }
    }

    /// Figure 2b: delay-injection attack, constant deceleration.
    pub fn fig2b() -> Self {
        Self {
            id: "fig2b",
            description: "Delay-injection attack under constant leader deceleration",
            profile: LeaderProfile::paper_constant_decel(),
            adversary: Adversary::paper_delay(),
        }
    }

    /// Figure 3a: DoS attack, leader decelerates then accelerates.
    pub fn fig3a() -> Self {
        Self {
            id: "fig3a",
            description: "DoS attack with leader deceleration then acceleration",
            profile: LeaderProfile::paper_decel_then_accel(FIG3_SWITCH),
            adversary: Adversary::paper_dos(),
        }
    }

    /// Figure 3b: delay-injection attack, decelerate-then-accelerate.
    pub fn fig3b() -> Self {
        Self {
            id: "fig3b",
            description: "Delay-injection attack with leader deceleration then acceleration",
            profile: LeaderProfile::paper_decel_then_accel(FIG3_SWITCH),
            adversary: Adversary::paper_delay(),
        }
    }

    /// All four figure experiments.
    pub fn all() -> Vec<Experiment> {
        vec![Self::fig2a(), Self::fig2b(), Self::fig3a(), Self::fig3b()]
    }

    /// The adversary of this experiment.
    pub fn adversary(&self) -> &Adversary {
        &self.adversary
    }

    /// The leader profile of this experiment.
    pub fn profile(&self) -> &LeaderProfile {
        &self.profile
    }

    /// Runs the benign reference, the defended attacked run, and the
    /// undefended attacked run (all with the same seed).
    pub fn run(&self, seed: u64) -> ExperimentOutcome {
        let benign = Scenario::new(ScenarioConfig::paper(
            self.profile.clone(),
            Adversary::benign(),
            false,
        ))
        .run(seed);
        let defended = Scenario::new(ScenarioConfig::paper(
            self.profile.clone(),
            self.adversary,
            true,
        ))
        .run(seed);
        let undefended = Scenario::new(ScenarioConfig::paper(
            self.profile.clone(),
            self.adversary,
            false,
        ))
        .run(seed);
        ExperimentOutcome {
            id: self.id,
            description: self.description,
            benign,
            defended,
            undefended,
        }
    }
}

/// The three runs of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Experiment identifier.
    pub id: &'static str,
    /// Experiment description.
    pub description: &'static str,
    /// Attack-free reference run (no CRA modulation: the smooth dashed
    /// "RadarData-Without-Attack" series).
    pub benign: ScenarioResult,
    /// Attacked run with the CRA + RLS defense active.
    pub defended: ScenarioResult,
    /// Attacked run with no defense (safety ablation).
    pub undefended: ScenarioResult,
}

/// The three aligned series of one figure panel.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSeries {
    /// Time axis in seconds.
    pub time: Vec<f64>,
    /// Benign radar data ("RadarData-Without-Attack").
    pub without_attack: Vec<f64>,
    /// Raw radar data under attack, zero spikes included
    /// ("RadarData-With-Attack").
    pub with_attack: Vec<f64>,
    /// RLS-estimated values consumed by the controller
    /// ("Estimated Radar Data").
    pub estimated: Vec<f64>,
}

impl FigureSeries {
    fn build(outcome: &ExperimentOutcome, radar: &str, used: &str) -> Self {
        let clean = outcome.benign.series(radar);
        let attacked = outcome.defended.series(radar);
        let estimated = outcome.defended.series(used);
        let n = clean.len().min(attacked.len()).min(estimated.len());
        FigureSeries {
            time: (0..n).map(|k| k as f64).collect(),
            without_attack: clean[..n].to_vec(),
            with_attack: attacked[..n].to_vec(),
            estimated: estimated[..n].to_vec(),
        }
    }

    /// Number of aligned samples.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// `true` when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }
}

impl ExperimentOutcome {
    /// Relative-distance panel of the figure.
    pub fn distance_series(&self) -> FigureSeries {
        FigureSeries::build(self, "d_radar", "d_used")
    }

    /// Relative-velocity panel of the figure.
    pub fn velocity_series(&self) -> FigureSeries {
        FigureSeries::build(self, "v_radar", "v_used")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_four_unique_experiments() {
        let all = Experiment::all();
        assert_eq!(all.len(), 4);
        let mut ids: Vec<_> = all.iter().map(|e| e.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn fig2a_reproduces_headline_results() {
        let outcome = Experiment::fig2a().run(11);
        // Detection at k = 182 with a perfect confusion matrix.
        assert_eq!(outcome.defended.metrics.detection_step, Some(Step(182)));
        assert!(outcome.defended.metrics.confusion.is_perfect());
        // Defense keeps the vehicle safe; no defense does not.
        assert!(!outcome.defended.metrics.collided);
        assert!(
            outcome.undefended.metrics.collided
                || outcome.undefended.metrics.min_gap < outcome.defended.metrics.min_gap
        );
    }

    #[test]
    fn fig2b_delay_attack_detected() {
        let outcome = Experiment::fig2b().run(11);
        assert_eq!(outcome.defended.metrics.detection_step, Some(Step(182)));
        assert!(outcome.defended.metrics.confusion.is_perfect());
        assert!(!outcome.defended.metrics.collided);
    }

    #[test]
    fn figure_series_are_aligned() {
        let outcome = Experiment::fig2a().run(3);
        let d = outcome.distance_series();
        assert!(!d.is_empty());
        assert_eq!(d.time.len(), d.without_attack.len());
        assert_eq!(d.time.len(), d.with_attack.len());
        assert_eq!(d.time.len(), d.estimated.len());
        let v = outcome.velocity_series();
        assert_eq!(v.len(), v.estimated.len());
    }

    #[test]
    fn attacked_series_deviates_only_after_onset() {
        let outcome = Experiment::fig2b().run(5);
        let d = outcome.distance_series();
        // Before the attack (and away from challenge spikes), attacked and
        // clean series track each other.
        for k in 60..170 {
            let spike = d.with_attack[k] == 0.0 || d.without_attack[k] == 0.0;
            if !spike {
                assert!(
                    (d.with_attack[k] - d.without_attack[k]).abs() < 8.0,
                    "premature divergence at k={k}"
                );
            }
        }
        // After onset the delay attack shifts distance by ≈ +6 m (visible
        // against a gap whose defended trajectory matches the benign one).
        let deviated = (185..260)
            .filter(|&k| d.with_attack[k] != 0.0)
            .filter(|&k| (d.with_attack[k] - d.estimated[k]) > 3.0)
            .count();
        assert!(deviated > 30, "delay shift not visible ({deviated} steps)");
    }

    #[test]
    fn fig3_profiles_switch_mid_run() {
        let outcome = Experiment::fig3a().run(2);
        let v_leader = outcome.benign.series("v_leader");
        // Leader speed falls until the switch (k = 100), then rises.
        assert!(v_leader[99] < v_leader[50]);
        assert!(v_leader[250] > v_leader[110]);
    }
}
