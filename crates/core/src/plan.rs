//! Amortized trial execution: the [`ScenarioPlan`].
//!
//! [`Scenario::run`](crate::scenario::Scenario::run) is convenient but pays
//! for trial-invariant work on every call: the radar link budget (a `powf`
//! chain), controller-gain validation inside [`VehiclePair`], the detector's
//! challenge schedule, and a fresh scratch arena. A campaign repeats all of
//! it thousands to millions of times with identical inputs.
//!
//! A `ScenarioPlan` hoists everything that depends only on the
//! [`ScenarioConfig`] into one immutable, `Sync` value built **once per
//! campaign axis point** and shared `Arc`-style across pool workers. What
//! remains per trial is exactly what must differ per trial: the RNG streams,
//! the vehicle state, the detector/estimator state, and the stepping itself.
//!
//! The plan owns the single implementation of the closed loop —
//! `Scenario::run` is now a thin wrapper that builds a transient plan with
//! bit-exact options, so the two paths cannot drift apart.
//!
//! Determinism: a [`TrialScratch`] is reset at the start of every trial, so
//! warm-start state (eigen basis, root seeds) never leaks across trials and
//! results are independent of which worker ran which trial, even with
//! [`ScratchOptions::fast`].

use std::time::Instant;

use argus_attack::AttackKind;
use argus_cra::detector::{ConfusionMatrix, CraDetector};
use argus_dsp::batch::FrameBatch;
use argus_dsp::scratch::{FrameScratch, ScratchOptions};
use argus_fusion::{AuxChannels, AuxObservation, PolicyState};
use argus_radar::receiver::{
    PendingObservation, Radar, RadarMeasurement, RadarObservation, RadarScratch,
};
use argus_radar::target::RadarTarget;
use argus_sim::noise::Gaussian;
use argus_sim::rng::SimRng;
use argus_sim::time::{Step, TimeBase};
use argus_sim::trace::{Trace, TraceSet};
use argus_sim::units::{Meters, MetersPerSecond, Seconds};
use argus_vehicle::pair::VehiclePair;

use crate::fused::{FusedPipeline, FusionParams};
use crate::metrics::{FusionMetrics, RunMetrics};
use crate::pipeline::{MeasurementSource, SecurePipeline};
use crate::scenario::{ScenarioConfig, ScenarioResult};

/// Radar cross-section of the leader vehicle (a passenger car ≈ 10 m²).
const LEADER_RCS: f64 = 10.0;

/// Per-step record of everything observable in the loop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StepRecord {
    gap_true: f64,
    v_rel_true: f64,
    d_radar: f64,
    v_radar: f64,
    d_used: f64,
    v_used: f64,
    v_follower: f64,
    v_leader: f64,
    received_power: f64,
    under_attack: f64,
    estimated: f64,
    // Fusion-layer series, recorded (and emitted as traces) only when the
    // run used a fused pipeline; zero-filled otherwise.
    d_camera: f64,
    v_v2v: f64,
    d_fused: f64,
    trust_radar: f64,
    trust_camera: f64,
    trust_v2v: f64,
    ids_alarm: f64,
    safe_mode: f64,
}

/// Reusable per-worker state for plan-driven trials.
///
/// Holds the radar DSP arena and the step-record buffer; both keep their
/// capacity across trials so a warm worker allocates nothing per trial.
#[derive(Debug)]
pub struct TrialScratch {
    radar: RadarScratch,
    records: Vec<StepRecord>,
}

impl TrialScratch {
    /// Creates a scratch with the given DSP options.
    pub fn new(options: ScratchOptions) -> Self {
        Self {
            radar: RadarScratch::new(options),
            records: Vec::new(),
        }
    }

    /// Scratch matching a plan's options.
    pub fn for_plan(plan: &ScenarioPlan) -> Self {
        Self::new(plan.options())
    }

    /// The DSP options this scratch was built with.
    pub fn options(&self) -> ScratchOptions {
        self.radar.options()
    }

    /// Clears buffered state and warm-start history (capacity retained), so
    /// the next trial behaves like the first.
    pub fn reset(&mut self) {
        self.radar.reset();
        self.records.clear();
    }

    /// Read access to the radar DSP arena. After a signal-mode observation
    /// `frame.up` / `frame.down` hold the last frame's dechirped baseband —
    /// the raw samples a DSP-offload client ships over the wire.
    pub fn radar_scratch(&self) -> &RadarScratch {
        &self.radar
    }
}

/// One sampled measurement-noise realization (Eqn 2): the additive terms
/// applied to an extracted measurement, exposed by
/// [`VehicleSim::observe_traced`] for raw-baseband gateway clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseDraw {
    /// Additive distance noise (m).
    pub distance: f64,
    /// Additive range-rate noise (m/s).
    pub range_rate: f64,
}

/// The client side of one trial: the vehicle plant, radar front-end,
/// measurement noise and adversary — everything in the closed loop *except*
/// the defense, which may run in-process ([`ScenarioPlan::run_metrics`]) or
/// behind a gateway (a serving client steps the sim, ships each observation,
/// and feeds the returned safe measurement back into [`VehicleSim::advance`]).
///
/// Splitting the loop here is what makes gateway byte-identity checkable:
/// the same `VehicleSim` code produces the observation stream on both paths,
/// so any divergence is attributable to the pipeline transport.
#[derive(Debug, Clone)]
pub struct VehicleSim<'p> {
    plan: &'p ScenarioPlan,
    pair: VehiclePair,
    radar_rng: SimRng,
    noise_rng: SimRng,
    /// Per-trial attacker state: the `"attacker"` RNG substream plus any
    /// stateful machinery (replay recording). Independent of the radar and
    /// measurement-noise streams, so adding attacker draws never perturbs
    /// them.
    attack: argus_attack::AttackRuntime,
    /// Auxiliary sensor channels (camera + V2V), present only for fused
    /// runs. Their draws come from dedicated substreams, so CRA-only
    /// trials remain bit-identical whether or not fusion code exists.
    aux: Option<AuxChannels>,
}

impl VehicleSim<'_> {
    /// Whether the vehicles have collided.
    pub fn collided(&self) -> bool {
        self.pair.collided()
    }

    /// The vehicle pair (ground truth).
    pub fn pair(&self) -> &VehiclePair {
        &self.pair
    }

    /// Trusted ego (follower) speed — the input the pipeline receives
    /// alongside each observation.
    pub fn own_speed(&self) -> MetersPerSecond {
        self.pair.follower().speed()
    }

    /// Produces the radar observation for step `k` (target from the current
    /// ground truth, adversary channel, radar front-end, additive
    /// measurement noise — Eqn 2). `tx_on` is the CRA modulation decision
    /// for this instant (`schedule.tx_on(k)` when defended).
    pub fn observe(
        &mut self,
        k: Step,
        tx_on: bool,
        scratch: &mut TrialScratch,
    ) -> RadarObservation {
        self.observe_traced(k, tx_on, scratch).0
    }

    /// [`VehicleSim::observe`] plus the sampled measurement-noise
    /// realization. A raw-baseband gateway client ships the realization
    /// alongside the frame: the server re-extracts the measurement from the
    /// samples and applies the same additive draws, so the post-noise values
    /// stay bit-identical to local extraction.
    pub fn observe_traced(
        &mut self,
        k: Step,
        tx_on: bool,
        scratch: &mut TrialScratch,
    ) -> (RadarObservation, Option<NoiseDraw>) {
        let gap = self.pair.gap();
        let v_rel = self.pair.relative_speed();
        let target = if gap.value() > 0.0 {
            Some(RadarTarget::new(gap, v_rel, LEADER_RCS))
        } else {
            None
        };
        let channel = self.plan.config.adversary.channel_at_with(
            k,
            tx_on,
            target.as_ref(),
            &self.plan.radar,
            &mut self.attack,
        );
        let mut obs = self.plan.radar.observe_with_scratch(
            tx_on,
            target.as_ref(),
            &channel,
            &mut self.radar_rng,
            &mut scratch.radar,
        );
        // Eqn 2: additive Gaussian measurement noise v_k on the sampled
        // outputs.
        let mut draw = None;
        if let Some(m) = obs.measurement.as_mut() {
            let nd = self.plan.d_noise.sample(&mut self.noise_rng);
            let nv = self.plan.v_noise.sample(&mut self.noise_rng);
            m.distance += Meters(nd);
            m.range_rate += MetersPerSecond(nv);
            draw = Some(NoiseDraw {
                distance: nd,
                range_rate: nv,
            });
        }
        (obs, draw)
    }

    /// First half of a staged observation: adversary channel, echo
    /// assembly and (in signal mode) baseband synthesis — everything up to
    /// beat-frequency extraction. Draws from the radar RNG in exactly the
    /// order of [`VehicleSim::observe_traced`]; measurement-noise draws are
    /// deferred to [`VehicleSim::observe_batch_finish`], so splitting an
    /// observation never perturbs any stream.
    pub fn observe_batch_begin(
        &mut self,
        k: Step,
        tx_on: bool,
        scratch: &mut TrialScratch,
    ) -> PendingObservation {
        let gap = self.pair.gap();
        let v_rel = self.pair.relative_speed();
        let target = if gap.value() > 0.0 {
            Some(RadarTarget::new(gap, v_rel, LEADER_RCS))
        } else {
            None
        };
        let channel = self.plan.config.adversary.channel_at_with(
            k,
            tx_on,
            target.as_ref(),
            &self.plan.radar,
            &mut self.attack,
        );
        self.plan.radar.observe_batch_begin(
            tx_on,
            target.as_ref(),
            &channel,
            &mut self.radar_rng,
            &mut scratch.radar,
        )
    }

    /// Second half of a staged observation: assembles the final
    /// [`RadarObservation`] (from the `Ready` payload, or the `Deferred`
    /// power/jam state plus the batch-extracted `measurement`) and applies
    /// the Eqn 2 additive measurement noise in the scalar path's exact
    /// draw order.
    pub fn observe_batch_finish(
        &mut self,
        pending: PendingObservation,
        measurement: Option<RadarMeasurement>,
    ) -> (RadarObservation, Option<NoiseDraw>) {
        let mut obs = match pending {
            PendingObservation::Ready(obs) => obs,
            PendingObservation::Deferred {
                received_power,
                jammed,
                ..
            } => RadarObservation {
                measurement,
                received_power,
                jammed,
            },
        };
        let mut draw = None;
        if let Some(m) = obs.measurement.as_mut() {
            let nd = self.plan.d_noise.sample(&mut self.noise_rng);
            let nv = self.plan.v_noise.sample(&mut self.noise_rng);
            m.distance += Meters(nd);
            m.range_rate += MetersPerSecond(nv);
            draw = Some(NoiseDraw {
                distance: nd,
                range_rate: nv,
            });
        }
        (obs, draw)
    }

    /// Advances the plant one step on the controller inputs (the safe
    /// measurement's control distance and relative speed).
    pub fn advance(&mut self, control_distance: Option<Meters>, relative_speed: MetersPerSecond) {
        self.pair.advance(control_distance, relative_speed);
    }

    /// Samples the auxiliary channels (camera range, V2V leader speed)
    /// for step `k` from the current ground truth. Returns an empty
    /// observation — and consumes no RNG draws — when the scenario is not
    /// fused, so calling this unconditionally is free for CRA-only runs.
    pub fn observe_aux(&mut self, k: Step) -> AuxObservation {
        let gap = self.pair.gap().value();
        let v_leader = self.pair.leader().velocity.value();
        match self.aux.as_mut() {
            Some(channels) => channels.sample(k, gap, v_leader),
            None => AuxObservation::default(),
        }
    }
}

/// All trial-invariant state of a scenario, precomputed.
///
/// ```
/// use argus_core::plan::{ScenarioPlan, TrialScratch};
/// use argus_core::scenario::ScenarioConfig;
/// use argus_attack::Adversary;
/// use argus_vehicle::LeaderProfile;
///
/// let plan = ScenarioPlan::new(ScenarioConfig::paper(
///     LeaderProfile::paper_constant_decel(),
///     Adversary::paper_dos(),
///     true,
/// ));
/// let mut scratch = TrialScratch::for_plan(&plan);
/// let metrics = plan.run_metrics(7, &mut scratch);
/// assert_eq!(metrics.detection_step.unwrap().0, 182);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioPlan {
    config: ScenarioConfig,
    options: ScratchOptions,
    /// Radar with the link budget (noise floor) baked in at construction.
    radar: Radar,
    d_noise: Gaussian,
    v_noise: Gaussian,
    /// Validated initial vehicle state; cloned per trial.
    pair_proto: VehiclePair,
    /// Fresh defense pipeline (detector schedule + threshold checked and
    /// predictor config built once); cloned per trial. The prototype is
    /// never stepped, so a clone is indistinguishable from a fresh build.
    pipeline_proto: Option<SecurePipeline>,
    /// Fused-pipeline prototype wrapping `pipeline_proto`, present only
    /// when the config selects a fused mode (and the defense is on).
    fused_proto: Option<FusedPipeline>,
}

impl ScenarioPlan {
    /// Builds a plan with bit-exact DSP options (the golden-trace default).
    ///
    /// # Panics
    ///
    /// Panics if the horizon is zero, a noise std-dev is negative, or the
    /// initial conditions are invalid — the same contract as
    /// [`Scenario::new`](crate::scenario::Scenario::new), but paid once per
    /// plan instead of once per trial.
    pub fn new(config: ScenarioConfig) -> Self {
        Self::with_options(config, ScratchOptions::bit_exact())
    }

    /// Builds a plan with explicit DSP options (`fast` for sweeps).
    pub fn with_options(config: ScenarioConfig, options: ScratchOptions) -> Self {
        assert!(config.horizon > 0, "horizon must be positive");
        assert!(
            config.distance_noise >= 0.0 && config.speed_noise >= 0.0,
            "noise std-devs must be non-negative"
        );
        let radar = Radar::new(config.radar);
        let d_noise = Gaussian::new(0.0, config.distance_noise);
        let v_noise = Gaussian::new(0.0, config.speed_noise);
        let pair_proto = VehiclePair::new(
            argus_control::acc::AccConfig::paper(config.set_speed),
            config.profile.clone(),
            config.initial_gap,
            config.initial_speed,
            config.initial_speed,
        )
        .expect("scenario initial conditions are valid");
        let pipeline_proto = config.defended.then(|| {
            let detector =
                CraDetector::new(config.schedule.clone(), config.radar.detection_threshold);
            let predictor = config
                .predictor
                .build()
                .expect("built-in predictor configs are valid");
            SecurePipeline::new(detector, predictor, Seconds(1.0))
        });
        let fused_proto = config.fusion_active().then(|| {
            let cra = pipeline_proto
                .clone()
                .expect("fusion_active implies a defended pipeline");
            FusedPipeline::new(cra, FusionParams::paper(config.fusion), Seconds(1.0))
        });
        Self {
            config,
            options,
            radar,
            d_noise,
            v_noise,
            pair_proto,
            pipeline_proto,
            fused_proto,
        }
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The DSP options trials run with.
    pub fn options(&self) -> ScratchOptions {
        self.options
    }

    /// Builds the client half of a trial: plant + radar + adversary with the
    /// trial's RNG streams. [`Self::run_metrics`] drives the same object, so
    /// an external defense (e.g. a gateway session) fed this sim's
    /// observations sees byte-identical inputs to the in-process pipeline.
    pub fn vehicle_sim(&self, seed: u64) -> VehicleSim<'_> {
        let root_rng = SimRng::seed_from(seed);
        VehicleSim {
            plan: self,
            pair: self.pair_proto.clone(),
            radar_rng: root_rng.substream("radar"),
            noise_rng: root_rng.substream("measurement-noise"),
            attack: self
                .config
                .adversary
                .runtime(root_rng.substream("attacker")),
            // Substream derivation never advances the parent, so the aux
            // channels leave the radar/noise/attacker streams untouched.
            aux: self.config.fusion_active().then(|| {
                AuxChannels::paper(
                    root_rng.substream("camera"),
                    root_rng.substream("v2v"),
                    root_rng.substream("attacker").substream("aux"),
                )
                .with_attack(self.config.aux_attack)
            }),
        }
    }

    /// Builds the per-trial defense instance matching the configuration.
    fn defense_instance(&self) -> Defense {
        match (&self.fused_proto, &self.pipeline_proto) {
            (Some(f), _) => Defense::Fused(f.clone()),
            (None, Some(p)) => Defense::Cra(p.clone()),
            (None, None) => Defense::None,
        }
    }

    /// Start of the post-onset accuracy window: the attack onset step, for
    /// defended runs with a real adversary. `None` disables the metric
    /// (benign or undefended runs).
    fn post_onset_start(&self) -> Option<u64> {
        let attacked = !matches!(self.config.adversary.kind(), AttackKind::None);
        (self.config.defended && attacked).then(|| self.config.adversary.window().start().0)
    }

    /// Runs one trial and returns only its metrics — the campaign hot path.
    ///
    /// No trace is recorded and nothing is allocated once `scratch` is warm.
    pub fn run_metrics(&self, seed: u64, scratch: &mut TrialScratch) -> RunMetrics {
        self.run_inner(seed, scratch, false)
    }

    /// Runs one trial and returns the full trace set plus metrics.
    pub fn run_traced(&self, seed: u64, scratch: &mut TrialScratch) -> ScenarioResult {
        let metrics = self.run_inner(seed, scratch, true);
        ScenarioResult {
            traces: build_traces(&scratch.records, self.fused_proto.is_some()),
            metrics,
        }
    }

    /// Runs a group of trials in lockstep, gathering same-step signal-mode
    /// frames into one vectorized root-MUSIC pass per step
    /// ([`FrameBatch`]). Seeds beyond the pool size run in successive
    /// chunks of `pool.len()` trials.
    ///
    /// Byte-identical to mapping each seed through [`Self::run_metrics`]:
    /// every trial keeps its own RNG substreams, scratch arena and pipeline
    /// state, so batching only reorders work *between* trials — and the
    /// per-trial streams are independent by construction. With
    /// [`ScratchOptions::bit_exact`] the frames still batch through the
    /// staged path, but every kernel runs its scalar code.
    pub fn run_trials_batched(&self, seeds: &[u64], pool: &mut [TrialScratch]) -> Vec<RunMetrics> {
        assert!(!pool.is_empty(), "scratch pool must be non-empty");
        let cfg = &self.config;
        let post_start = self.post_onset_start();
        let mut out = Vec::with_capacity(seeds.len());
        let mut batch = FrameBatch::new();
        let mut measurements: Vec<RadarMeasurement> = Vec::new();

        for chunk in seeds.chunks(pool.len()) {
            let mut lanes: Vec<TrialLane<'_>> = chunk
                .iter()
                .zip(pool.iter_mut())
                .map(|(&seed, scratch)| {
                    scratch.reset();
                    TrialLane {
                        sim: self.vehicle_sim(seed),
                        defense: self.defense_instance(),
                        pending: None,
                        acc: TrialAccum::new(),
                        done: false,
                    }
                })
                .collect();

            for k_idx in 0..cfg.horizon {
                let k = Step(k_idx as u64);

                // Begin: per-trial channel + synthesis into its own arena.
                for (lane, scratch) in lanes.iter_mut().zip(pool.iter_mut()) {
                    if lane.done {
                        continue;
                    }
                    if lane.sim.collided() {
                        lane.acc.collided = true;
                        lane.done = true;
                        continue;
                    }
                    lane.acc.min_gap = lane.acc.min_gap.min(lane.sim.pair().gap().value());
                    let tx_on = lane.defense.tx_on(k);
                    lane.pending = Some(lane.sim.observe_batch_begin(k, tx_on, scratch));
                }

                // Extract: gather every deferred frame into one batch pass.
                measurements.clear();
                {
                    let mut jobs: Vec<(f64, &mut FrameScratch)> = Vec::new();
                    for (lane, scratch) in lanes.iter_mut().zip(pool.iter_mut()) {
                        if let Some(PendingObservation::Deferred { snr, .. }) = &lane.pending {
                            jobs.push((*snr, &mut scratch.radar.frame));
                        }
                    }
                    self.radar.measurement_from_baseband_batch(
                        &mut jobs,
                        &mut batch,
                        &mut measurements,
                    );
                }

                // Finish: noise draws, defense pipeline, plant advance.
                let mut next_measurement = measurements.iter().copied();
                for lane in lanes.iter_mut() {
                    let Some(pending) = lane.pending.take() else {
                        continue;
                    };
                    let measurement = match &pending {
                        PendingObservation::Deferred { .. } => Some(
                            next_measurement
                                .next()
                                .expect("one extracted measurement per deferred frame"),
                        ),
                        PendingObservation::Ready(_) => None,
                    };
                    let (obs, _draw) = lane.sim.observe_batch_finish(pending, measurement);
                    let aux = lane.sim.observe_aux(k);
                    let gap = lane.sim.pair().gap();

                    let own_speed = lane.sim.own_speed();
                    let out = lane
                        .defense
                        .step(cfg, k, &obs, &aux, own_speed, &mut lane.acc);
                    lane.acc.absorb_errors(&out, gap, k, post_start);

                    lane.sim.advance(out.d_control, out.v_used);
                }
            }

            for mut lane in lanes {
                if lane.sim.collided() {
                    lane.acc.collided = true;
                    lane.acc.min_gap = lane.acc.min_gap.min(0.0);
                }
                let fusion = lane.defense.fusion_metrics();
                out.push(lane.acc.into_metrics(cfg, fusion));
            }
        }
        out
    }

    /// The closed loop of the paper's Figure 1 — the only implementation.
    fn run_inner(&self, seed: u64, scratch: &mut TrialScratch, record: bool) -> RunMetrics {
        let cfg = &self.config;
        // Warm-start state must never leak across trials: results stay
        // independent of worker scheduling even with fast options.
        scratch.reset();

        let mut sim = self.vehicle_sim(seed);
        let mut defense = self.defense_instance();
        let mut acc = TrialAccum::new();
        let post_start = self.post_onset_start();

        for k_idx in 0..cfg.horizon {
            let k = Step(k_idx as u64);
            if sim.collided() {
                acc.collided = true;
                break;
            }
            let gap = sim.pair().gap();
            let v_rel = sim.pair().relative_speed();
            acc.min_gap = acc.min_gap.min(gap.value());

            let tx_on = defense.tx_on(k);
            let obs = sim.observe(k, tx_on, scratch);
            let aux = sim.observe_aux(k);

            let (d_radar, v_radar) = raw_series_values(&obs);

            let own_speed = sim.own_speed();
            let out = defense.step(cfg, k, &obs, &aux, own_speed, &mut acc);
            acc.absorb_errors(&out, gap, k, post_start);

            if record {
                scratch.records.push(StepRecord {
                    gap_true: gap.value(),
                    v_rel_true: v_rel.value(),
                    d_radar,
                    v_radar,
                    d_used: out.d_used.map_or(0.0, |d| d.value()),
                    v_used: out.v_used.value(),
                    v_follower: sim.own_speed().value(),
                    v_leader: sim.pair().leader().velocity.value(),
                    received_power: obs.received_power.value(),
                    under_attack: f64::from(u8::from(out.under_attack)),
                    estimated: f64::from(u8::from(out.estimated)),
                    d_camera: aux.camera_range.unwrap_or(0.0),
                    v_v2v: aux.v2v_leader_speed.unwrap_or(0.0),
                    d_fused: out.fused.and_then(|f| f.d_fused).unwrap_or(0.0),
                    trust_radar: out.fused.map_or(1.0, |f| f.trust[0]),
                    trust_camera: out.fused.map_or(1.0, |f| f.trust[1]),
                    trust_v2v: out.fused.map_or(1.0, |f| f.trust[2]),
                    ids_alarm: f64::from(u8::from(out.fused.is_some_and(|f| f.ids_alarm))),
                    safe_mode: f64::from(u8::from(out.fused.is_some_and(|f| f.safe_mode))),
                });
            }

            sim.advance(out.d_control, out.v_used);
        }
        if sim.collided() {
            acc.collided = true;
            acc.min_gap = acc.min_gap.min(0.0);
        }

        acc.into_metrics(cfg, defense.fusion_metrics())
    }
}

/// Which defense stack sits between the radar and the controller:
/// nothing (undefended baseline), the paper's single-radar CRA pipeline,
/// or the attack-aware fused pipeline. One enum shared by the sequential
/// and batched trial paths, so their per-step accounting cannot drift.
// One `Defense` lives per trial, on the trial's own stack frame; boxing
// the fused arm would put a pointer chase in every per-step dispatch.
#[allow(clippy::large_enum_variant)]
enum Defense {
    None,
    Cra(SecurePipeline),
    Fused(FusedPipeline),
}

/// Fusion-layer observables of one step, recorded into traces.
#[derive(Debug, Clone, Copy)]
struct FusedStepInfo {
    d_fused: Option<f64>,
    trust: [f64; 3],
    ids_alarm: bool,
    safe_mode: bool,
}

/// What one defense step hands back to the loop driver.
struct StepOut {
    d_used: Option<Meters>,
    d_control: Option<Meters>,
    v_used: MetersPerSecond,
    under_attack: bool,
    estimated: bool,
    fused: Option<FusedStepInfo>,
}

impl Defense {
    /// CRA modulation decision for step `k` (always transmit undefended).
    fn tx_on(&self, k: Step) -> bool {
        match self {
            Defense::None => true,
            Defense::Cra(p) => p.tx_on(k),
            Defense::Fused(p) => p.tx_on(k),
        }
    }

    /// Processes one observation through the defense, folding detection,
    /// confusion and estimation accounting into `acc`. The CRA arm is a
    /// verbatim transplant of the pre-fusion per-step code, so CRA-only
    /// trials stay bit-identical.
    fn step(
        &mut self,
        cfg: &ScenarioConfig,
        k: Step,
        obs: &RadarObservation,
        aux: &AuxObservation,
        own_speed: MetersPerSecond,
        acc: &mut TrialAccum,
    ) -> StepOut {
        match self {
            Defense::None => {
                let d = obs.measurement.map(|m| m.distance);
                let v = obs
                    .measurement
                    .map(|m| MetersPerSecond(m.range_rate.value()))
                    .unwrap_or(MetersPerSecond(0.0));
                StepOut {
                    d_used: d,
                    d_control: d,
                    v_used: v,
                    under_attack: false,
                    estimated: false,
                    fused: None,
                }
            }
            Defense::Cra(p) => {
                let t0 = Instant::now();
                let out = p.process(k, obs, own_speed);
                let dt_ns = t0.elapsed().as_nanos();
                let attacked = out.verdict.under_attack();
                if attacked {
                    acc.estimation_time_ns += dt_ns;
                    acc.estimation_steps += 1;
                    if acc.detection_step.is_none() {
                        acc.detection_step = p.detector().first_detection();
                    }
                }
                if cfg.schedule.is_challenge(k) {
                    acc.confusion.record(cfg.adversary.active(k), attacked);
                }
                StepOut {
                    d_used: out.distance,
                    d_control: out.control_distance,
                    v_used: out.relative_speed,
                    under_attack: attacked,
                    estimated: matches!(out.source, MeasurementSource::Estimated),
                    fused: None,
                }
            }
            Defense::Fused(p) => {
                let t0 = Instant::now();
                let out = p.process(k, obs, aux, own_speed);
                let dt_ns = t0.elapsed().as_nanos();
                let attacked = out.cra.verdict.under_attack();
                if attacked {
                    acc.estimation_time_ns += dt_ns;
                    acc.estimation_steps += 1;
                    if acc.detection_step.is_none() {
                        acc.detection_step = p.cra().detector().first_detection();
                    }
                }
                if cfg.schedule.is_challenge(k) {
                    acc.confusion.record(cfg.adversary.active(k), attacked);
                }
                // The sequential IDS can fire between challenge instants;
                // detection is whichever tripped first.
                if let Some(ids) = p.ids_detection() {
                    acc.detection_step = Some(match acc.detection_step {
                        Some(cra) if cra.0 <= ids.0 => cra,
                        _ => ids,
                    });
                }
                StepOut {
                    d_used: out.distance,
                    d_control: out.control_distance,
                    v_used: out.relative_speed,
                    under_attack: attacked,
                    estimated: matches!(out.cra.source, MeasurementSource::Estimated),
                    fused: Some(FusedStepInfo {
                        d_fused: out.fused.map(|f| f.value),
                        trust: out.trust,
                        ids_alarm: !out.alarms.is_empty(),
                        safe_mode: out.policy_state == PolicyState::SafeMode,
                    }),
                }
            }
        }
    }

    /// Fusion campaign metrics, for fused trials only.
    fn fusion_metrics(&self) -> Option<FusionMetrics> {
        match self {
            Defense::Fused(p) => Some(FusionMetrics {
                mode: p.mode(),
                ids_detection_step: p.ids_detection(),
                safe_mode_steps: p.safe_mode_steps(),
            }),
            _ => None,
        }
    }
}

/// Per-trial accounting shared by the sequential and batched paths —
/// exactly the pre-fusion locals of `run_inner`, plus the post-onset
/// accuracy accumulator.
struct TrialAccum {
    confusion: ConfusionMatrix,
    estimation_time_ns: u128,
    estimation_steps: u64,
    detection_step: Option<Step>,
    collided: bool,
    min_gap: f64,
    attack_err_sq: f64,
    attack_err_n: u64,
    post_err_sq: f64,
    post_err_n: u64,
}

impl TrialAccum {
    fn new() -> Self {
        Self {
            confusion: ConfusionMatrix::new(),
            estimation_time_ns: 0,
            estimation_steps: 0,
            detection_step: None,
            collided: false,
            min_gap: f64::MAX,
            attack_err_sq: 0.0,
            attack_err_n: 0,
            post_err_sq: 0.0,
            post_err_n: 0,
        }
    }

    /// Folds this step's distance errors into the attack-window and
    /// post-onset accumulators.
    fn absorb_errors(&mut self, out: &StepOut, gap: Meters, k: Step, post_start: Option<u64>) {
        if out.under_attack {
            if let Some(d) = out.d_used {
                self.attack_err_sq += (d.value() - gap.value()).powi(2);
                self.attack_err_n += 1;
            }
        }
        if let Some(start) = post_start {
            if k.0 >= start {
                if let Some(d) = out.d_used {
                    self.post_err_sq += (d.value() - gap.value()).powi(2);
                    self.post_err_n += 1;
                }
            }
        }
    }

    /// Finalizes the trial's metrics.
    fn into_metrics(self, cfg: &ScenarioConfig, fusion: Option<FusionMetrics>) -> RunMetrics {
        let detection_latency = match (self.detection_step, &cfg.adversary) {
            (Some(det), adv) if adv.active(det) => {
                Some(det.0.saturating_sub(adv.window().start().0))
            }
            _ => None,
        };
        RunMetrics {
            min_gap: self.min_gap,
            collided: self.collided,
            detection_step: self.detection_step,
            detection_latency,
            estimation_steps: self.estimation_steps,
            estimation_time_ns: self.estimation_time_ns,
            confusion: self.confusion,
            attack_window_distance_rmse: if self.attack_err_n > 0 {
                Some((self.attack_err_sq / self.attack_err_n as f64).sqrt())
            } else {
                None
            },
            post_onset_distance_rmse: if self.post_err_n > 0 {
                Some((self.post_err_sq / self.post_err_n as f64).sqrt())
            } else {
                None
            },
            fusion,
        }
    }
}

/// Mutable per-trial state of one lockstep lane in
/// [`ScenarioPlan::run_trials_batched`] — exactly the locals of
/// `run_inner`, held per trial so a whole chunk can advance one step at a
/// time.
struct TrialLane<'p> {
    sim: VehicleSim<'p>,
    defense: Defense,
    pending: Option<PendingObservation>,
    acc: TrialAccum,
    done: bool,
}

fn raw_series_values(obs: &RadarObservation) -> (f64, f64) {
    match obs.measurement {
        // Paper figures plot the radar output directly; at challenge
        // instants with a clean channel the output is zero (the spikes in
        // Figures 2–3).
        None => (0.0, 0.0),
        Some(m) => (m.distance.value(), m.range_rate.value()),
    }
}

fn build_traces(records: &[StepRecord], fused: bool) -> TraceSet {
    let tb = TimeBase::new(Seconds(1.0));
    let mut set = TraceSet::new();
    let mut push = |name: &str, f: fn(&StepRecord) -> f64| {
        set.insert(Trace::from_values(
            name,
            tb,
            records.iter().map(f).collect(),
        ));
    };
    push("gap_true", |r| r.gap_true);
    push("v_rel_true", |r| r.v_rel_true);
    push("d_radar", |r| r.d_radar);
    push("v_radar", |r| r.v_radar);
    push("d_used", |r| r.d_used);
    push("v_used", |r| r.v_used);
    push("v_follower", |r| r.v_follower);
    push("v_leader", |r| r.v_leader);
    push("received_power", |r| r.received_power);
    push("under_attack", |r| r.under_attack);
    push("estimated", |r| r.estimated);
    if fused {
        push("d_camera", |r| r.d_camera);
        push("v_v2v", |r| r.v_v2v);
        push("d_fused", |r| r.d_fused);
        push("trust_radar", |r| r.trust_radar);
        push("trust_camera", |r| r.trust_camera);
        push("trust_v2v", |r| r.trust_v2v);
        push("ids_alarm", |r| r.ids_alarm);
        push("safe_mode", |r| r.safe_mode);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use argus_attack::Adversary;
    use argus_vehicle::leader::LeaderProfile;

    fn dos_config() -> ScenarioConfig {
        ScenarioConfig::paper(
            LeaderProfile::paper_constant_decel(),
            Adversary::paper_dos(),
            true,
        )
    }

    #[test]
    fn plan_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<ScenarioPlan>();
    }

    #[test]
    fn plan_matches_scenario_run_exactly() {
        let plan = ScenarioPlan::new(dos_config());
        let mut scratch = TrialScratch::for_plan(&plan);
        let via_plan = plan.run_traced(7, &mut scratch);
        let via_scenario = Scenario::new(dos_config()).run(7);
        assert_eq!(via_plan.series("gap_true"), via_scenario.series("gap_true"));
        assert_eq!(via_plan.series("d_radar"), via_scenario.series("d_radar"));
        assert_eq!(
            via_plan.metrics.detection_step,
            via_scenario.metrics.detection_step
        );
        assert_eq!(via_plan.metrics.min_gap, via_scenario.metrics.min_gap);
    }

    #[test]
    fn run_metrics_equals_traced_metrics() {
        let plan = ScenarioPlan::new(dos_config());
        let mut scratch = TrialScratch::for_plan(&plan);
        let only_metrics = plan.run_metrics(7, &mut scratch);
        let traced = plan.run_traced(7, &mut scratch);
        assert_eq!(only_metrics.min_gap, traced.metrics.min_gap);
        assert_eq!(only_metrics.detection_step, traced.metrics.detection_step);
        assert_eq!(only_metrics.confusion, traced.metrics.confusion);
        assert_eq!(
            only_metrics.attack_window_distance_rmse,
            traced.metrics.attack_window_distance_rmse
        );
    }

    #[test]
    fn scratch_reuse_does_not_leak_across_trials() {
        let plan = ScenarioPlan::new(dos_config());
        let mut warm = TrialScratch::for_plan(&plan);
        // Warm the scratch on unrelated seeds, then compare against a cold
        // scratch: per-trial results must be identical.
        for seed in 100..104 {
            let _ = plan.run_metrics(seed, &mut warm);
        }
        let mut cold = TrialScratch::for_plan(&plan);
        let a = plan.run_metrics(7, &mut warm);
        let b = plan.run_metrics(7, &mut cold);
        assert_eq!(a.min_gap, b.min_gap);
        assert_eq!(a.detection_step, b.detection_step);
        assert_eq!(a.confusion, b.confusion);
    }

    #[test]
    fn fast_options_keep_trial_isolation_in_signal_mode() {
        let mut cfg = dos_config();
        cfg.radar = argus_radar::RadarConfig::bosch_lrr2_signal();
        cfg.horizon = 40;
        let plan = ScenarioPlan::with_options(cfg, ScratchOptions::fast());
        let mut warm = TrialScratch::for_plan(&plan);
        for seed in 200..203 {
            let _ = plan.run_metrics(seed, &mut warm);
        }
        let mut cold = TrialScratch::for_plan(&plan);
        let a = plan.run_metrics(5, &mut warm);
        let b = plan.run_metrics(5, &mut cold);
        // The reset at trial start makes warm-vs-cold scratch bit-identical
        // even on the rounding-sensitive fast path.
        assert_eq!(a.min_gap.to_bits(), b.min_gap.to_bits());
    }

    #[test]
    fn fast_plan_stays_close_to_bit_exact_plan() {
        let mut cfg = dos_config();
        cfg.radar = argus_radar::RadarConfig::bosch_lrr2_signal();
        cfg.horizon = 60;
        let exact = ScenarioPlan::new(cfg.clone());
        let fast = ScenarioPlan::with_options(cfg, ScratchOptions::fast());
        let a = exact.run_metrics(7, &mut TrialScratch::for_plan(&exact));
        let b = fast.run_metrics(7, &mut TrialScratch::for_plan(&fast));
        assert_eq!(a.collided, b.collided);
        assert!(
            (a.min_gap - b.min_gap).abs() < 0.1,
            "{} vs {}",
            a.min_gap,
            b.min_gap
        );
    }

    #[test]
    fn vehicle_sim_split_loop_matches_run_traced() {
        // Driving VehicleSim + a local SecurePipeline by hand must replay
        // run_traced exactly — the invariant the gateway's byte-identity
        // anchor stands on.
        let plan = ScenarioPlan::new(dos_config());
        let mut scratch = TrialScratch::for_plan(&plan);
        let reference = plan.run_traced(7, &mut scratch);

        let cfg = plan.config().clone();
        let mut sim = plan.vehicle_sim(7);
        let mut scratch2 = TrialScratch::for_plan(&plan);
        let detector = CraDetector::new(cfg.schedule.clone(), cfg.radar.detection_threshold);
        let mut pipeline =
            SecurePipeline::new(detector, cfg.predictor.build().unwrap(), Seconds(1.0));
        let mut d_used = Vec::new();
        for k_idx in 0..cfg.horizon {
            let k = Step(k_idx as u64);
            if sim.collided() {
                break;
            }
            let tx_on = pipeline.tx_on(k);
            let obs = sim.observe(k, tx_on, &mut scratch2);
            let out = pipeline.process(k, &obs, sim.own_speed());
            d_used.push(out.distance.map_or(0.0, |d| d.value()));
            sim.advance(out.control_distance, out.relative_speed);
        }
        let reference_d_used = reference.series("d_used");
        assert_eq!(d_used.len(), reference_d_used.len());
        for (i, (a, b)) in d_used.iter().zip(reference_d_used).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "d_used diverged at step {i}");
        }
    }

    #[test]
    fn registry_scenarios_replay_bit_identically_through_the_plan() {
        // Every registered scenario (including the stateful replay attacker
        // and every jittered spoofer) must be a pure function of the trial
        // seed when run through the plan path.
        let registry = argus_attack::ScenarioRegistry::builtin();
        for name in registry.names() {
            let adversary = registry.build_default(name).unwrap();
            let cfg = ScenarioConfig::paper(LeaderProfile::paper_constant_decel(), adversary, true);
            let plan = ScenarioPlan::new(cfg);
            let mut scratch = TrialScratch::for_plan(&plan);
            let a = plan.run_metrics(11, &mut scratch);
            let b = plan.run_metrics(11, &mut scratch);
            assert_eq!(a.min_gap.to_bits(), b.min_gap.to_bits(), "{name}");
            assert_eq!(a.detection_step, b.detection_step, "{name}");
            assert_eq!(a.confusion, b.confusion, "{name}");
            // A different seed yields a different attack realization (every
            // scenario carries per-trial jitter).
            let c = plan.run_metrics(12, &mut scratch);
            assert_ne!(a.min_gap.to_bits(), c.min_gap.to_bits(), "{name}");
        }
    }

    #[test]
    fn registry_scenarios_are_all_detected() {
        // Every registered attacker is a physical transmitter with >0
        // reaction latency: the CRA detector must flag each one at the
        // first challenge instant at or after its onset.
        let registry = argus_attack::ScenarioRegistry::builtin();
        for name in registry.names() {
            let scenario = registry.get(name).unwrap();
            let onset = scenario.default_params().onset;
            let adversary = scenario.build(&scenario.default_params()).unwrap();
            let cfg = ScenarioConfig::paper(LeaderProfile::paper_constant_decel(), adversary, true);
            let expected = cfg
                .schedule
                .next_at_or_after(Step(onset))
                .expect("paper schedule covers the horizon");
            let plan = ScenarioPlan::new(cfg);
            let mut scratch = TrialScratch::for_plan(&plan);
            let metrics = plan.run_metrics(7, &mut scratch);
            assert_eq!(
                metrics.detection_step,
                Some(expected),
                "{name}: expected detection at the first challenge >= onset {onset}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_panics_at_plan_build() {
        let mut cfg = dos_config();
        cfg.horizon = 0;
        let _ = ScenarioPlan::new(cfg);
    }

    /// The deterministic subset of [`RunMetrics`] (everything except wall
    /// clock), bit-cast where floating point is involved.
    fn metrics_key(m: &RunMetrics) -> impl PartialEq + std::fmt::Debug {
        (
            m.min_gap.to_bits(),
            m.collided,
            m.detection_step,
            m.detection_latency,
            m.estimation_steps,
            m.confusion,
            m.attack_window_distance_rmse.map(f64::to_bits),
            m.post_onset_distance_rmse.map(f64::to_bits),
            m.fusion,
        )
    }

    #[test]
    fn batched_trials_match_sequential_bit_exactly() {
        let mut cfg = dos_config();
        cfg.radar = argus_radar::RadarConfig::bosch_lrr2_signal();
        cfg.horizon = 40;
        let plan = ScenarioPlan::with_options(cfg, ScratchOptions::bit_exact());

        // Five seeds over a pool of four exercises the chunk split.
        let seeds: Vec<u64> = (40..45).collect();
        let mut pool: Vec<TrialScratch> = (0..4).map(|_| TrialScratch::for_plan(&plan)).collect();
        let batched = plan.run_trials_batched(&seeds, &mut pool);

        let mut scratch = TrialScratch::for_plan(&plan);
        for (seed, b) in seeds.iter().zip(&batched) {
            let s = plan.run_metrics(*seed, &mut scratch);
            assert_eq!(metrics_key(&s), metrics_key(b), "seed {seed}");
        }
    }

    #[test]
    fn batched_trials_match_sequential_under_fast_options() {
        // Under fast options the lane kernels engage (when the `simd`
        // feature is on), and they are built to be bit-identical to the
        // scalar fast path — so batched results must still equal a
        // sequential fast run exactly.
        let mut cfg = dos_config();
        cfg.radar = argus_radar::RadarConfig::bosch_lrr2_signal();
        cfg.horizon = 40;
        let plan = ScenarioPlan::with_options(cfg, ScratchOptions::fast());

        let seeds: Vec<u64> = (70..74).collect();
        let mut pool: Vec<TrialScratch> = (0..4).map(|_| TrialScratch::for_plan(&plan)).collect();
        let batched = plan.run_trials_batched(&seeds, &mut pool);

        let mut scratch = TrialScratch::for_plan(&plan);
        for (seed, b) in seeds.iter().zip(&batched) {
            let s = plan.run_metrics(*seed, &mut scratch);
            assert_eq!(metrics_key(&s), metrics_key(b), "seed {seed}");
        }
    }

    #[test]
    fn fused_batched_trials_match_sequential_bit_exactly() {
        use argus_fusion::FusionMode;
        let cfg = dos_config().with_fusion(FusionMode::FusedIds);
        let plan = ScenarioPlan::new(cfg);

        let seeds: Vec<u64> = (40..45).collect();
        let mut pool: Vec<TrialScratch> = (0..4).map(|_| TrialScratch::for_plan(&plan)).collect();
        let batched = plan.run_trials_batched(&seeds, &mut pool);

        let mut scratch = TrialScratch::for_plan(&plan);
        for (seed, b) in seeds.iter().zip(&batched) {
            let s = plan.run_metrics(*seed, &mut scratch);
            assert!(b.fusion.is_some(), "fused trial must carry fusion metrics");
            assert_eq!(metrics_key(&s), metrics_key(b), "seed {seed}");
        }
    }

    #[test]
    fn cra_only_metrics_unchanged_by_fusion_machinery() {
        // The fusion flag defaults to CraOnly; such runs must keep the
        // pre-fusion detection results and carry no fusion metrics, while
        // gaining the post-onset accuracy figure.
        let plan = ScenarioPlan::new(dos_config());
        let mut scratch = TrialScratch::for_plan(&plan);
        let m = plan.run_metrics(7, &mut scratch);
        assert_eq!(m.detection_step, Some(Step(182)));
        assert!(m.fusion.is_none());
        assert!(m.post_onset_distance_rmse.is_some());
    }

    #[test]
    fn fused_ids_detects_no_later_and_tracks_tighter_on_registry() {
        // The PR's acceptance gate, in unit form: under every registry
        // scenario the fused + IDS stack detects at or before the CRA-only
        // baseline and strictly reduces post-onset distance RMSE.
        use argus_fusion::FusionMode;
        let registry = argus_attack::ScenarioRegistry::builtin();
        for name in registry.names() {
            let adversary = registry.build_default(name).unwrap();
            let base =
                ScenarioConfig::paper(LeaderProfile::paper_constant_decel(), adversary, true);

            let cra_plan = ScenarioPlan::new(base.clone());
            let fused_plan = ScenarioPlan::new(base.with_fusion(FusionMode::FusedIds));
            let mut scratch = TrialScratch::for_plan(&cra_plan);
            let cra = cra_plan.run_metrics(7, &mut scratch);
            let fused = fused_plan.run_metrics(7, &mut scratch);

            let cra_det = cra
                .detection_step
                .unwrap_or_else(|| panic!("{name}: CRA undetected"));
            let fused_det = fused
                .detection_step
                .unwrap_or_else(|| panic!("{name}: fused undetected"));
            assert!(
                fused_det.0 <= cra_det.0,
                "{name}: fused detection {fused_det:?} later than CRA {cra_det:?}"
            );
            let cra_rmse = cra.post_onset_distance_rmse.unwrap();
            let fused_rmse = fused.post_onset_distance_rmse.unwrap();
            assert!(
                fused_rmse < cra_rmse,
                "{name}: fused post-onset RMSE {fused_rmse} !< CRA {cra_rmse}"
            );
            assert!(!fused.collided, "{name}: fused run collided");
        }
    }

    #[test]
    fn fused_traces_present_only_for_fused_runs() {
        use argus_fusion::FusionMode;
        let cra = ScenarioPlan::new(dos_config());
        let fused = ScenarioPlan::new(dos_config().with_fusion(FusionMode::FusedIds));
        let mut scratch = TrialScratch::for_plan(&cra);
        let r_cra = cra.run_traced(7, &mut scratch);
        let r_fused = fused.run_traced(7, &mut scratch);
        assert!(r_cra.traces.get("d_fused").is_none());
        for name in [
            "d_camera",
            "v_v2v",
            "d_fused",
            "trust_radar",
            "trust_camera",
            "trust_v2v",
            "ids_alarm",
            "safe_mode",
        ] {
            assert!(r_fused.traces.get(name).is_some(), "missing trace {name}");
        }
        // The IDS trips during the DoS window.
        assert!(r_fused.series("ids_alarm").iter().any(|&x| x > 0.0));
    }

    #[test]
    fn aux_attack_on_camera_is_contained_by_fused_ids() {
        // A camera-only spoof never touches the radar, so the CRA detector
        // must stay silent (no challenge false positives) while the IDS
        // demotes the camera and the run tracks truth.
        use argus_fusion::{AuxAttack, FusionMode};
        let cfg = ScenarioConfig::paper(
            LeaderProfile::paper_constant_decel(),
            Adversary::benign(),
            true,
        )
        .with_fusion(FusionMode::FusedIds)
        .with_aux_attack(AuxAttack::CameraBias {
            onset: 120,
            duration: 60,
            bias_m: 15.0,
        });
        let plan = ScenarioPlan::new(cfg);
        let mut scratch = TrialScratch::for_plan(&plan);
        let r = plan.run_traced(7, &mut scratch);
        assert_eq!(r.metrics.confusion.false_positives, 0);
        assert!(!r.metrics.collided);
        // The camera loses trust during the spoof window.
        let trust = r.series("trust_camera");
        let min_trust = trust[120..180].iter().cloned().fold(f64::MAX, f64::min);
        assert!(min_trust < 0.6, "camera trust never demoted: {min_trust}");
        // And the fused estimate stays honest.
        let gap = r.series("gap_true");
        let d_used = r.series("d_used");
        let worst = (120..180)
            .map(|k| (d_used[k] - gap[k]).abs())
            .fold(0.0f64, f64::max);
        assert!(
            worst < 5.0,
            "fused estimate pulled by camera spoof: {worst}"
        );
    }

    #[test]
    fn batched_trials_handle_analytic_mode_and_small_pool() {
        // Analytic mode resolves every observation in the begin phase
        // (nothing defers), and a pool of one degenerates to sequential.
        let plan = ScenarioPlan::new(dos_config());
        let seeds = [7u64, 11];
        let mut pool = [TrialScratch::for_plan(&plan)];
        let batched = plan.run_trials_batched(&seeds, &mut pool);

        let mut scratch = TrialScratch::for_plan(&plan);
        for (seed, b) in seeds.iter().zip(&batched) {
            let s = plan.run_metrics(*seed, &mut scratch);
            assert_eq!(metrics_key(&s), metrics_key(b), "seed {seed}");
        }
    }
}
