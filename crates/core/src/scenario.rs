//! The full closed-loop scenario (paper Figure 1).
//!
//! One [`Scenario`] couples the leader/follower pair, the CRA-modulated
//! radar, the adversary, and (optionally) the detection + estimation
//! defense. Running it produces the complete trace set behind Figures 2–3
//! plus the §6.2 result metrics.

use argus_attack::Adversary;
use argus_cra::challenge::ChallengeSchedule;
use argus_fusion::{AuxAttack, FusionMode};
use argus_radar::RadarConfig;
use argus_sim::trace::TraceSet;
use argus_sim::units::{Meters, MetersPerSecond};
use argus_vehicle::leader::LeaderProfile;

use crate::metrics::RunMetrics;
use crate::plan::{ScenarioPlan, TrialScratch};

/// Configuration of one closed-loop run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Leader speed profile.
    pub profile: LeaderProfile,
    /// The adversary (attack kind + window).
    pub adversary: Adversary,
    /// Whether the CRA + RLS defense is enabled.
    pub defended: bool,
    /// Radar configuration.
    pub radar: RadarConfig,
    /// Challenge schedule driving the CRA modulation.
    pub schedule: ChallengeSchedule,
    /// Number of simulation steps (the paper runs 301: k = 0…300).
    pub horizon: usize,
    /// Std-dev of the additive measurement noise `v_k` on distance (Eqn 2).
    pub distance_noise: f64,
    /// Std-dev of the additive measurement noise on relative speed.
    pub speed_noise: f64,
    /// Which estimator free-runs during attacks (defense enabled only).
    pub predictor: crate::pipeline::PredictorKind,
    /// How much machinery sits between the sensors and the controller
    /// (defense enabled only): the paper's single-radar pipeline, or the
    /// attack-aware fusion stack with or without the sequential IDS.
    pub fusion: FusionMode,
    /// Per-channel attack injection on the auxiliary channels (only
    /// meaningful when [`Self::fusion`] is a fused mode).
    pub aux_attack: AuxAttack,
    /// Initial inter-vehicle gap (the paper uses 100 m).
    pub initial_gap: Meters,
    /// Initial speed of both vehicles (the paper starts follower and
    /// leader at 65 mph).
    pub initial_speed: MetersPerSecond,
    /// ACC set speed of the follower (the paper uses 67 mph).
    pub set_speed: MetersPerSecond,
}

impl ScenarioConfig {
    /// The paper's case-study setup with the given profile, adversary and
    /// defense switch.
    pub fn paper(profile: LeaderProfile, adversary: Adversary, defended: bool) -> Self {
        Self {
            profile,
            adversary,
            defended,
            radar: RadarConfig::bosch_lrr2(),
            schedule: ChallengeSchedule::paper(),
            horizon: 301,
            distance_noise: 0.5,
            // A 77 GHz FMCW radar resolves Doppler to centimetres per
            // second (the single-tone CRLB at the LRR2's link budget is
            // millimetres per second), so 0.02 m/s is conservative.
            // Free-running the estimator over the 118-step attack window
            // integrates any leader-speed error, so this noise level is
            // what bounds the estimation drift in Figures 2–3.
            speed_noise: 0.02,
            predictor: crate::pipeline::PredictorKind::RlsTrend,
            fusion: FusionMode::CraOnly,
            aux_attack: AuxAttack::None,
            initial_gap: Meters(100.0),
            initial_speed: MetersPerSecond::from_mph(65.0),
            set_speed: MetersPerSecond::from_mph(67.0),
        }
    }

    /// Same configuration with a different attack-window estimator.
    pub fn with_predictor(mut self, predictor: crate::pipeline::PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Same configuration with a different fusion mode.
    pub fn with_fusion(mut self, fusion: FusionMode) -> Self {
        self.fusion = fusion;
        self
    }

    /// Same configuration with an auxiliary-channel attack installed.
    pub fn with_aux_attack(mut self, aux_attack: AuxAttack) -> Self {
        self.aux_attack = aux_attack;
        self
    }

    /// Whether the fused pipeline (rather than the paper's single-radar
    /// pipeline) runs: requires both the defense switch and a fused mode.
    pub fn fusion_active(&self) -> bool {
        self.defended && self.fusion.is_fused()
    }
}

/// Result of one run: traces + metrics.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Recorded time series (see module docs for the trace names).
    pub traces: TraceSet,
    /// Outcome metrics.
    pub metrics: RunMetrics,
}

impl ScenarioResult {
    /// Convenience accessor: values of a named trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace does not exist.
    pub fn series(&self, name: &str) -> &[f64] {
        self.traces
            .get(name)
            .unwrap_or_else(|| panic!("no trace named `{name}`"))
            .values()
    }
}

/// A runnable closed-loop scenario.
///
/// ```
/// use argus_core::scenario::{Scenario, ScenarioConfig};
/// use argus_attack::Adversary;
/// use argus_vehicle::LeaderProfile;
///
/// let scenario = Scenario::new(ScenarioConfig::paper(
///     LeaderProfile::paper_constant_decel(),
///     Adversary::paper_dos(),
///     true, // defense on
/// ));
/// let result = scenario.run(42);
/// assert_eq!(result.metrics.detection_step.unwrap().0, 182);
/// assert!(!result.metrics.collided);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    config: ScenarioConfig,
}

impl Scenario {
    /// Creates a scenario.
    ///
    /// # Panics
    ///
    /// Panics if the horizon is zero or the noise std-devs are negative.
    pub fn new(config: ScenarioConfig) -> Self {
        assert!(config.horizon > 0, "horizon must be positive");
        assert!(
            config.distance_noise >= 0.0 && config.speed_noise >= 0.0,
            "noise std-devs must be non-negative"
        );
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Runs the closed loop with a fixed seed; fully deterministic.
    ///
    /// Convenience wrapper: builds a transient bit-exact [`ScenarioPlan`]
    /// and runs one traced trial through it. The stepping loop lives in
    /// [`ScenarioPlan::run_traced`] — there is exactly one implementation,
    /// so this path cannot drift from the amortized campaign path.
    pub fn run(&self, seed: u64) -> ScenarioResult {
        let plan = ScenarioPlan::new(self.config.clone());
        let mut scratch = TrialScratch::for_plan(&plan);
        plan.run_traced(seed, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_attack::Adversary;
    use argus_sim::time::Step;

    fn benign(defended: bool) -> Scenario {
        Scenario::new(ScenarioConfig::paper(
            LeaderProfile::paper_constant_decel(),
            Adversary::benign(),
            defended,
        ))
    }

    #[test]
    fn benign_run_is_safe_and_flag_free() {
        let result = benign(true).run(1);
        assert!(!result.metrics.collided);
        // The run ends with both vehicles stopped; the CTH law holds a small
        // positive standing gap (d₀ minus the low-speed creep).
        assert!(
            result.metrics.min_gap > 1.5,
            "min gap {}",
            result.metrics.min_gap
        );
        assert!(result.metrics.detection_step.is_none());
        assert!(result.metrics.confusion.is_perfect());
        assert_eq!(result.metrics.confusion.false_positives, 0);
        assert_eq!(result.series("gap_true").len(), 301);
    }

    #[test]
    fn benign_undefended_matches_defended_shape() {
        let d = benign(true).run(1);
        let u = benign(false).run(1);
        // Both safe, similar final speeds.
        assert!(!d.metrics.collided && !u.metrics.collided);
        let vd = d.series("v_follower").last().copied().unwrap();
        let vu = u.series("v_follower").last().copied().unwrap();
        assert!((vd - vu).abs() < 1.0, "{vd} vs {vu}");
    }

    #[test]
    fn dos_defended_detects_at_182_and_stays_safe() {
        let s = Scenario::new(ScenarioConfig::paper(
            LeaderProfile::paper_constant_decel(),
            Adversary::paper_dos(),
            true,
        ));
        let r = s.run(7);
        assert_eq!(r.metrics.detection_step, Some(Step(182)));
        assert_eq!(r.metrics.detection_latency, Some(0));
        assert!(r.metrics.confusion.is_perfect(), "{}", r.metrics.confusion);
        assert!(!r.metrics.collided, "defense failed: collision");
        assert!(r.metrics.estimation_steps >= 100);
        let rmse = r.metrics.attack_window_distance_rmse.unwrap();
        assert!(rmse < 15.0, "estimation rmse {rmse}");
    }

    #[test]
    fn delay_defended_detects_at_182() {
        let s = Scenario::new(ScenarioConfig::paper(
            LeaderProfile::paper_constant_decel(),
            Adversary::paper_delay(),
            true,
        ));
        let r = s.run(7);
        // Onset k = 180; first challenge afterwards is k = 182.
        assert_eq!(r.metrics.detection_step, Some(Step(182)));
        assert_eq!(r.metrics.detection_latency, Some(2));
        assert!(r.metrics.confusion.is_perfect());
        assert!(!r.metrics.collided);
    }

    #[test]
    fn dos_undefended_is_catastrophic() {
        let s = Scenario::new(ScenarioConfig::paper(
            LeaderProfile::paper_constant_decel(),
            Adversary::paper_dos(),
            false,
        ));
        let r = s.run(7);
        // Without defense the follower consumes garbage; it must end up far
        // less safe than the defended run (collision or dangerously close).
        assert!(
            r.metrics.collided || r.metrics.min_gap < 10.0,
            "undefended DoS should endanger the vehicle, min gap {}",
            r.metrics.min_gap
        );
    }

    #[test]
    fn corrupted_radar_values_visible_in_traces() {
        let s = Scenario::new(ScenarioConfig::paper(
            LeaderProfile::paper_constant_decel(),
            Adversary::paper_dos(),
            true,
        ));
        let r = s.run(3);
        let d_radar = r.series("d_radar");
        let gap = r.series("gap_true");
        // During the attack the raw radar distances deviate wildly.
        let max_dev = (183..260)
            .map(|k| (d_radar[k] - gap[k]).abs())
            .fold(0.0f64, f64::max);
        assert!(max_dev > 50.0, "DoS corruption too tame: {max_dev}");
        // While the *used* values stay close to the truth.
        let d_used = r.series("d_used");
        let worst_used = (183..260)
            .map(|k| (d_used[k] - gap[k]).abs())
            .fold(0.0f64, f64::max);
        assert!(worst_used < 20.0, "estimates diverged: {worst_used}");
    }

    #[test]
    fn challenge_zero_spikes_present_in_radar_trace() {
        let r = benign(true).run(5);
        let d_radar = r.series("d_radar");
        for k in [15usize, 50, 175] {
            assert_eq!(d_radar[k], 0.0, "expected zero spike at challenge k={k}");
        }
        assert!(d_radar[100] > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = benign(true).run(9);
        let b = benign(true).run(9);
        assert_eq!(a.series("gap_true"), b.series("gap_true"));
        assert_eq!(a.series("d_radar"), b.series("d_radar"));
    }

    #[test]
    fn different_seeds_differ_in_noise() {
        let a = benign(true).run(1);
        let b = benign(true).run(2);
        assert_ne!(a.series("d_radar"), b.series("d_radar"));
    }
}
