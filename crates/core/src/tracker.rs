//! Multi-target tracking over radar measurements.
//!
//! Production radar stacks do not hand raw detections to the controller:
//! they maintain *tracks* — per-target Kalman filters associated to new
//! measurements by gating — and the ACC follows the most relevant track.
//! This module provides that layer on top of
//! [`Radar::observe_multi`](argus_radar::receiver::Radar::observe_multi):
//! nearest-neighbour association with a gate, track spawning after
//! consecutive hits, and track deletion after consecutive misses.

use argus_estim::KalmanFilter;
use argus_radar::receiver::RadarMeasurement;
use argus_sim::units::{Meters, MetersPerSecond};
use nalgebra::DVector;

/// Stable identifier of a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId(pub u64);

/// One maintained target track.
#[derive(Debug, Clone)]
pub struct Track {
    id: TrackId,
    filter: KalmanFilter,
    hits: u32,
    misses: u32,
}

impl Track {
    /// Track identifier.
    pub fn id(&self) -> TrackId {
        self.id
    }

    /// Estimated distance.
    pub fn distance(&self) -> Meters {
        Meters(self.filter.state()[0])
    }

    /// Estimated range rate.
    pub fn range_rate(&self) -> MetersPerSecond {
        MetersPerSecond(self.filter.state()[1])
    }

    /// Consecutive updates received.
    pub fn hits(&self) -> u32 {
        self.hits
    }

    /// `true` once the track has enough history to be trusted.
    pub fn confirmed(&self, confirm_after: u32) -> bool {
        self.hits >= confirm_after
    }
}

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// Association gate: a measurement joins a track only within this
    /// distance of the track's prediction.
    pub gate: Meters,
    /// Hits needed before a track is reported as confirmed.
    pub confirm_after: u32,
    /// Consecutive misses before a track is dropped.
    pub drop_after: u32,
    /// Measurement noise variance fed to the per-track filters (m²).
    pub measurement_variance: f64,
    /// Process (manoeuvre) noise intensity.
    pub process_noise: f64,
    /// Sample period in seconds.
    pub dt: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            gate: Meters(5.0),
            confirm_after: 3,
            drop_after: 3,
            measurement_variance: 0.25,
            process_noise: 0.05,
            dt: 1.0,
        }
    }
}

/// Nearest-neighbour multi-target tracker.
///
/// ```
/// use argus_core::tracker::{MultiTargetTracker, TrackerConfig};
/// use argus_radar::prelude::*;
/// use argus_sim::prelude::*;
///
/// let radar = Radar::new(RadarConfig::bosch_lrr2());
/// let targets = [RadarTarget::new(Meters(80.0), MetersPerSecond(-2.0), 10.0)];
/// let mut tracker = MultiTargetTracker::new(TrackerConfig::default());
/// let mut rng = SimRng::seed_from(1);
/// for _ in 0..3 {
///     let obs = radar.observe_multi(true, &targets, &ChannelState::clean(), 2, &mut rng);
///     tracker.update(&obs.measurements);
/// }
/// let primary = tracker.primary().expect("confirmed after three hits");
/// assert!((primary.distance().value() - 80.0).abs() < 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct MultiTargetTracker {
    config: TrackerConfig,
    tracks: Vec<Track>,
    next_id: u64,
}

impl MultiTargetTracker {
    /// Creates an empty tracker.
    ///
    /// # Panics
    ///
    /// Panics if the gate, variances, or dt are not strictly positive.
    pub fn new(config: TrackerConfig) -> Self {
        assert!(config.gate.value() > 0.0, "gate must be positive");
        assert!(
            config.measurement_variance > 0.0 && config.process_noise > 0.0,
            "noise parameters must be positive"
        );
        assert!(config.dt > 0.0, "dt must be positive");
        Self {
            config,
            tracks: Vec::new(),
            next_id: 0,
        }
    }

    /// All live tracks (confirmed or tentative).
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Confirmed tracks only, nearest first.
    pub fn confirmed(&self) -> Vec<&Track> {
        let mut out: Vec<&Track> = self
            .tracks
            .iter()
            .filter(|t| t.confirmed(self.config.confirm_after))
            .collect();
        out.sort_by(|a, b| {
            a.distance()
                .value()
                .partial_cmp(&b.distance().value())
                .expect("finite distances")
        });
        out
    }

    /// The nearest confirmed track — the ACC's primary target.
    pub fn primary(&self) -> Option<&Track> {
        self.confirmed().first().copied()
    }

    /// Consumes one scan of measurements: predicts every track, associates
    /// measurements nearest-first within the gate, spawns tentative tracks
    /// for the leftovers, and drops stale tracks.
    pub fn update(&mut self, measurements: &[RadarMeasurement]) {
        // Predict.
        for t in &mut self.tracks {
            t.filter.predict(&DVector::zeros(1));
        }

        // Greedy nearest-neighbour association.
        let mut unused: Vec<&RadarMeasurement> = measurements.iter().collect();
        for t in &mut self.tracks {
            let predicted = t.filter.state()[0];
            let best = unused
                .iter()
                .enumerate()
                .map(|(i, m)| (i, (m.distance.value() - predicted).abs()))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
            match best {
                Some((i, dist)) if dist <= self.config.gate.value() => {
                    let m = unused.swap_remove(i);
                    t.filter
                        .update(&DVector::from_vec(vec![m.distance.value()]));
                    // Blend the measured range rate directly into the rate
                    // state (the radar measures it, unlike a position-only
                    // sensor).
                    let blended = 0.5 * t.filter.state()[1] + 0.5 * m.range_rate.value();
                    let d = t.filter.state()[0];
                    t.filter.set_state(DVector::from_vec(vec![d, blended]));
                    t.hits += 1;
                    t.misses = 0;
                }
                _ => {
                    // Coast: keep the confirmation history so an established
                    // track survives brief occlusions (and challenge
                    // instants, which yield no measurements).
                    t.misses += 1;
                }
            }
        }
        let drop_after = self.config.drop_after;
        self.tracks.retain(|t| t.misses < drop_after);

        // Spawn tentative tracks for unassociated measurements.
        for m in unused {
            let filter = KalmanFilter::constant_velocity(
                self.config.dt,
                self.config.process_noise,
                self.config.measurement_variance,
                m.distance.value(),
                m.range_rate.value(),
            )
            .expect("valid tracker filter parameters");
            self.tracks.push(Track {
                id: TrackId(self.next_id),
                filter,
                hits: 1,
                misses: 0,
            });
            self.next_id += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_radar::fmcw::BeatPair;
    use argus_sim::units::Hertz;

    fn meas(d: f64, v: f64) -> RadarMeasurement {
        RadarMeasurement {
            distance: Meters(d),
            range_rate: MetersPerSecond(v),
            beats: BeatPair {
                up: Hertz(0.0),
                down: Hertz(0.0),
            },
            snr: 100.0,
        }
    }

    fn tracker() -> MultiTargetTracker {
        MultiTargetTracker::new(TrackerConfig::default())
    }

    #[test]
    fn track_confirms_after_hits() {
        let mut t = tracker();
        for k in 0..3 {
            t.update(&[meas(100.0 - k as f64, -1.0)]);
        }
        assert_eq!(t.tracks().len(), 1);
        let primary = t.primary().expect("confirmed track");
        assert!((primary.distance().value() - 98.0).abs() < 1.0);
        assert!((primary.range_rate().value() + 1.0).abs() < 0.5);
    }

    #[test]
    fn tentative_track_not_reported() {
        let mut t = tracker();
        t.update(&[meas(50.0, 0.0)]);
        assert_eq!(t.tracks().len(), 1);
        assert!(t.primary().is_none(), "single-hit track must be tentative");
    }

    #[test]
    fn two_targets_two_tracks() {
        let mut t = tracker();
        for k in 0..4 {
            t.update(&[meas(40.0 - k as f64, -1.0), meas(120.0 + k as f64, 1.0)]);
        }
        let confirmed = t.confirmed();
        assert_eq!(confirmed.len(), 2);
        assert!(confirmed[0].distance().value() < confirmed[1].distance().value());
        assert_eq!(t.primary().unwrap().id(), confirmed[0].id());
    }

    #[test]
    fn track_dropped_after_misses() {
        let mut t = tracker();
        for _ in 0..3 {
            t.update(&[meas(60.0, 0.0)]);
        }
        assert_eq!(t.tracks().len(), 1);
        for _ in 0..3 {
            t.update(&[]);
        }
        assert!(t.tracks().is_empty());
    }

    #[test]
    fn coasting_through_a_single_miss() {
        let mut t = tracker();
        for k in 0..3 {
            t.update(&[meas(80.0 - 2.0 * k as f64, -2.0)]);
        }
        let id = t.tracks()[0].id();
        t.update(&[]); // one missed scan — coast on prediction
        assert_eq!(t.tracks().len(), 1);
        t.update(&[meas(72.0, -2.0)]); // re-acquire (prediction ≈ 72)
        assert_eq!(t.tracks().len(), 1, "should re-associate, not spawn");
        assert_eq!(t.tracks()[0].id(), id);
    }

    #[test]
    fn far_measurement_spawns_instead_of_corrupting() {
        let mut t = tracker();
        for _ in 0..3 {
            t.update(&[meas(50.0, 0.0)]);
        }
        // A measurement far outside the gate must not drag the track.
        t.update(&[meas(50.0, 0.0), meas(150.0, 0.0)]);
        assert_eq!(t.tracks().len(), 2);
        let d0 = t.primary().unwrap().distance().value();
        assert!((d0 - 50.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "gate must be positive")]
    fn zero_gate_rejected() {
        let cfg = TrackerConfig {
            gate: Meters(0.0),
            ..TrackerConfig::default()
        };
        let _ = MultiTargetTracker::new(cfg);
    }
}
