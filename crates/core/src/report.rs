//! Plain-text rendering of experiment outputs — the "same rows the paper
//! reports" for the bench harness binaries.

use crate::experiments::{ExperimentOutcome, FigureSeries};
use crate::metrics::RunMetrics;

/// Renders a figure panel as an aligned table, sampling every `stride`
/// steps (stride 1 = every step).
///
/// # Panics
///
/// Panics if `stride` is zero.
pub fn render_series(title: &str, series: &FigureSeries, stride: usize) -> String {
    assert!(stride > 0, "stride must be positive");
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:>6} {:>18} {:>18} {:>18}\n",
        "t(s)", "without-attack", "with-attack", "estimated"
    ));
    for k in (0..series.len()).step_by(stride) {
        out.push_str(&format!(
            "{:>6.0} {:>18.3} {:>18.3} {:>18.3}\n",
            series.time[k], series.without_attack[k], series.with_attack[k], series.estimated[k]
        ));
    }
    out
}

/// Renders the §6.2-style result block for one experiment.
pub fn render_outcome(outcome: &ExperimentOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {} — {}\n\n", outcome.id, outcome.description));
    out.push_str(&render_metrics_row("defended", &outcome.defended.metrics));
    out.push_str(&render_metrics_row(
        "undefended",
        &outcome.undefended.metrics,
    ));
    out.push_str(&render_metrics_row("benign", &outcome.benign.metrics));
    out
}

/// One metrics row with a label.
pub fn render_metrics_row(label: &str, m: &RunMetrics) -> String {
    format!(
        "{label:>12}: detect={:<12} latency={:<8} min_gap={:>8.2} m  collided={:<5} \
         est_steps={:<4} est_time={:>12} ns  FP={} FN={}\n",
        m.detection_step
            .map_or("none".to_string(), |s| format!("k={}", s.0)),
        m.detection_latency
            .map_or("-".to_string(), |l| format!("{l} s")),
        m.min_gap,
        m.collided,
        m.estimation_steps,
        m.estimation_time_ns,
        m.confusion.false_positives,
        m.confusion.false_negatives,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Experiment;

    #[test]
    fn series_table_has_expected_rows() {
        let outcome = Experiment::fig2a().run(1);
        let table = render_series("fig2a distance", &outcome.distance_series(), 50);
        let lines: Vec<_> = table.lines().collect();
        // Title + header + ceil(301/50) = 7 rows.
        assert_eq!(lines.len(), 2 + 7);
        assert!(lines[0].contains("fig2a distance"));
        assert!(lines[1].contains("without-attack"));
    }

    #[test]
    fn outcome_report_contains_all_rows() {
        let outcome = Experiment::fig2b().run(1);
        let text = render_outcome(&outcome);
        assert!(text.contains("defended"));
        assert!(text.contains("undefended"));
        assert!(text.contains("benign"));
        assert!(text.contains("k=182"));
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let outcome = Experiment::fig2a().run(1);
        let _ = render_series("x", &outcome.distance_series(), 0);
    }
}
