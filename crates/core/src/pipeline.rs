//! The secure-sensing pipeline (detection + estimation, §5).
//!
//! [`SecurePipeline::process`] implements Algorithm 2's control flow over
//! the radar's per-step observation:
//!
//! 1. the CRA detector inspects the received power (decisive at challenge
//!    instants, latched in between);
//! 2. while the channel is deemed clean, fresh measurements flow through to
//!    the controller *and* train the RLS predictor;
//! 3. while an attack is latched, measurements are **estimated**: the RLS
//!    predictor free-runs on the leader-speed stream and the distance is
//!    dead-reckoned through the trusted ego speed — corrupted data never
//!    reaches the controller or the model.
//!
//! The estimation structure exploits the paper's own assumption that "the
//! sensor measuring velocity of the follower vehicle is trusted": the radar
//! streams `(d, Δv)` are equivalent to `(d, v_L)` given `v_F`, and the
//! leader's speed is the smooth physical signal an AR model extrapolates
//! well, while the distance follows by integrating `Δv̂` (Eqn 17's
//! kinematics) from the last clean range.

use argus_cra::detector::{CraDetector, DetectorState, Verdict};
use argus_estim::holt::HoltPredictor;
use argus_estim::predictor::{PredictorState, SensorPredictor, StreamPredictor};
use argus_estim::trend::TrendPredictor;
use argus_estim::EstimError;
use argus_radar::receiver::RadarObservation;
use argus_sim::time::Step;
use argus_sim::units::{Meters, MetersPerSecond, Seconds};

/// Which estimator free-runs the leader-speed stream during attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredictorKind {
    /// RLS local-trend fit (the paper configuration; see DESIGN.md §3).
    #[default]
    RlsTrend,
    /// RLS AR(4) lag predictor (the naive Algorithm 1 instantiation).
    RlsAr4,
    /// Holt double-exponential smoothing baseline.
    Holt,
}

impl PredictorKind {
    /// Builds the predictor.
    ///
    /// # Errors
    ///
    /// Propagates constructor errors (none for the built-in
    /// configurations).
    pub fn build(self) -> Result<Box<dyn StreamPredictor + Send + Sync>, EstimError> {
        Ok(match self {
            PredictorKind::RlsTrend => Box::new(TrendPredictor::paper()?),
            PredictorKind::RlsAr4 => Box::new(SensorPredictor::paper()?),
            PredictorKind::Holt => Box::new(HoltPredictor::paper_equivalent()?),
        })
    }
}

/// Where the pipeline's output measurement came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasurementSource {
    /// Passed through from the radar (clean channel).
    Radar,
    /// RLS free-run + dead reckoning (attack latched, or challenge instant).
    Estimated,
    /// Nothing available (no target, predictor not yet trained).
    Unavailable,
}

/// The pipeline's per-step output — what the ACC controller consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineOutput {
    /// Detector verdict this step.
    pub verdict: Verdict,
    /// Best distance estimate (`None` = no target known). This is the
    /// "Estimated Radar Data" series of the figures.
    pub distance: Option<Meters>,
    /// Relative-speed measurement `Δv = v_L − v_F` for the controller.
    pub relative_speed: MetersPerSecond,
    /// Distance the controller should act on. Equal to [`Self::distance`]
    /// on clean radar data; while free-running it subtracts a safety margin
    /// that grows with time-on-estimates (dead-reckoning uncertainty grows
    /// with the attack duration — degraded-mode headway inflation).
    pub control_distance: Option<Meters>,
    /// Provenance of the measurement.
    pub source: MeasurementSource,
}

/// Snapshot of the estimation state taken at an authenticated instant.
#[derive(Debug)]
struct Checkpoint {
    predictor: Box<dyn StreamPredictor + Send + Sync>,
    last_distance: Option<f64>,
}

impl Clone for Checkpoint {
    fn clone(&self) -> Self {
        Self {
            predictor: self.predictor.clone_box(),
            last_distance: self.last_distance,
        }
    }
}

/// Plain-old-data export of the rewind checkpoint inside a
/// [`PipelineSnapshot`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckpointState {
    /// Predictor state at the last authenticated instant.
    pub predictor: PredictorState,
    /// Dead-reckoning anchor at the last authenticated instant.
    pub last_distance: Option<f64>,
}

/// Plain-old-data export of **all** mutable [`SecurePipeline`] state.
///
/// Configuration (the challenge schedule, detection threshold, predictor
/// kind, and `dt`) is *not* part of the snapshot — a restore applies onto a
/// pipeline built with the same configuration (e.g. renegotiated at a
/// gateway `Hello`). After [`SecurePipeline::restore`] the pipeline steps
/// bit-identically to the one that was snapshotted, including a later
/// rewind to the captured checkpoint.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PipelineSnapshot {
    /// Detector latch + detection log.
    pub detector: DetectorState,
    /// Live predictor state.
    pub predictor: PredictorState,
    /// Dead-reckoning anchor (last trusted or estimated distance).
    pub last_distance: Option<f64>,
    /// Total steps served from the estimator.
    pub estimation_steps: u64,
    /// Consecutive estimated steps (drives the control-distance margin).
    pub consecutive_estimates: u64,
    /// Whether the previous step was under attack.
    pub was_attacked: bool,
    /// Rewind checkpoint from the last authenticated instant, if any.
    pub checkpoint: Option<CheckpointState>,
    /// Trusted ego speeds recorded since the checkpoint (replay buffer).
    pub speeds_since_checkpoint: Vec<f64>,
}

/// CRA detection gating RLS estimation for the radar measurement streams.
///
/// The pipeline is *rewind-sound* against attacks that begin between
/// challenges: at every passed challenge it checkpoints the predictor and
/// the dead-reckoning anchor, and on a detection it discards everything
/// learned since (which may be attacker-controlled) and replays forward
/// from the checkpoint using the trusted ego-speed history.
#[derive(Debug)]
pub struct SecurePipeline {
    detector: CraDetector,
    leader_speed_predictor: Box<dyn StreamPredictor + Send + Sync>,
    last_distance: Option<f64>,
    dt: Seconds,
    estimation_steps: u64,
    checkpoint: Option<Checkpoint>,
    speeds_since_checkpoint: Vec<f64>,
    was_attacked: bool,
    consecutive_estimates: u64,
}

impl Clone for SecurePipeline {
    fn clone(&self) -> Self {
        Self {
            detector: self.detector.clone(),
            leader_speed_predictor: self.leader_speed_predictor.clone_box(),
            last_distance: self.last_distance,
            dt: self.dt,
            estimation_steps: self.estimation_steps,
            checkpoint: self.checkpoint.clone(),
            speeds_since_checkpoint: self.speeds_since_checkpoint.clone(),
            was_attacked: self.was_attacked,
            consecutive_estimates: self.consecutive_estimates,
        }
    }
}

/// Quadratic growth coefficient of the control-distance safety margin
/// (m/step²). A slope error ε in the fitted leader-speed trend integrates
/// into a distance error ε·n²/2 after n free-run steps; with the paper
/// configuration the 2σ slope error is ≈ 1.6 × 10⁻³ m/s per step, so the
/// margin n²·2σ_slope/2 bounds the drift with ~98 % confidence.
pub(crate) const MARGIN_QUAD: f64 = 0.0016;

/// Cap on the control-distance safety margin (m).
pub(crate) const MARGIN_CAP: f64 = 12.0;

impl SecurePipeline {
    /// Creates a pipeline from a detector, a predictor for the leader-speed
    /// stream, and the sample period used for dead reckoning.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn new(
        detector: CraDetector,
        predictor: Box<dyn StreamPredictor + Send + Sync>,
        dt: Seconds,
    ) -> Self {
        assert!(dt.value() > 0.0, "sample period must be positive");
        Self {
            detector,
            leader_speed_predictor: predictor,
            last_distance: None,
            dt,
            estimation_steps: 0,
            checkpoint: None,
            speeds_since_checkpoint: Vec::new(),
            was_attacked: false,
            consecutive_estimates: 0,
        }
    }

    /// The paper's configuration: RLS local-trend fit (λ = 0.95) over the
    /// leader speed, 1 s sampling.
    ///
    /// # Errors
    ///
    /// Propagates predictor construction errors.
    pub fn paper(detector: CraDetector) -> Result<Self, EstimError> {
        Ok(Self::new(
            detector,
            Box::new(TrendPredictor::paper()?),
            Seconds(1.0),
        ))
    }

    /// Whether the radar should transmit at step `k` (the CRA modulation).
    pub fn tx_on(&self, k: Step) -> bool {
        self.detector.tx_on(k)
    }

    /// The embedded detector.
    pub fn detector(&self) -> &CraDetector {
        &self.detector
    }

    /// How many steps were served from the estimator.
    pub fn estimation_steps(&self) -> u64 {
        self.estimation_steps
    }

    /// Exports all mutable state as plain old data (wire snapshots,
    /// reconnect-surviving sessions).
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            detector: self.detector.save_state(),
            predictor: self.leader_speed_predictor.save_state(),
            last_distance: self.last_distance,
            estimation_steps: self.estimation_steps,
            consecutive_estimates: self.consecutive_estimates,
            was_attacked: self.was_attacked,
            checkpoint: self.checkpoint.as_ref().map(|cp| CheckpointState {
                predictor: cp.predictor.save_state(),
                last_distance: cp.last_distance,
            }),
            speeds_since_checkpoint: self.speeds_since_checkpoint.clone(),
        }
    }

    /// Restores state saved by [`Self::snapshot`] onto a pipeline of the
    /// same configuration; stepping afterwards is bit-identical to stepping
    /// the snapshotted pipeline without interruption.
    ///
    /// # Errors
    ///
    /// Propagates predictor state-shape errors (a snapshot from a different
    /// [`PredictorKind`]); the pipeline is left unchanged on error.
    pub fn restore(&mut self, snap: &PipelineSnapshot) -> Result<(), EstimError> {
        let mut predictor = self.leader_speed_predictor.clone_box();
        predictor.load_state(&snap.predictor)?;
        let checkpoint = match &snap.checkpoint {
            Some(cp) => {
                let mut cp_predictor = self.leader_speed_predictor.clone_box();
                cp_predictor.load_state(&cp.predictor)?;
                Some(Checkpoint {
                    predictor: cp_predictor,
                    last_distance: cp.last_distance,
                })
            }
            None => None,
        };
        self.detector.restore_state(&snap.detector);
        self.leader_speed_predictor = predictor;
        self.last_distance = snap.last_distance;
        self.estimation_steps = snap.estimation_steps;
        self.consecutive_estimates = snap.consecutive_estimates;
        self.was_attacked = snap.was_attacked;
        self.checkpoint = checkpoint;
        self.speeds_since_checkpoint.clear();
        self.speeds_since_checkpoint
            .extend_from_slice(&snap.speeds_since_checkpoint);
        Ok(())
    }

    /// Clears all mutable state back to the just-constructed pipeline
    /// (configuration retained).
    pub fn reset(&mut self) {
        self.detector.reset();
        self.leader_speed_predictor.reset();
        self.last_distance = None;
        self.estimation_steps = 0;
        self.consecutive_estimates = 0;
        self.was_attacked = false;
        self.checkpoint = None;
        self.speeds_since_checkpoint.clear();
    }

    /// Processes one radar observation given the trusted ego speed `v_F`.
    pub fn process(
        &mut self,
        k: Step,
        obs: &RadarObservation,
        own_speed: MetersPerSecond,
    ) -> PipelineOutput {
        let verdict = self.detector.update(k, obs.received_power);

        if verdict.under_attack() {
            // Rising edge: everything consumed since the last authenticated
            // instant may be attacker-controlled — rewind and replay.
            if !self.was_attacked {
                self.rewind_to_checkpoint();
            }
            self.was_attacked = true;
            let out = self.estimated_output(verdict, own_speed);
            self.record_speed(own_speed);
            return out;
        }
        self.was_attacked = false;

        // Clean channel. At a challenge instant the radar was silent, so
        // there is no fresh sample — bridge the gap with one estimated step;
        // this instant is authenticated, so checkpoint first.
        if self.detector.schedule().is_challenge(k) {
            self.checkpoint = Some(Checkpoint {
                predictor: self.leader_speed_predictor.clone_box(),
                last_distance: self.last_distance,
            });
            self.speeds_since_checkpoint.clear();
            let out = self.estimated_output(verdict, own_speed);
            self.record_speed(own_speed);
            return out;
        }

        let out = match obs.measurement {
            Some(m) => {
                let leader_speed = m.range_rate.value() + own_speed.value();
                self.leader_speed_predictor.observe(leader_speed);
                self.last_distance = Some(m.distance.value());
                self.consecutive_estimates = 0;
                PipelineOutput {
                    verdict,
                    distance: Some(m.distance),
                    relative_speed: MetersPerSecond(m.range_rate.value()),
                    control_distance: Some(m.distance),
                    source: MeasurementSource::Radar,
                }
            }
            None => PipelineOutput {
                verdict,
                distance: None,
                relative_speed: MetersPerSecond(0.0),
                control_distance: None,
                source: MeasurementSource::Unavailable,
            },
        };
        self.record_speed(own_speed);
        out
    }

    /// Remembers the trusted ego speed so a later rewind can replay the
    /// dead reckoning over the discarded interval.
    fn record_speed(&mut self, own_speed: MetersPerSecond) {
        if self.checkpoint.is_some() {
            self.speeds_since_checkpoint.push(own_speed.value());
        }
    }

    /// Discards all estimation state learned since the last authenticated
    /// instant and replays the free-run forward over the trusted ego-speed
    /// history.
    fn rewind_to_checkpoint(&mut self) {
        let Some(cp) = self.checkpoint.take() else {
            return; // attack before the first authenticated instant
        };
        self.leader_speed_predictor = cp.predictor;
        self.last_distance = cp.last_distance;
        let speeds = std::mem::take(&mut self.speeds_since_checkpoint);
        for v_f in speeds {
            if let (Ok(v_l), Some(d_prev)) = (
                self.leader_speed_predictor.predict_next(),
                self.last_distance,
            ) {
                let dv = v_l.max(0.0) - v_f;
                self.last_distance = Some(d_prev + dv * self.dt.value());
            }
        }
    }

    fn estimated_output(&mut self, verdict: Verdict, own_speed: MetersPerSecond) -> PipelineOutput {
        let prediction = self.leader_speed_predictor.predict_next();
        match (prediction, self.last_distance) {
            (Ok(v_leader_raw), Some(d_prev)) => {
                // Ground vehicles do not reverse; clamp the extrapolated
                // leader speed at zero (it otherwise continues a braking
                // trend below zero once the leader has stopped).
                let v_leader = v_leader_raw.max(0.0);
                let dv = v_leader - own_speed.value();
                let d_new = d_prev + dv * self.dt.value();
                self.last_distance = Some(d_new);
                self.estimation_steps += 1;
                self.consecutive_estimates += 1;
                let n = self.consecutive_estimates as f64;
                let margin = (MARGIN_QUAD * n * n).min(MARGIN_CAP);
                PipelineOutput {
                    verdict,
                    distance: Some(Meters(d_new)),
                    relative_speed: MetersPerSecond(dv),
                    control_distance: Some(Meters(d_new - margin)),
                    source: MeasurementSource::Estimated,
                }
            }
            _ => PipelineOutput {
                verdict,
                distance: None,
                relative_speed: MetersPerSecond(0.0),
                control_distance: None,
                source: MeasurementSource::Unavailable,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_cra::challenge::ChallengeSchedule;
    use argus_radar::fmcw::BeatPair;
    use argus_radar::receiver::RadarMeasurement;
    use argus_sim::units::{Hertz, Watts};

    fn detector() -> CraDetector {
        CraDetector::new(ChallengeSchedule::paper(), Watts(1e-14))
    }

    fn pipeline() -> SecurePipeline {
        SecurePipeline::paper(detector()).unwrap()
    }

    fn clean_obs(d: f64, dv: f64) -> RadarObservation {
        RadarObservation {
            measurement: Some(RadarMeasurement {
                distance: Meters(d),
                range_rate: MetersPerSecond(dv),
                beats: BeatPair {
                    up: Hertz(0.0),
                    down: Hertz(0.0),
                },
                snr: 1000.0,
            }),
            received_power: Watts(1e-12),
            jammed: false,
        }
    }

    fn silent_obs() -> RadarObservation {
        RadarObservation {
            measurement: None,
            received_power: Watts(1e-16),
            jammed: false,
        }
    }

    fn hot_obs() -> RadarObservation {
        RadarObservation {
            measurement: Some(RadarMeasurement {
                distance: Meters(400.0),
                range_rate: MetersPerSecond(120.0),
                beats: BeatPair {
                    up: Hertz(0.0),
                    down: Hertz(0.0),
                },
                snr: 0.001,
            }),
            received_power: Watts(1e-9),
            jammed: true,
        }
    }

    const V_OWN: MetersPerSecond = MetersPerSecond(20.0);

    /// Feeds one clean-channel step: a measurement at ordinary instants, a
    /// silent observation at challenge instants (the radar did not
    /// transmit, and an honest channel returns nothing).
    fn feed_clean(p: &mut SecurePipeline, k: u64, d: f64, dv: f64) {
        if ChallengeSchedule::paper().is_challenge(Step(k)) {
            p.process(Step(k), &silent_obs(), V_OWN);
        } else {
            p.process(Step(k), &clean_obs(d, dv), V_OWN);
        }
    }

    #[test]
    fn clean_measurements_pass_through() {
        let mut p = pipeline();
        let out = p.process(Step(0), &clean_obs(100.0, -1.0), V_OWN);
        assert_eq!(out.source, MeasurementSource::Radar);
        assert_eq!(out.distance, Some(Meters(100.0)));
        assert_eq!(out.relative_speed.value(), -1.0);
        assert!(!out.verdict.under_attack());
    }

    #[test]
    fn clean_challenge_bridged_by_estimate() {
        let mut p = pipeline();
        for k in 0..15 {
            p.process(Step(k), &clean_obs(100.0 - k as f64, -1.0), V_OWN);
        }
        // k = 15 is a paper challenge instant; the channel is silent & clean.
        let out = p.process(Step(15), &silent_obs(), V_OWN);
        assert!(!out.verdict.under_attack());
        assert_eq!(out.source, MeasurementSource::Estimated);
        let d = out.distance.unwrap().value();
        assert!((d - 85.0).abs() < 0.5, "bridge estimate {d}");
        assert!((out.relative_speed.value() + 1.0).abs() < 0.1);
    }

    #[test]
    fn attack_at_challenge_switches_to_estimation() {
        let mut p = pipeline();
        for k in 0..50 {
            feed_clean(&mut p, k, 100.0 - 0.5 * k as f64, -0.5);
        }
        // Hot signal at challenge k = 50 → detect, serve estimates.
        let out = p.process(Step(50), &hot_obs(), V_OWN);
        assert!(out.verdict.under_attack());
        assert_eq!(out.source, MeasurementSource::Estimated);
        let d = out.distance.unwrap().value();
        assert!((d - 75.0).abs() < 0.5, "estimate {d} vs truth ≈ 75");
        // Subsequent (non-challenge) steps stay estimated while latched.
        let out2 = p.process(Step(51), &hot_obs(), V_OWN);
        assert_eq!(out2.source, MeasurementSource::Estimated);
        // One bridge at the clean challenge k = 15, plus k = 50 and k = 51.
        assert_eq!(p.estimation_steps(), 3);
    }

    #[test]
    fn long_free_run_stays_accurate() {
        // The paper's window: 118 estimation steps under a steady trend.
        let mut p = pipeline();
        for k in 0..182 {
            feed_clean(&mut p, k, 100.0 - 0.3 * k as f64, -0.3);
        }
        p.process(Step(182), &hot_obs(), V_OWN);
        let mut worst: f64 = 0.0;
        for k in 183..300 {
            let out = p.process(Step(k), &hot_obs(), V_OWN);
            if let Some(d) = out.distance {
                let truth = 100.0 - 0.3 * k as f64;
                worst = worst.max((d.value() - truth).abs());
            }
        }
        assert!(worst < 3.0, "free-run divergence {worst}");
    }

    #[test]
    fn corrupted_values_never_reach_output_during_attack() {
        let mut p = pipeline();
        for k in 0..50 {
            feed_clean(&mut p, k, 100.0, 0.0);
        }
        p.process(Step(50), &hot_obs(), V_OWN); // detected
        for k in 51..80 {
            let out = p.process(Step(k), &hot_obs(), V_OWN);
            let d = out.distance.unwrap().value();
            assert!(
                (d - 100.0).abs() < 5.0,
                "output {d} leaked corrupted data at k={k}"
            );
        }
    }

    #[test]
    fn recovery_after_clean_challenge() {
        let mut p = pipeline();
        for k in 0..50 {
            feed_clean(&mut p, k, 100.0, 0.0);
        }
        p.process(Step(50), &hot_obs(), V_OWN); // attack detected
        for k in 51..85 {
            p.process(Step(k), &hot_obs(), V_OWN);
        }
        // k = 85 is a challenge; channel now clean → latch released.
        let out = p.process(Step(85), &silent_obs(), V_OWN);
        assert!(!out.verdict.under_attack());
        // Next ordinary step passes radar data through again.
        let out = p.process(Step(86), &clean_obs(99.0, 0.0), V_OWN);
        assert_eq!(out.source, MeasurementSource::Radar);
    }

    #[test]
    fn leader_speed_estimate_clamped_at_zero() {
        // Leader braking to a stop: the free-run must not predict reversing.
        let mut p = pipeline();
        for k in 0..60 {
            // Leader speed 6 − 0.5k: hits zero at k = 12, clamped by truth.
            let v_leader = (6.0 - 0.5 * k as f64).max(0.0);
            let dv = v_leader - V_OWN.value();
            feed_clean(&mut p, k, 100.0, dv);
        }
        // During free-run the relative speed must never go below −v_F.
        p.process(Step(85), &hot_obs(), V_OWN);
        for k in 86..110 {
            let out = p.process(Step(k), &hot_obs(), V_OWN);
            assert!(
                out.relative_speed.value() >= -V_OWN.value() - 1e-9,
                "estimated leader reversed at k={k}"
            );
        }
    }

    #[test]
    fn rewind_discards_pre_detection_corruption() {
        // Delay attack begins mid-gap (k = 40): the samples at k = 40…49
        // carry a +20 m illusion, but detection at the k = 50 challenge
        // must rewind to the k = 15 checkpoint — the corrupted distances
        // never influence the estimates.
        let mut p = pipeline();
        for k in 0..40 {
            feed_clean(&mut p, k, 100.0, 0.0);
        }
        for k in 40..50 {
            // Corrupted but plausible-looking samples (replay with +20 m).
            p.process(Step(k), &clean_obs(120.0, 0.0), V_OWN);
        }
        // Challenge at k = 50: the spoofer is still transmitting → detect.
        let out = p.process(Step(50), &hot_obs(), V_OWN);
        assert!(out.verdict.under_attack());
        let d = out.distance.unwrap().value();
        assert!(
            (d - 100.0).abs() < 1.0,
            "estimate {d} should come from the authenticated state (100 m), \
             not the spoofed 120 m"
        );
    }

    #[test]
    fn unavailable_when_predictor_cold() {
        let mut p = pipeline();
        // Immediate attack at the first challenge with no training data.
        let out = p.process(Step(15), &hot_obs(), V_OWN);
        assert!(out.verdict.under_attack());
        assert_eq!(out.source, MeasurementSource::Unavailable);
        assert_eq!(out.distance, None);
    }

    #[test]
    fn no_target_reports_unavailable() {
        let mut p = pipeline();
        let out = p.process(Step(0), &silent_obs(), V_OWN);
        assert_eq!(out.source, MeasurementSource::Unavailable);
    }

    /// One deterministic step mixing clean, silent and hot observations:
    /// challenge instants are silent while clean, hot inside the attack
    /// window `[a0, a1)`.
    fn feed_step(p: &mut SecurePipeline, k: u64, a0: u64, a1: u64) -> PipelineOutput {
        let obs = if (a0..a1).contains(&k) {
            hot_obs()
        } else if ChallengeSchedule::paper().is_challenge(Step(k)) {
            silent_obs()
        } else {
            clean_obs(100.0 - 0.2 * k as f64, -0.2)
        };
        p.process(Step(k), &obs, V_OWN)
    }

    fn pipeline_of(kind: PredictorKind) -> SecurePipeline {
        SecurePipeline::new(detector(), kind.build().unwrap(), Seconds(1.0))
    }

    #[test]
    fn restore_then_step_equals_uninterrupted_stepping() {
        for kind in [
            PredictorKind::RlsTrend,
            PredictorKind::RlsAr4,
            PredictorKind::Holt,
        ] {
            let mut original = pipeline_of(kind);
            for k in 0..60 {
                feed_step(&mut original, k, 80, 100);
            }
            let snap = original.snapshot();
            let mut restored = pipeline_of(kind);
            restored.restore(&snap).unwrap();
            // The attack window 80..100 exercises the rewind path (the
            // checkpoint + replay buffer captured in the snapshot).
            for k in 60..140 {
                let a = feed_step(&mut original, k, 80, 100);
                let b = feed_step(&mut restored, k, 80, 100);
                assert_eq!(a, b, "{kind:?} diverged at k={k}");
            }
            assert_eq!(original.snapshot(), restored.snapshot(), "{kind:?}");
        }
    }

    #[test]
    fn restore_mid_attack_matches() {
        let mut original = pipeline();
        for k in 0..90 {
            feed_step(&mut original, k, 85, 120);
        }
        let snap = original.snapshot();
        assert!(snap.was_attacked, "snapshot should capture the latch");
        let mut restored = pipeline();
        restored.restore(&snap).unwrap();
        for k in 90..160 {
            let a = feed_step(&mut original, k, 85, 120);
            let b = feed_step(&mut restored, k, 85, 120);
            assert_eq!(a, b, "diverged at k={k}");
        }
        assert_eq!(original.estimation_steps(), restored.estimation_steps());
    }

    #[test]
    fn restore_rejects_cross_kind_snapshot() {
        let mut trend = pipeline_of(PredictorKind::RlsTrend);
        for k in 0..40 {
            feed_step(&mut trend, k, u64::MAX, u64::MAX);
        }
        let snap = trend.snapshot();
        let mut holt = pipeline_of(PredictorKind::Holt);
        for k in 0..10 {
            feed_step(&mut holt, k, u64::MAX, u64::MAX);
        }
        let before = holt.snapshot();
        assert!(holt.restore(&snap).is_err());
        assert_eq!(holt.snapshot(), before, "failed restore must not mutate");
    }

    #[test]
    fn reset_behaves_like_fresh() {
        let mut p = pipeline();
        for k in 0..120 {
            feed_step(&mut p, k, 80, 110);
        }
        p.reset();
        let mut fresh = pipeline();
        assert_eq!(p.snapshot(), fresh.snapshot());
        for k in 0..60 {
            let a = feed_step(&mut p, k, 30, 50);
            let b = feed_step(&mut fresh, k, 30, 50);
            assert_eq!(a, b, "diverged at k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "sample period must be positive")]
    fn zero_dt_rejected() {
        let _ = SecurePipeline::new(
            detector(),
            Box::new(TrendPredictor::paper().unwrap()),
            Seconds(0.0),
        );
    }
}
