use argus_core::Experiment;
fn main() {
    let o = Experiment::fig2b().run(42);
    let gap = o.defended.series("gap_true");
    let d_radar = o.defended.series("d_radar");
    let power = o.defended.series("received_power");
    for k in 185..215 {
        println!(
            "k={k} gap={:8.2} d_radar={:8.2} P={:.2e}",
            gap[k], d_radar[k], power[k]
        );
    }
}
