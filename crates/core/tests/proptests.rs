//! Property-based tests for campaign-level metrics aggregation.

use argus_core::metrics::{CampaignStats, RunMetrics};
use argus_cra::detector::ConfusionMatrix;
use argus_sim::time::Step;
use proptest::prelude::*;

/// Strategy for one plausible trial outcome.
fn run_metrics() -> impl Strategy<Value = RunMetrics> {
    (
        0.0f64..200.0,                      // min_gap
        any::<bool>(),                      // collided
        proptest::option::of(0u64..300),    // detection step
        proptest::option::of(0u64..50),     // detection latency
        0u64..300,                          // estimation steps
        proptest::option::of(0.0f64..50.0), // rmse
        proptest::option::of(0.0f64..50.0), // post-onset rmse
        proptest::collection::vec((any::<bool>(), any::<bool>()), 0..12),
    )
        .prop_map(
            |(min_gap, collided, det, latency, steps, rmse, post_rmse, challenges)| {
                let mut confusion = ConfusionMatrix::new();
                for (live, flagged) in challenges {
                    confusion.record(live, flagged);
                }
                RunMetrics {
                    min_gap,
                    collided,
                    detection_step: det.map(Step),
                    detection_latency: latency,
                    estimation_steps: steps,
                    estimation_time_ns: 0,
                    confusion,
                    attack_window_distance_rmse: rmse,
                    post_onset_distance_rmse: post_rmse,
                    fusion: None,
                }
            },
        )
}

fn fold(metrics: &[RunMetrics]) -> CampaignStats {
    let mut stats = CampaignStats::new();
    for m in metrics {
        stats.record(m);
    }
    stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Percentiles are monotone in `p` for every sample list.
    #[test]
    fn percentiles_are_monotone(
        ms in proptest::collection::vec(run_metrics(), 1..40),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let stats = fold(&ms);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        if let (Some(a), Some(b)) = (stats.min_gap_percentile(lo), stats.min_gap_percentile(hi)) {
            prop_assert!(a <= b + 1e-12, "min_gap p{lo}={a} > p{hi}={b}");
        }
        if let (Some(a), Some(b)) = (stats.latency_percentile(lo), stats.latency_percentile(hi)) {
            prop_assert!(a <= b + 1e-12);
        }
        if let (Some(a), Some(b)) = (stats.rmse_percentile(lo), stats.rmse_percentile(hi)) {
            prop_assert!(a <= b + 1e-12);
        }
    }

    /// Aggregates stay inside their domains: rates in [0, 1], RMSE and
    /// latency percentiles non-negative, counters consistent.
    #[test]
    fn aggregates_stay_in_domain(ms in proptest::collection::vec(run_metrics(), 0..40)) {
        let stats = fold(&ms);
        prop_assert_eq!(stats.trials, ms.len() as u64);
        prop_assert!((0.0..=1.0).contains(&stats.crash_rate()));
        prop_assert!((0.0..=1.0).contains(&stats.detection_rate()));
        prop_assert!(stats.collisions <= stats.trials);
        prop_assert!(stats.detected <= stats.trials);
        for p in [0.0, 25.0, 50.0, 95.0, 100.0] {
            if let Some(r) = stats.rmse_percentile(p) {
                prop_assert!(r >= 0.0);
            }
            if let Some(l) = stats.latency_percentile(p) {
                prop_assert!(l >= 0.0);
            }
        }
        prop_assert!(stats.latencies().len() <= ms.len());
        prop_assert!(stats.rmses().len() <= ms.len());
        prop_assert_eq!(stats.min_gaps().len(), ms.len());
    }

    /// Merging is associative and equals folding the concatenation —
    /// exactly, not just within tolerance, because merge concatenates the
    /// underlying sample lists.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(run_metrics(), 0..12),
        b in proptest::collection::vec(run_metrics(), 0..12),
        c in proptest::collection::vec(run_metrics(), 0..12),
    ) {
        let (sa, sb, sc) = (fold(&a), fold(&b), fold(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        // Both equal the order-preserving fold of the concatenation.
        let mut whole: Vec<RunMetrics> = Vec::new();
        whole.extend(a.iter().copied());
        whole.extend(b.iter().copied());
        whole.extend(c.iter().copied());
        prop_assert_eq!(&left, &fold(&whole));
    }

    /// The empty aggregate is a two-sided identity for merge.
    #[test]
    fn empty_is_merge_identity(ms in proptest::collection::vec(run_metrics(), 0..20)) {
        let stats = fold(&ms);
        let mut left = CampaignStats::new();
        left.merge(&stats);
        let mut right = stats.clone();
        right.merge(&CampaignStats::new());
        prop_assert_eq!(&left, &stats);
        prop_assert_eq!(&right, &stats);
    }
}
