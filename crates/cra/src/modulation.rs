//! Chip-level pseudo-random binary modulation (§5.2's `p'(t) = m(t)·p(t)`).
//!
//! The step-level challenge schedule models whole probes being suppressed;
//! this module models the mechanism one level deeper: each probe is divided
//! into `n` chips, an LFSR draws the binary mask `m`, the transmitter emits
//! only on mask-1 chips, and the verifier compares per-chip received energy
//! against the expected pattern.
//!
//! The physical-latency argument appears at this resolution too: an honest
//! echo reproduces the mask exactly (round-trip delay ≤ 1.3 µs at 200 m is
//! negligible against millisecond chips), a non-adaptive attacker lights up
//! mask-0 chips, and an adaptive attacker that needs `L ≥ 1` chips to react
//! still leaks energy into the first mask-0 chip after each 1→0 transition.
//! Only the hypothetical zero-latency adversary (§7) matches the mask
//! perfectly.

use serde::{Deserialize, Serialize};

use argus_sim::noise::Gaussian;
use argus_sim::rng::SimRng;
use argus_sim::units::Watts;

use crate::lfsr::Lfsr;

/// Per-probe binary modulation mask generator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipModulator {
    lfsr: Lfsr,
    chips: usize,
}

impl ChipModulator {
    /// Creates a modulator drawing `chips` mask bits per probe from `lfsr`.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero.
    pub fn new(lfsr: Lfsr, chips: usize) -> Self {
        assert!(chips > 0, "need at least one chip per probe");
        Self { lfsr, chips }
    }

    /// Chips per probe.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// Draws the next probe's mask. Guaranteed to contain at least one `0`
    /// and one `1` (a flat mask authenticates nothing), by redrawing the
    /// pathological all-equal patterns.
    pub fn next_mask(&mut self) -> Vec<bool> {
        loop {
            let mask: Vec<bool> = (0..self.chips).map(|_| self.lfsr.next_bit() == 1).collect();
            let ones = mask.iter().filter(|&&b| b).count();
            if ones > 0 && ones < self.chips {
                return mask;
            }
        }
    }
}

/// How the channel answers a masked probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChannelBehavior {
    /// Honest reflection: energy exactly on the mask-1 chips.
    Honest {
        /// Echo power on active chips.
        echo: Watts,
    },
    /// Non-adaptive attacker (jammer or free-running replay): energy on
    /// every chip.
    ContinuousAttacker {
        /// Attacker power per chip.
        power: Watts,
    },
    /// Adaptive attacker that mirrors the observed mask with a reaction
    /// latency of `latency_chips` chips (0 = the §7 zero-latency adversary).
    AdaptiveAttacker {
        /// Attacker power on the chips it transmits.
        power: Watts,
        /// Reaction latency in chips.
        latency_chips: usize,
    },
}

/// Simulates the per-chip received energies for a mask and a channel
/// behaviour, with Gaussian-distributed noise energy per chip.
pub fn chip_energies(
    mask: &[bool],
    behavior: ChannelBehavior,
    noise_floor: Watts,
    rng: &mut SimRng,
) -> Vec<f64> {
    let noise = Gaussian::new(noise_floor.value(), noise_floor.value() / 4.0);
    mask.iter()
        .enumerate()
        .map(|(i, &tx)| {
            let mut e = noise.sample(rng).max(0.0);
            match behavior {
                ChannelBehavior::Honest { echo } => {
                    if tx {
                        e += echo.value();
                    }
                }
                ChannelBehavior::ContinuousAttacker { power } => {
                    e += power.value();
                    if tx {
                        // The genuine reflection may still be present too.
                        e += power.value() * 0.1;
                    }
                }
                ChannelBehavior::AdaptiveAttacker {
                    power,
                    latency_chips,
                } => {
                    // The attacker replays what it observed `latency` chips
                    // ago (transmitting before the probe starts is modelled
                    // as following the previous probe's trailing 1s — we
                    // conservatively assume silence before chip 0).
                    let observed = if i >= latency_chips {
                        mask[i - latency_chips]
                    } else {
                        false
                    };
                    if observed {
                        e += power.value();
                    }
                }
            }
            e
        })
        .collect()
}

/// Verdict of one probe verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeVerdict {
    /// Energy pattern matches the mask.
    Authentic,
    /// Energy present on suppressed chips — attack.
    EnergyOnSilentChips,
    /// No energy on active chips — the target echo is missing (DoS by
    /// absorption, or no target); treated as suspicious.
    MissingEcho,
}

/// Compares per-chip energies against the transmitted mask.
///
/// `threshold` separates "energy present" from noise.
///
/// # Panics
///
/// Panics if lengths differ or the threshold is not positive.
pub fn verify_probe(mask: &[bool], energies: &[f64], threshold: f64) -> ProbeVerdict {
    assert_eq!(mask.len(), energies.len(), "mask/energy length mismatch");
    assert!(threshold > 0.0, "threshold must be positive");
    let hot_on_silent = mask
        .iter()
        .zip(energies)
        .any(|(&tx, &e)| !tx && e > threshold);
    if hot_on_silent {
        return ProbeVerdict::EnergyOnSilentChips;
    }
    let echo_present = mask
        .iter()
        .zip(energies)
        .any(|(&tx, &e)| tx && e > threshold);
    if echo_present {
        ProbeVerdict::Authentic
    } else {
        ProbeVerdict::MissingEcho
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modulator() -> ChipModulator {
        ChipModulator::new(Lfsr::maximal(16, 0xBEEF).unwrap(), 16)
    }

    const ECHO: Watts = Watts(1e-12);
    const NOISE: Watts = Watts(1e-14);
    const THRESHOLD: f64 = 1e-13;

    #[test]
    fn masks_are_mixed_and_deterministic() {
        let mut a = modulator();
        let mut b = modulator();
        for _ in 0..50 {
            let mask = a.next_mask();
            assert_eq!(mask, b.next_mask());
            let ones = mask.iter().filter(|&&x| x).count();
            assert!(ones > 0 && ones < mask.len());
        }
    }

    #[test]
    fn honest_channel_authenticates() {
        let mut m = modulator();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            let mask = m.next_mask();
            let e = chip_energies(
                &mask,
                ChannelBehavior::Honest { echo: ECHO },
                NOISE,
                &mut rng,
            );
            assert_eq!(verify_probe(&mask, &e, THRESHOLD), ProbeVerdict::Authentic);
        }
    }

    #[test]
    fn continuous_attacker_always_caught() {
        let mut m = modulator();
        let mut rng = SimRng::seed_from(2);
        for _ in 0..100 {
            let mask = m.next_mask();
            let e = chip_energies(
                &mask,
                ChannelBehavior::ContinuousAttacker {
                    power: Watts(1e-11),
                },
                NOISE,
                &mut rng,
            );
            assert_eq!(
                verify_probe(&mask, &e, THRESHOLD),
                ProbeVerdict::EnergyOnSilentChips
            );
        }
    }

    #[test]
    fn adaptive_attacker_with_latency_leaks_at_transitions() {
        // With one-chip latency the attacker lights the first silent chip
        // after every 1→0 transition; over enough probes it is caught with
        // certainty.
        let mut m = modulator();
        let mut rng = SimRng::seed_from(3);
        let mut caught = 0;
        let probes = 100;
        for _ in 0..probes {
            let mask = m.next_mask();
            let e = chip_energies(
                &mask,
                ChannelBehavior::AdaptiveAttacker {
                    power: Watts(1e-11),
                    latency_chips: 1,
                },
                NOISE,
                &mut rng,
            );
            if verify_probe(&mask, &e, THRESHOLD) == ProbeVerdict::EnergyOnSilentChips {
                caught += 1;
            }
        }
        // Every mask with a 1→0 transition betrays the attacker; masks are
        // guaranteed mixed, so a 1→0 transition exists unless the single
        // block of ones ends exactly at the probe boundary.
        assert!(caught > probes * 8 / 10, "caught only {caught}/{probes}");
    }

    #[test]
    fn zero_latency_attacker_evades_chip_verification() {
        // The §7 limitation at chip resolution: a zero-latency adversary
        // mirrors the mask perfectly and authenticates as if honest.
        let mut m = modulator();
        let mut rng = SimRng::seed_from(4);
        for _ in 0..50 {
            let mask = m.next_mask();
            let e = chip_energies(
                &mask,
                ChannelBehavior::AdaptiveAttacker {
                    power: Watts(1e-11),
                    latency_chips: 0,
                },
                NOISE,
                &mut rng,
            );
            assert_eq!(verify_probe(&mask, &e, THRESHOLD), ProbeVerdict::Authentic);
        }
    }

    #[test]
    fn missing_echo_flagged() {
        let mut m = modulator();
        let mut rng = SimRng::seed_from(5);
        let mask = m.next_mask();
        let e = chip_energies(
            &mask,
            ChannelBehavior::Honest { echo: Watts(1e-16) }, // below threshold
            NOISE,
            &mut rng,
        );
        assert_eq!(
            verify_probe(&mask, &e, THRESHOLD),
            ProbeVerdict::MissingEcho
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn verify_checks_lengths() {
        let _ = verify_probe(&[true], &[1.0, 2.0], 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one chip")]
    fn zero_chips_rejected() {
        let _ = ChipModulator::new(Lfsr::maximal(8, 1).unwrap(), 0);
    }
}
