//! Fibonacci linear-feedback shift registers.
//!
//! The pseudo-random binary modulation signal `m(t)` of §5.2 needs a
//! deterministic, hardware-friendly bit source; maximal-length LFSRs are the
//! standard choice. Tap sets below are primitive polynomials, giving period
//! `2ⁿ − 1`.

use serde::{Deserialize, Serialize};

/// A Fibonacci LFSR over up to 64 bits.
///
/// ```
/// use argus_cra::lfsr::Lfsr;
/// let mut l = Lfsr::maximal(8, 1).unwrap();
/// let first: Vec<u8> = (0..8).map(|_| l.next_bit()).collect();
/// assert_eq!(first.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lfsr {
    state: u64,
    taps: Vec<u32>,
    width: u32,
}

/// Error returned for unsupported LFSR configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LfsrError(pub String);

impl std::fmt::Display for LfsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid LFSR configuration: {}", self.0)
    }
}

impl std::error::Error for LfsrError {}

impl Lfsr {
    /// Creates an LFSR of `width` bits with explicit feedback `taps`
    /// (1-indexed from the output end, as in the standard polynomial
    /// notation, e.g. `x⁸+x⁶+x⁵+x⁴+1` ⇒ `[8, 6, 5, 4]`).
    ///
    /// # Errors
    ///
    /// Returns [`LfsrError`] when the width is 0 or above 64, the seed is
    /// zero (the LFSR would lock up), or a tap is out of range.
    pub fn new(width: u32, taps: Vec<u32>, seed: u64) -> Result<Self, LfsrError> {
        if width == 0 || width > 64 {
            return Err(LfsrError(format!("width {width} outside 1..=64")));
        }
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        if seed & mask == 0 {
            return Err(LfsrError("seed must be non-zero in the register".into()));
        }
        if taps.is_empty() || taps.iter().any(|&t| t == 0 || t > width) {
            return Err(LfsrError(format!(
                "taps {taps:?} invalid for width {width}"
            )));
        }
        if !taps.contains(&width) {
            return Err(LfsrError(format!(
                "taps {taps:?} must include the leading term {width} (the x^{width} \
                 coefficient of the feedback polynomial)"
            )));
        }
        Ok(Self {
            state: seed & mask,
            taps,
            width,
        })
    }

    /// Creates a maximal-length LFSR for a supported width using a known
    /// primitive polynomial.
    ///
    /// # Errors
    ///
    /// Returns [`LfsrError`] for widths without a built-in polynomial or a
    /// zero seed.
    pub fn maximal(width: u32, seed: u64) -> Result<Self, LfsrError> {
        let taps: &[u32] = match width {
            3 => &[3, 2],
            4 => &[4, 3],
            5 => &[5, 3],
            7 => &[7, 6],
            8 => &[8, 6, 5, 4],
            16 => &[16, 14, 13, 11],
            24 => &[24, 23, 22, 17],
            32 => &[32, 22, 2, 1],
            _ => {
                return Err(LfsrError(format!(
                    "no built-in primitive polynomial for width {width}"
                )))
            }
        };
        Self::new(width, taps.to_vec(), seed)
    }

    /// Current register contents.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Produces the next output bit (0 or 1) and advances the register.
    pub fn next_bit(&mut self) -> u8 {
        let out = (self.state & 1) as u8;
        // Feedback taps: a term x^t of the polynomial reads register bit
        // (width − t); the leading term reads bit 0 (the outgoing bit),
        // which keeps the state-transition map bijective.
        let mut feedback = 0u64;
        for &t in &self.taps {
            feedback ^= (self.state >> (self.width - t)) & 1;
        }
        self.state >>= 1;
        self.state |= feedback << (self.width - 1);
        out
    }

    /// Produces the next `n ≤ 64` bits packed LSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or above 64.
    pub fn next_bits(&mut self, n: u32) -> u64 {
        assert!((1..=64).contains(&n), "bit count {n} outside 1..=64");
        let mut v = 0u64;
        for i in 0..n {
            v |= u64::from(self.next_bit()) << i;
        }
        v
    }

    /// Produces a uniform-ish value in `[0, 1)` from the next 32 bits.
    pub fn next_fraction(&mut self) -> f64 {
        self.next_bits(32) as f64 / (1u64 << 32) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn period(mut l: Lfsr) -> u64 {
        let start = l.state();
        let mut n = 0u64;
        loop {
            l.next_bit();
            n += 1;
            if l.state() == start {
                return n;
            }
            assert!(n < 1 << 20, "runaway period search");
        }
    }

    #[test]
    fn maximal_periods() {
        for width in [3u32, 4, 5, 7, 8] {
            let l = Lfsr::maximal(width, 1).unwrap();
            assert_eq!(period(l), (1 << width) - 1, "width {width}");
        }
    }

    #[test]
    fn sixteen_bit_period() {
        let l = Lfsr::maximal(16, 0xACE1).unwrap();
        assert_eq!(period(l), 65_535);
    }

    #[test]
    fn bit_balance_is_near_half() {
        let mut l = Lfsr::maximal(16, 0xBEEF).unwrap();
        let n = 65_535;
        let ones: u32 = (0..n).map(|_| u32::from(l.next_bit())).sum();
        // A maximal LFSR of width w outputs 2^(w-1) ones per period.
        assert_eq!(ones, 32_768);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Lfsr::maximal(16, 7).unwrap();
        let mut b = Lfsr::maximal(16, 7).unwrap();
        for _ in 0..1000 {
            assert_eq!(a.next_bit(), b.next_bit());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Lfsr::maximal(16, 7).unwrap();
        let mut b = Lfsr::maximal(16, 1234).unwrap();
        let equal = (0..64).filter(|_| a.next_bit() == b.next_bit()).count();
        assert!(equal < 64);
    }

    #[test]
    fn next_bits_packs_lsb_first() {
        let mut a = Lfsr::maximal(8, 3).unwrap();
        let mut b = Lfsr::maximal(8, 3).unwrap();
        let bits: Vec<u8> = (0..8).map(|_| a.next_bit()).collect();
        let packed = b.next_bits(8);
        for (i, &bit) in bits.iter().enumerate() {
            assert_eq!((packed >> i) & 1, u64::from(bit));
        }
    }

    #[test]
    fn fraction_in_unit_interval() {
        let mut l = Lfsr::maximal(32, 99).unwrap();
        for _ in 0..100 {
            let f = l.next_fraction();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn zero_seed_rejected() {
        assert!(Lfsr::maximal(8, 0).is_err());
        assert!(Lfsr::new(8, vec![8, 6, 5, 4], 0x100).is_err()); // 0 in-register
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Lfsr::new(0, vec![1], 1).is_err());
        assert!(Lfsr::new(65, vec![1], 1).is_err());
        assert!(Lfsr::new(8, vec![], 1).is_err());
        assert!(Lfsr::new(8, vec![9], 1).is_err());
        assert!(Lfsr::maximal(6, 1).is_err()); // no built-in polynomial
    }

    #[test]
    fn error_display() {
        let e = Lfsr::maximal(8, 0).unwrap_err();
        assert!(e.to_string().contains("invalid LFSR configuration"));
    }
}
