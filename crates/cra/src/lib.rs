//! # argus-cra — challenge–response authentication for active sensors
//!
//! The paper's detection method (§5.2): the radar's modulation unit is
//! extended with a pseudo-random binary modulation `p'(t) = m(t)·p(t)`. At
//! the (secret, pseudo-random) instants where `m(t) = 0` the radar transmits
//! nothing, so an honest environment returns nothing; any received energy at
//! those instants betrays an attacker. The method produces no false
//! positives or false negatives against physical adversaries, because an
//! attacker's receive–replay chain cannot react with zero latency.
//!
//! * [`lfsr`] — maximal-length Fibonacci LFSRs, the pseudo-random bit source
//!   for the modulation.
//! * [`challenge`] — challenge schedules: the paper's fixed instants, or
//!   LFSR-driven schedules at a configurable rate.
//! * [`detector`] — Algorithm 2's comparator with detection latching and a
//!   confusion-matrix scorer.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod challenge;
pub mod detector;
pub mod lfsr;
pub mod modulation;

pub use challenge::ChallengeSchedule;
pub use detector::{ConfusionMatrix, CraDetector, DetectorState, Verdict};
pub use lfsr::Lfsr;
pub use modulation::{ChannelBehavior, ChipModulator, ProbeVerdict};
