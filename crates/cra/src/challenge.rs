//! Challenge schedules: the instants `T_c` at which the radar suppresses
//! its probe (`m(t) = 0`).
//!
//! The schedule must be unpredictable to the attacker (hence the LFSR
//! source) but is of course known to the detector. Figures 2–3 of the paper
//! show challenges at k = 15, 50, 175 "etc." with detection at k = 182 — the
//! [`ChallengeSchedule::paper`] constructor reproduces that timeline.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use argus_sim::time::Step;

use crate::lfsr::Lfsr;

/// A set of challenge instants over a simulation horizon.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChallengeSchedule {
    instants: BTreeSet<u64>,
}

impl ChallengeSchedule {
    /// Builds a schedule from explicit steps.
    pub fn from_steps<I: IntoIterator<Item = Step>>(steps: I) -> Self {
        Self {
            instants: steps.into_iter().map(|s| s.0).collect(),
        }
    }

    /// The paper's figure timeline: challenges at k = 15, 50, 175 (visible
    /// as zero-spikes in Figures 2–3), k = 182 (the detection instant) and
    /// periodically thereafter so recovery/end-of-attack can be observed.
    pub fn paper() -> Self {
        Self::from_steps(
            [15u64, 50, 85, 120, 150, 175, 182, 210, 240, 270, 295]
                .into_iter()
                .map(Step),
        )
    }

    /// Builds a pseudo-random schedule over `[0, horizon)` where each step
    /// is (independently, per LFSR bits) a challenge with probability
    /// `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `(0, 1)`.
    pub fn pseudorandom(mut lfsr: Lfsr, horizon: usize, rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate < 1.0,
            "challenge rate {rate} outside (0, 1)"
        );
        let instants = (0..horizon as u64)
            .filter(|_| lfsr.next_fraction() < rate)
            .collect();
        Self { instants }
    }

    /// `true` when step `k` is a challenge instant (`k ∈ T_c`).
    pub fn is_challenge(&self, k: Step) -> bool {
        self.instants.contains(&k.0)
    }

    /// Whether the radar transmits at step `k` (the modulation signal
    /// `m(k)`): the complement of [`ChallengeSchedule::is_challenge`].
    pub fn tx_on(&self, k: Step) -> bool {
        !self.is_challenge(k)
    }

    /// The first challenge instant at or after `k`, if any.
    pub fn next_at_or_after(&self, k: Step) -> Option<Step> {
        self.instants.range(k.0..).next().map(|&v| Step(v))
    }

    /// All challenge instants in order.
    pub fn instants(&self) -> impl Iterator<Item = Step> + '_ {
        self.instants.iter().map(|&v| Step(v))
    }

    /// Number of challenge instants.
    pub fn len(&self) -> usize {
        self.instants.len()
    }

    /// `true` when the schedule has no challenges.
    pub fn is_empty(&self) -> bool {
        self.instants.is_empty()
    }

    /// Worst-case detection latency if an attack can begin at any step
    /// within `[0, horizon)`: the largest gap between consecutive
    /// challenges (attack onset just after a challenge waits the whole gap).
    pub fn max_detection_latency(&self, horizon: Step) -> Option<u64> {
        if self.instants.is_empty() {
            return None;
        }
        let mut prev = 0u64;
        let mut worst = 0u64;
        for &c in &self.instants {
            worst = worst.max(c - prev);
            prev = c;
        }
        worst = worst.max(horizon.0.saturating_sub(prev));
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_contains_figure_instants() {
        let s = ChallengeSchedule::paper();
        for k in [15, 50, 175, 182] {
            assert!(s.is_challenge(Step(k)), "k={k}");
        }
        assert!(!s.is_challenge(Step(0)));
        assert!(!s.is_challenge(Step(100)));
    }

    #[test]
    fn tx_is_complement_of_challenge() {
        let s = ChallengeSchedule::paper();
        for k in 0..300 {
            assert_ne!(s.is_challenge(Step(k)), s.tx_on(Step(k)));
        }
    }

    #[test]
    fn next_at_or_after() {
        let s = ChallengeSchedule::paper();
        assert_eq!(s.next_at_or_after(Step(0)), Some(Step(15)));
        assert_eq!(s.next_at_or_after(Step(15)), Some(Step(15)));
        assert_eq!(s.next_at_or_after(Step(176)), Some(Step(182)));
        assert_eq!(s.next_at_or_after(Step(296)), None);
    }

    #[test]
    fn pseudorandom_rate_is_respected() {
        let lfsr = Lfsr::maximal(32, 12345).unwrap();
        let s = ChallengeSchedule::pseudorandom(lfsr, 10_000, 0.1);
        let rate = s.len() as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn pseudorandom_is_deterministic() {
        let a = ChallengeSchedule::pseudorandom(Lfsr::maximal(16, 7).unwrap(), 1000, 0.05);
        let b = ChallengeSchedule::pseudorandom(Lfsr::maximal(16, 7).unwrap(), 1000, 0.05);
        assert_eq!(a, b);
    }

    #[test]
    fn detection_latency_bound() {
        let s = ChallengeSchedule::from_steps([Step(10), Step(20), Step(50)]);
        // Largest gap: 20→50 is 30; 50→horizon(60) is 10; 0→10 is 10.
        assert_eq!(s.max_detection_latency(Step(60)), Some(30));
        assert_eq!(
            ChallengeSchedule::from_steps(std::iter::empty::<Step>())
                .max_detection_latency(Step(60)),
            None
        );
    }

    #[test]
    fn empty_and_len() {
        let s = ChallengeSchedule::from_steps([Step(1), Step(2), Step(2)]);
        assert_eq!(s.len(), 2); // set semantics
        assert!(!s.is_empty());
        let instants: Vec<_> = s.instants().collect();
        assert_eq!(instants, vec![Step(1), Step(2)]);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn silly_rate_rejected() {
        let _ = ChallengeSchedule::pseudorandom(Lfsr::maximal(16, 1).unwrap(), 100, 1.5);
    }
}
