//! The Algorithm 2 comparator: detection and latching.
//!
//! At every challenge instant `k ∈ T_c` the radar transmitted nothing, so an
//! honest channel delivers (at most) thermal noise. The detector compares
//! the received in-band power against a threshold sitting well above the
//! noise floor and well below any plausible attack signal:
//!
//! * power above threshold at a challenge instant → **attack detected**
//!   (latched until a later challenge passes cleanly);
//! * power below threshold at a challenge instant → channel is clean; any
//!   previously latched detection is released (attack over).
//!
//! Between challenges the verdict simply reports the latched state.

use serde::{Deserialize, Serialize};

use argus_sim::time::Step;
use argus_sim::units::Watts;

use crate::challenge::ChallengeSchedule;

/// Per-step detector verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// Not a challenge instant; latched state unchanged.
    NotChallenged {
        /// Whether an attack is currently latched.
        under_attack: bool,
    },
    /// Challenge instant, received power below threshold — channel clean.
    ChallengePassed,
    /// Challenge instant, received power above threshold — attack!
    AttackDetected,
}

impl Verdict {
    /// `true` when the detector currently believes an attack is live.
    pub fn under_attack(&self) -> bool {
        match self {
            Verdict::NotChallenged { under_attack } => *under_attack,
            Verdict::ChallengePassed => false,
            Verdict::AttackDetected => true,
        }
    }
}

/// Plain-old-data export of a detector's mutable state (the latch and the
/// detection log). The schedule and threshold are configuration, not state:
/// a restored detector keeps whatever it was constructed with.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DetectorState {
    /// Whether an attack is currently latched.
    pub latched: bool,
    /// Step index of the first detection, if any.
    pub first_detection: Option<u64>,
    /// Step indices of all rising-edge detections.
    pub detections: Vec<u64>,
}

/// The CRA detector (lines 7–16 of Algorithm 2).
///
/// ```
/// use argus_cra::{ChallengeSchedule, CraDetector, Verdict};
/// use argus_sim::{time::Step, units::Watts};
///
/// let mut det = CraDetector::new(ChallengeSchedule::paper(), Watts(1e-13));
/// // Clean challenge at k = 15: nothing received.
/// assert_eq!(det.update(Step(15), Watts(1e-15)), Verdict::ChallengePassed);
/// // Attacker energy at the k = 182 challenge: detected.
/// assert_eq!(det.update(Step(182), Watts(1e-9)), Verdict::AttackDetected);
/// assert_eq!(det.first_detection(), Some(Step(182)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CraDetector {
    schedule: ChallengeSchedule,
    threshold: Watts,
    latched: bool,
    first_detection: Option<Step>,
    detections: Vec<Step>,
}

impl CraDetector {
    /// Creates a detector over a schedule with a power threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not strictly positive.
    pub fn new(schedule: ChallengeSchedule, threshold: Watts) -> Self {
        assert!(
            threshold.value() > 0.0,
            "detection threshold must be positive"
        );
        Self {
            schedule,
            threshold,
            latched: false,
            first_detection: None,
            detections: Vec::new(),
        }
    }

    /// The challenge schedule in use.
    pub fn schedule(&self) -> &ChallengeSchedule {
        &self.schedule
    }

    /// The power threshold.
    pub fn threshold(&self) -> Watts {
        self.threshold
    }

    /// Whether the radar should transmit at step `k` (drives the CRA
    /// modulation of the radar front-end).
    pub fn tx_on(&self, k: Step) -> bool {
        self.schedule.tx_on(k)
    }

    /// Processes the received power at step `k` and returns the verdict.
    pub fn update(&mut self, k: Step, received_power: Watts) -> Verdict {
        if !self.schedule.is_challenge(k) {
            return Verdict::NotChallenged {
                under_attack: self.latched,
            };
        }
        if received_power.value() > self.threshold.value() {
            if !self.latched {
                self.detections.push(k);
                if self.first_detection.is_none() {
                    self.first_detection = Some(k);
                }
            }
            self.latched = true;
            Verdict::AttackDetected
        } else {
            self.latched = false;
            Verdict::ChallengePassed
        }
    }

    /// `true` while an attack is latched.
    pub fn under_attack(&self) -> bool {
        self.latched
    }

    /// Step of the first detection, if any (`t_ad` of Algorithm 2).
    pub fn first_detection(&self) -> Option<Step> {
        self.first_detection
    }

    /// Steps at which a *new* attack was detected (rising edges).
    pub fn detections(&self) -> &[Step] {
        &self.detections
    }

    /// Clears all detector state (schedule retained).
    pub fn reset(&mut self) {
        self.latched = false;
        self.first_detection = None;
        self.detections.clear();
    }

    /// Exports the mutable state (latch + detection log) as plain old data.
    pub fn save_state(&self) -> DetectorState {
        DetectorState {
            latched: self.latched,
            first_detection: self.first_detection.map(|s| s.0),
            detections: self.detections.iter().map(|s| s.0).collect(),
        }
    }

    /// Restores state saved by [`Self::save_state`]; after the restore the
    /// detector behaves identically to the one that was saved.
    pub fn restore_state(&mut self, state: &DetectorState) {
        self.latched = state.latched;
        self.first_detection = state.first_detection.map(Step);
        self.detections.clear();
        self.detections
            .extend(state.detections.iter().map(|&s| Step(s)));
    }
}

/// Confusion-matrix scoring of detector verdicts against ground truth,
/// evaluated **at challenge instants** (the only instants at which the CRA
/// method renders a decision).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Challenge instants where an attack was live and flagged.
    pub true_positives: u64,
    /// Challenge instants where no attack was live but one was flagged.
    pub false_positives: u64,
    /// Challenge instants where no attack was live and none flagged.
    pub true_negatives: u64,
    /// Challenge instants where an attack was live but not flagged.
    pub false_negatives: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one challenge-instant outcome.
    pub fn record(&mut self, attack_live: bool, flagged: bool) {
        match (attack_live, flagged) {
            (true, true) => self.true_positives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (true, false) => self.false_negatives += 1,
        }
    }

    /// Total challenge instants scored.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// False-positive rate (0 when no negatives were seen).
    pub fn false_positive_rate(&self) -> f64 {
        let negatives = self.false_positives + self.true_negatives;
        if negatives == 0 {
            0.0
        } else {
            self.false_positives as f64 / negatives as f64
        }
    }

    /// False-negative rate (0 when no positives were seen).
    pub fn false_negative_rate(&self) -> f64 {
        let positives = self.true_positives + self.false_negatives;
        if positives == 0 {
            0.0
        } else {
            self.false_negatives as f64 / positives as f64
        }
    }

    /// `true` when the detector made no mistakes — the paper's headline
    /// claim ("does not produce any false positives or false negatives").
    pub fn is_perfect(&self) -> bool {
        self.false_positives == 0 && self.false_negatives == 0
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TP={} FP={} TN={} FN={} (FPR={:.3}, FNR={:.3})",
            self.true_positives,
            self.false_positives,
            self.true_negatives,
            self.false_negatives,
            self.false_positive_rate(),
            self.false_negative_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> CraDetector {
        CraDetector::new(ChallengeSchedule::paper(), Watts(1e-14))
    }

    #[test]
    fn clean_challenge_passes() {
        let mut d = detector();
        let v = d.update(Step(15), Watts(1e-16));
        assert_eq!(v, Verdict::ChallengePassed);
        assert!(!v.under_attack());
        assert!(d.first_detection().is_none());
    }

    #[test]
    fn hot_challenge_detects() {
        let mut d = detector();
        let v = d.update(Step(182), Watts(1e-9));
        assert_eq!(v, Verdict::AttackDetected);
        assert!(v.under_attack());
        assert_eq!(d.first_detection(), Some(Step(182)));
    }

    #[test]
    fn non_challenge_steps_do_not_decide() {
        let mut d = detector();
        // Attack power at a non-challenge step is invisible to CRA.
        let v = d.update(Step(100), Watts(1e-9));
        assert_eq!(
            v,
            Verdict::NotChallenged {
                under_attack: false
            }
        );
    }

    #[test]
    fn latch_holds_between_challenges() {
        let mut d = detector();
        d.update(Step(182), Watts(1e-9));
        let v = d.update(Step(183), Watts(1e-16)); // power irrelevant here
        assert_eq!(v, Verdict::NotChallenged { under_attack: true });
        assert!(d.under_attack());
    }

    #[test]
    fn clean_challenge_releases_latch() {
        let mut d = detector();
        d.update(Step(182), Watts(1e-9));
        assert!(d.under_attack());
        let v = d.update(Step(210), Watts(1e-16));
        assert_eq!(v, Verdict::ChallengePassed);
        assert!(!d.under_attack());
    }

    #[test]
    fn rising_edges_recorded_once() {
        let mut d = detector();
        d.update(Step(182), Watts(1e-9));
        d.update(Step(210), Watts(1e-9)); // still latched, not a new edge
        assert_eq!(d.detections(), &[Step(182)]);
        d.update(Step(240), Watts(1e-16)); // released
        d.update(Step(270), Watts(1e-9)); // new attack edge
        assert_eq!(d.detections(), &[Step(182), Step(270)]);
        assert_eq!(d.first_detection(), Some(Step(182)));
    }

    #[test]
    fn reset_clears_state() {
        let mut d = detector();
        d.update(Step(182), Watts(1e-9));
        d.reset();
        assert!(!d.under_attack());
        assert!(d.first_detection().is_none());
        assert!(d.detections().is_empty());
    }

    #[test]
    fn state_roundtrip() {
        let mut d = detector();
        d.update(Step(182), Watts(1e-9));
        d.update(Step(183), Watts(1e-16));
        let state = d.save_state();
        assert!(state.latched);
        assert_eq!(state.first_detection, Some(182));
        let mut fresh = detector();
        fresh.restore_state(&state);
        assert_eq!(fresh, d);
        // Restored latch behaves identically on subsequent updates.
        let a = d.update(Step(210), Watts(1e-16));
        let b = fresh.update(Step(210), Watts(1e-16));
        assert_eq!(a, b);
        assert_eq!(fresh, d);
    }

    #[test]
    fn threshold_boundary_exclusive() {
        let mut d = detector();
        // Exactly at the threshold does NOT trigger (strictly above).
        let v = d.update(Step(15), Watts(1e-14));
        assert_eq!(v, Verdict::ChallengePassed);
    }

    #[test]
    fn confusion_matrix_counts() {
        let mut m = ConfusionMatrix::new();
        m.record(true, true);
        m.record(true, true);
        m.record(false, false);
        m.record(false, true);
        m.record(true, false);
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.true_negatives, 1);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.total(), 5);
        assert!((m.false_positive_rate() - 0.5).abs() < 1e-12);
        assert!((m.false_negative_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!(!m.is_perfect());
    }

    #[test]
    fn perfect_matrix() {
        let mut m = ConfusionMatrix::new();
        m.record(true, true);
        m.record(false, false);
        assert!(m.is_perfect());
        assert_eq!(m.false_positive_rate(), 0.0);
        assert_eq!(m.false_negative_rate(), 0.0);
    }

    #[test]
    fn empty_matrix_rates_are_zero() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.false_positive_rate(), 0.0);
        assert_eq!(m.false_negative_rate(), 0.0);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn display_contains_counts() {
        let mut m = ConfusionMatrix::new();
        m.record(true, true);
        assert!(m.to_string().contains("TP=1"));
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        let _ = CraDetector::new(ChallengeSchedule::paper(), Watts(0.0));
    }
}
