//! Property-based tests for the CRA layer.

use argus_cra::{ChallengeSchedule, CraDetector, Lfsr};
use argus_sim::time::Step;
use argus_sim::units::Watts;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LFSR streams are deterministic in the seed and never stall (the
    /// register never reaches the all-zero lockup state).
    #[test]
    fn lfsr_never_locks_up(width in prop::sample::select(vec![3u32, 4, 5, 7, 8, 16]), seed in 1u64..0xFFFF) {
        let mask = (1u64 << width) - 1;
        prop_assume!(seed & mask != 0);
        let mut l = Lfsr::maximal(width, seed).unwrap();
        for _ in 0..1000 {
            l.next_bit();
            prop_assert!(l.state() & mask != 0, "LFSR locked up");
        }
    }

    /// Schedule membership agrees with the instants iterator.
    #[test]
    fn schedule_membership_consistent(steps in proptest::collection::btree_set(0u64..500, 0..40)) {
        let schedule = ChallengeSchedule::from_steps(steps.iter().map(|&s| Step(s)));
        for k in 0..500u64 {
            prop_assert_eq!(schedule.is_challenge(Step(k)), steps.contains(&k));
        }
        prop_assert_eq!(schedule.len(), steps.len());
    }

    /// next_at_or_after returns the minimum qualifying instant.
    #[test]
    fn next_at_or_after_is_min(
        steps in proptest::collection::btree_set(0u64..300, 1..30),
        from in 0u64..300,
    ) {
        let schedule = ChallengeSchedule::from_steps(steps.iter().map(|&s| Step(s)));
        let expected = steps.iter().find(|&&s| s >= from).map(|&s| Step(s));
        prop_assert_eq!(schedule.next_at_or_after(Step(from)), expected);
    }

    /// Detector invariant: after any power sequence, `under_attack()` holds
    /// iff the most recent *challenge* instant saw power above threshold.
    #[test]
    fn detector_state_is_last_challenge_outcome(
        challenge_steps in proptest::collection::btree_set(0u64..100, 1..20),
        powers in proptest::collection::vec(0.0f64..2e-13, 100),
    ) {
        let schedule = ChallengeSchedule::from_steps(challenge_steps.iter().map(|&s| Step(s)));
        let threshold = Watts(1e-13);
        let mut det = CraDetector::new(schedule, threshold);
        let mut expected = false;
        for (k, &p) in powers.iter().enumerate() {
            let verdict = det.update(Step(k as u64), Watts(p));
            if challenge_steps.contains(&(k as u64)) {
                expected = p > threshold.value();
            }
            prop_assert_eq!(verdict.under_attack(), expected, "at k={}", k);
        }
    }

    /// The first detection step is always a challenge instant with power
    /// above threshold.
    #[test]
    fn first_detection_is_a_hot_challenge(
        challenge_steps in proptest::collection::btree_set(0u64..80, 1..15),
        powers in proptest::collection::vec(0.0f64..3e-13, 80),
    ) {
        let schedule = ChallengeSchedule::from_steps(challenge_steps.iter().map(|&s| Step(s)));
        let threshold = Watts(1e-13);
        let mut det = CraDetector::new(schedule, threshold);
        for (k, &p) in powers.iter().enumerate() {
            det.update(Step(k as u64), Watts(p));
        }
        if let Some(first) = det.first_detection() {
            prop_assert!(challenge_steps.contains(&first.0));
            prop_assert!(powers[first.index()] > threshold.value());
        } else {
            // No detection ⇒ every challenge saw sub-threshold power.
            for &c in &challenge_steps {
                prop_assert!(powers[c as usize] <= threshold.value());
            }
        }
    }

    /// Pseudorandom schedules are reproducible and respect the horizon.
    #[test]
    fn pseudorandom_schedule_bounds(seed in 1u64..100_000, rate in 0.01f64..0.5) {
        let a = ChallengeSchedule::pseudorandom(Lfsr::maximal(32, seed).unwrap(), 200, rate);
        let b = ChallengeSchedule::pseudorandom(Lfsr::maximal(32, seed).unwrap(), 200, rate);
        prop_assert_eq!(&a, &b);
        for s in a.instants() {
            prop_assert!(s.0 < 200);
        }
    }
}
