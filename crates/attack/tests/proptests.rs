//! Property-based tests for the adversarial scenario registry: every
//! registered scenario renders a **deterministic** attack signal under a
//! fixed trial substream, and **diverges** across trial indices — the
//! contract the chaos campaign's replay/byte-identity guarantees rest on.

use argus_attack::{Adversary, ScenarioParams, ScenarioRegistry};
use argus_radar::receiver::Radar;
use argus_radar::target::RadarTarget;
use argus_radar::RadarConfig;
use argus_sim::rng::SimRng;
use argus_sim::time::Step;
use argus_sim::units::{Meters, MetersPerSecond};
use proptest::prelude::*;

/// Steps rendered per fingerprint — covers every built-in scenario window
/// (onsets 150..182, horizons through step 300).
const HORIZON: u64 = 301;

/// Renders the full channel sequence for `adversary` from one trial
/// substream and folds it into a bit-exact fingerprint: the raw IEEE-754
/// bits of every echo coordinate and the interference floor, step by step.
fn fingerprint(adversary: &Adversary, master_seed: u64, trial: u64) -> Vec<u64> {
    let radar = Radar::new(RadarConfig::bosch_lrr2());
    let root = SimRng::seed_from(master_seed);
    let mut runtime = adversary.runtime(root.substream(&format!("trial{trial}")));
    let mut bits = Vec::new();
    for k in 0..HORIZON {
        // Synthetic closing trajectory: 100 m shrinking at 2 m/s-ish, so
        // sequential attacks (drift, replay) have a live target to shadow.
        let target = RadarTarget::new(Meters(100.0 - 0.1 * k as f64), MetersPerSecond(-2.0), 10.0);
        let channel = adversary.channel_at_with(Step(k), true, Some(&target), &radar, &mut runtime);
        for echo in &channel.echoes {
            bits.push(echo.distance.value().to_bits());
            bits.push(echo.range_rate.value().to_bits());
            bits.push(echo.power.value().to_bits());
        }
        bits.push(channel.interference.value().to_bits());
    }
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same scenario + same trial substream → bit-identical attack signal,
    /// for every registered scenario and arbitrary master seeds.
    #[test]
    fn scenario_signal_invariant_under_rerun(
        name in proptest::sample::select(ScenarioRegistry::builtin().names()),
        master_seed in any::<u64>(),
        trial in 0u64..64,
    ) {
        let adversary = ScenarioRegistry::builtin()
            .build_default(name)
            .expect("registered scenario builds from defaults");
        let first = fingerprint(&adversary, master_seed, trial);
        let second = fingerprint(&adversary, master_seed, trial);
        prop_assert_eq!(first, second);
    }

    /// Different trial indices draw from different substreams, so every
    /// scenario's realization diverges (all built-in defaults carry
    /// non-zero jitter/fade — zero-jitter configs are the paper figures,
    /// not the chaos campaign).
    #[test]
    fn scenario_signal_diverges_across_trials(
        name in proptest::sample::select(ScenarioRegistry::builtin().names()),
        master_seed in any::<u64>(),
        trial in 0u64..32,
    ) {
        let adversary = ScenarioRegistry::builtin()
            .build_default(name)
            .expect("registered scenario builds from defaults");
        let a = fingerprint(&adversary, master_seed, trial);
        let b = fingerprint(&adversary, master_seed, trial + 1);
        prop_assert_ne!(a, b);
    }

    /// Every registered scenario accepts any positive finite strength and
    /// any positive duration, and the built adversary's window matches the
    /// requested one exactly.
    #[test]
    fn scenario_params_round_trip_into_windows(
        name in proptest::sample::select(ScenarioRegistry::builtin().names()),
        onset in 0u64..280,
        duration in 1u64..150,
        strength in 0.1f64..20.0,
    ) {
        let params = ScenarioParams { onset, duration, strength };
        let adversary = ScenarioRegistry::builtin()
            .build(name, &params)
            .expect("positive finite params are valid for every scenario");
        prop_assert_eq!(adversary.window().start(), Step(onset));
        prop_assert_eq!(adversary.window().end(), Step(onset + duration - 1));
    }
}
