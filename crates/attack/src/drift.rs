//! Velocity-drift spoofing: an optimal-style sequential attack shaped
//! against the free-running predictor.
//!
//! Rather than jamming or jumping the range (both loud), this attacker
//! replays the genuine echo with a *slowly growing* extra delay and a
//! kinematically consistent Doppler offset: the apparent gap opens by
//! `rate` metres per second and the apparent range rate agrees with that
//! drift. Every individual measurement is plausible and the innovation
//! sequence stays small — the stealthy ramp of Ma et al. 2020's sequential
//! attacks against learning-based estimators (PAPERS.md), here aimed at the
//! paper's RLS/Holt trend predictors, which happily extrapolate a
//! consistent trend.
//!
//! The defense does not catch this by statistics; it catches it physically:
//! the replay hardware keeps transmitting through CRA challenge instants.

use serde::{Deserialize, Serialize};

use argus_radar::target::{Echo, RadarTarget};
use argus_sim::rng::SimRng;
use argus_sim::time::Step;
use argus_sim::units::{Meters, MetersPerSecond, Watts};

/// A slowly ramping delay-and-Doppler spoofer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftSpoofer {
    /// Apparent gap growth per second (metres) — the ramp slope. The paper's
    /// dead-reckoned distance then under-estimates closure by exactly this
    /// rate while the attack goes undetected.
    pub rate: f64,
    /// Cap on the accumulated drift (metres): real spoofing hardware has a
    /// bounded delay line.
    pub max_drift: Meters,
    /// Power of the counterfeit relative to the genuine echo (linear).
    pub power_advantage: f64,
    /// Half-width (metres) of the per-step uniform wobble around the exact
    /// ramp — delay-line quantization. `0` draws nothing.
    pub wobble_m: f64,
}

impl DriftSpoofer {
    /// A nominal stealth ramp: 0.4 m/s of apparent gap opening, capped at
    /// 40 m, 4× power advantage, 2 cm of delay-line wobble.
    pub fn nominal() -> Self {
        Self {
            rate: 0.4,
            max_drift: Meters(40.0),
            power_advantage: 4.0,
            wobble_m: 0.02,
        }
    }

    /// Accumulated drift `elapsed` steps of `dt` seconds after onset
    /// (the ramp starts from one step's worth, not zero, so the first
    /// attacked sample is already displaced).
    pub fn drift_at(&self, elapsed: u64, dt: f64) -> Meters {
        Meters((self.rate * (elapsed + 1) as f64 * dt).min(self.max_drift.value()))
    }

    /// `true` while the ramp is still growing at `elapsed` steps after
    /// onset (the Doppler offset vanishes once the delay line saturates).
    pub fn ramping(&self, elapsed: u64, dt: f64) -> bool {
        self.drift_at(elapsed, dt).value() < self.max_drift.value()
    }

    /// Builds the counterfeit echo at step `k` for the current true target.
    ///
    /// Draws one uniform from `rng` when `wobble_m > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `rate`, `power_advantage` are not strictly positive or the
    /// wobble is negative/non-finite.
    pub fn counterfeit(
        &self,
        k: Step,
        onset: Step,
        target: &RadarTarget,
        true_echo_power: Watts,
        dt: f64,
        rng: &mut SimRng,
    ) -> Echo {
        assert!(self.rate > 0.0, "drift rate must be positive");
        assert!(
            self.power_advantage > 0.0,
            "power advantage must be positive"
        );
        assert!(
            self.wobble_m >= 0.0 && self.wobble_m.is_finite(),
            "wobble must be non-negative and finite"
        );
        let elapsed = k.0.saturating_sub(onset.0);
        let mut d = target.distance().value() + self.drift_at(elapsed, dt).value();
        if self.wobble_m > 0.0 {
            d += rng.uniform(-self.wobble_m, self.wobble_m);
        }
        // Consistent Doppler: while the ramp grows, the apparent gap opens
        // `rate` m/s faster than the true one — the trend the RLS predictor
        // locks onto.
        let doppler_offset = if self.ramping(elapsed, dt) {
            self.rate
        } else {
            0.0
        };
        Echo::new(
            Meters(d.max(0.1)),
            MetersPerSecond(target.range_rate().value() + doppler_offset),
            Watts(true_echo_power.value() * self.power_advantage),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> RadarTarget {
        RadarTarget::new(Meters(100.0), MetersPerSecond(-2.0), 10.0)
    }

    #[test]
    fn ramp_grows_then_saturates() {
        let s = DriftSpoofer::nominal();
        assert!((s.drift_at(0, 1.0).value() - 0.4).abs() < 1e-12);
        assert!((s.drift_at(9, 1.0).value() - 4.0).abs() < 1e-12);
        assert_eq!(s.drift_at(1000, 1.0).value(), 40.0);
        assert!(s.ramping(9, 1.0));
        assert!(!s.ramping(1000, 1.0));
    }

    #[test]
    fn counterfeit_is_kinematically_consistent() {
        let mut s = DriftSpoofer::nominal();
        s.wobble_m = 0.0;
        let mut rng = SimRng::seed_from(1);
        let a = s.counterfeit(Step(150), Step(150), &target(), Watts(1e-12), 1.0, &mut rng);
        let b = s.counterfeit(Step(151), Step(150), &target(), Watts(1e-12), 1.0, &mut rng);
        // Distance grew by rate·dt and the Doppler reports that growth.
        assert!((b.distance.value() - a.distance.value() - 0.4).abs() < 1e-12);
        assert!((a.range_rate.value() - (-2.0 + 0.4)).abs() < 1e-12);
    }

    #[test]
    fn wobble_free_draws_nothing() {
        let mut s = DriftSpoofer::nominal();
        s.wobble_m = 0.0;
        let mut rng = SimRng::seed_from(2);
        let probe = rng.clone().next_f64();
        let _ = s.counterfeit(Step(160), Step(150), &target(), Watts(1e-12), 1.0, &mut rng);
        assert_eq!(rng.next_f64(), probe);
    }

    #[test]
    fn wobble_stays_bounded() {
        let s = DriftSpoofer::nominal();
        let mut rng = SimRng::seed_from(2);
        for k in 150..250 {
            let e = s.counterfeit(Step(k), Step(150), &target(), Watts(1e-12), 1.0, &mut rng);
            let nominal = 100.0 + s.drift_at(k - 150, 1.0).value();
            assert!((e.distance.value() - nominal).abs() <= s.wobble_m + 1e-12);
        }
    }
}
