//! Record-and-replay spoofing.
//!
//! The attacker passively records the victim's echo scene for a while
//! before the attack window, then re-transmits the recording in a loop:
//! the victim keeps seeing a stale-but-plausible target (the classic
//! GPS/radar replay attack, amplified by the replay hardware's transmit
//! power). Unlike the other spoofers this one is *stateful* — what it
//! plays depends on what it heard — so its mutable half lives in
//! [`ReplayState`], owned per-trial by the attack runtime, while
//! [`ReplayAttacker`] stays plain-old-data configuration.
//!
//! A replay transmitter has reaction latency like any other physical
//! spoofer: it keeps playing through CRA challenge instants and is caught.

use serde::{Deserialize, Serialize};

use argus_radar::receiver::{ChannelState, Radar};
use argus_radar::target::{Echo, RadarTarget};
use argus_sim::rng::SimRng;
use argus_sim::time::Step;
use argus_sim::units::{Meters, MetersPerSecond, Watts};

use crate::schedule::AttackWindow;

/// Record-and-replay attacker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayAttacker {
    /// Steps of echo scene captured immediately before the attack window.
    pub record_len: u64,
    /// Replayed power relative to the recorded echo power (linear).
    pub power_advantage: f64,
    /// Half-width (metres) of the per-step uniform re-trigger jitter on the
    /// replayed range. `0` draws nothing.
    pub timing_jitter_m: f64,
}

impl ReplayAttacker {
    /// A nominal replayer: 20-step capture, 10× power, 10 cm of re-trigger
    /// jitter.
    pub fn nominal() -> Self {
        Self {
            record_len: 20,
            power_advantage: 10.0,
            timing_jitter_m: 0.1,
        }
    }

    /// First step of the recording window preceding `window`.
    pub fn record_start(&self, window: AttackWindow) -> Step {
        Step(window.start().0.saturating_sub(self.record_len))
    }
}

/// One captured echo sample (distance, range rate, received power).
#[derive(Debug, Clone, Copy, PartialEq)]
struct RecordedEcho {
    distance: f64,
    range_rate: f64,
    power: f64,
}

/// The replay attacker's mutable per-trial state: the recording buffer.
///
/// Reset at trial start (a fresh buffer is built per
/// [`Adversary::runtime`](crate::Adversary::runtime) call), so recordings
/// never leak across trials.
#[derive(Debug, Clone, Default)]
pub struct ReplayState {
    recording: Vec<RecordedEcho>,
}

impl ReplayState {
    /// Number of captured samples so far.
    pub fn recorded(&self) -> usize {
        self.recording.len()
    }

    /// Passive capture phase: during `[window.start − record_len,
    /// window.start)` the attacker samples the genuine echo scene. It can
    /// only hear an echo while the victim radar actually transmits
    /// (`tx_on`) and a target exists.
    pub(crate) fn maybe_record(
        &mut self,
        cfg: &ReplayAttacker,
        window: AttackWindow,
        k: Step,
        tx_on: bool,
        target: Option<&RadarTarget>,
        radar: &Radar,
    ) {
        if cfg.record_len == 0 || k.0 >= window.start().0 || k.0 < cfg.record_start(window).0 {
            return;
        }
        if !tx_on {
            return;
        }
        if let Some(t) = target {
            self.recording.push(RecordedEcho {
                distance: t.distance().value(),
                range_rate: t.range_rate().value(),
                power: radar.echo_power(t).value(),
            });
        }
    }

    /// Active phase: loops the recording, amplified and jittered. An
    /// attacker that captured nothing has nothing to transmit — the channel
    /// stays clean (and the attack simply fails).
    ///
    /// Draws one uniform from `rng` per rendered step when
    /// `timing_jitter_m > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `power_advantage` is not strictly positive or the jitter
    /// is negative/non-finite.
    pub(crate) fn playback(
        &self,
        cfg: &ReplayAttacker,
        window: AttackWindow,
        k: Step,
        rng: &mut SimRng,
    ) -> ChannelState {
        assert!(
            cfg.power_advantage > 0.0,
            "power advantage must be positive"
        );
        assert!(
            cfg.timing_jitter_m >= 0.0 && cfg.timing_jitter_m.is_finite(),
            "timing jitter must be non-negative and finite"
        );
        if self.recording.is_empty() {
            return ChannelState::clean();
        }
        let idx = (k.0.saturating_sub(window.start().0) as usize) % self.recording.len();
        let sample = self.recording[idx];
        let mut d = sample.distance;
        if cfg.timing_jitter_m > 0.0 {
            d += rng.uniform(-cfg.timing_jitter_m, cfg.timing_jitter_m);
        }
        ChannelState::spoofed(Echo::new(
            Meters(d.max(0.1)),
            MetersPerSecond(sample.range_rate),
            Watts(sample.power * cfg.power_advantage),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_radar::RadarConfig;

    fn radar() -> Radar {
        Radar::new(RadarConfig::bosch_lrr2())
    }

    fn window() -> AttackWindow {
        AttackWindow::new(Step(182), Step(300))
    }

    fn record_scene(state: &mut ReplayState, cfg: &ReplayAttacker) {
        let radar = radar();
        for k in 0..182u64 {
            let t = RadarTarget::new(Meters(100.0 - 0.1 * k as f64), MetersPerSecond(-0.1), 10.0);
            state.maybe_record(cfg, window(), Step(k), true, Some(&t), &radar);
        }
    }

    #[test]
    fn records_only_inside_the_capture_window() {
        let cfg = ReplayAttacker::nominal();
        let mut state = ReplayState::default();
        record_scene(&mut state, &cfg);
        assert_eq!(state.recorded() as u64, cfg.record_len);
    }

    #[test]
    fn deaf_during_challenges() {
        let cfg = ReplayAttacker::nominal();
        let mut state = ReplayState::default();
        let t = RadarTarget::new(Meters(90.0), MetersPerSecond(-1.0), 10.0);
        state.maybe_record(&cfg, window(), Step(170), false, Some(&t), &radar());
        assert_eq!(state.recorded(), 0, "no chirp, nothing to record");
    }

    #[test]
    fn playback_loops_the_recording() {
        let mut cfg = ReplayAttacker::nominal();
        cfg.timing_jitter_m = 0.0;
        let mut state = ReplayState::default();
        record_scene(&mut state, &cfg);
        let mut rng = SimRng::seed_from(1);
        let a = state.playback(&cfg, window(), Step(182), &mut rng);
        let b = state.playback(&cfg, window(), Step(182 + cfg.record_len), &mut rng);
        assert_eq!(a.echoes[0].distance, b.echoes[0].distance, "loop wraps");
    }

    #[test]
    fn playback_amplifies() {
        let mut cfg = ReplayAttacker::nominal();
        cfg.timing_jitter_m = 0.0;
        let mut state = ReplayState::default();
        record_scene(&mut state, &cfg);
        let ch = state.playback(&cfg, window(), Step(182), &mut SimRng::seed_from(1));
        let first = RadarTarget::new(Meters(100.0 - 0.1 * 162.0), MetersPerSecond(-0.1), 10.0);
        let genuine = radar().echo_power(&first).value();
        assert!((ch.echoes[0].power.value() - genuine * 10.0).abs() < genuine);
    }

    #[test]
    fn empty_recording_plays_nothing() {
        let cfg = ReplayAttacker::nominal();
        let state = ReplayState::default();
        let ch = state.playback(&cfg, window(), Step(200), &mut SimRng::seed_from(1));
        assert_eq!(ch, ChannelState::clean());
    }
}
